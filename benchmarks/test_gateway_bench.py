"""Gateway service-tier overhead: REST requests, fan-out, push-down.

Three arms price the new HTTP/WebSocket front door on a live
multi-shard cluster:

* ``rest`` — end-to-end authenticated request rate against
  ``GET /v1/stats`` (TCP connect + HTTP parse + auth + quota bucket +
  JSON render per call, the gateway's per-request floor);
* ``fanout`` — live WebSocket delivery rate: ``GATEWAY_BENCH_CLIENTS``
  subscribers on one subtree while batches flow through the hub's
  serialise-once path (events × clients deliveries per second);
* ``pushdown`` — the server-side filter value: a selective
  ``/v1/events`` sweep reports how many raw events the RuleIndex
  pruned before serialisation (the fraction a client-side filter
  would have shipped and thrown away).

The numbers are *counter-asserted* against the gateway's own metric
scope: the rest arm's request count, the fanout arm's exact
``stream_delivered`` delta (and zero shed), and the pushdown arm's
``events_scanned``/``events_returned`` deltas must all match what the
driver observed.  CI shrinks the shape via ``GATEWAY_BENCH_*``.

Results land in ``benchmarks/results/BENCH_gateway.json``.
"""

import json
import os
import pathlib
import time

from repro.cluster import ClusterConfig, ClusterMonitor
from repro.core.events import EventType, FileEvent
from repro.gateway import GatewayClient, Quota, attach_gateway
from repro.lustre import LustreFilesystem

N_REST = int(os.environ.get("GATEWAY_BENCH_REST", "150"))
N_CLIENTS = int(os.environ.get("GATEWAY_BENCH_CLIENTS", "20"))
N_EVENTS = int(os.environ.get("GATEWAY_BENCH_EVENTS", "1000"))

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def wait_until(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def bench_rest(gateway, api, token, iters):
    gateway.metrics.value("requests")  # touch before the baseline read
    baseline = gateway.metrics.value("requests")
    started = time.perf_counter()
    for _ in range(iters):
        status, _payload = api.request("GET", "/v1/stats", token=token)
        assert status == 200
    elapsed = time.perf_counter() - started
    handled = gateway.metrics.value("requests") - baseline
    assert handled == iters, (handled, iters)
    return {
        "scenario": "rest",
        "iterations": iters,
        "elapsed_s": round(elapsed, 4),
        "requests_per_s": round(iters / elapsed, 1),
    }


def bench_fanout(gateway, api, token, clients, events):
    streams = [
        api.stream(token, prefix="/bench/hot") for _ in range(clients)
    ]
    base = time.time()
    entries = [
        (
            seq,
            FileEvent(
                EventType.CREATED, f"/bench/hot/f{seq}", False, base + seq,
                name=f"f{seq}", source="bench",
            ),
        )
        for seq in range(1, events + 1)
    ]
    delivered_before = gateway.metrics.value("stream_delivered")
    shed_before = gateway.metrics.value("stream_shed")
    try:
        started = time.perf_counter()
        for start in range(0, events, 100):
            gateway.hub.publish_entries(
                entries[start:start + 100], source="bench"
            )

        def drained():
            for stream in streams:
                stream.pump(0.0)
            return all(len(s.received) >= events for s in streams)

        assert wait_until(drained)
        elapsed = time.perf_counter() - started
    finally:
        for stream in streams:
            stream.close()
    deliveries = events * clients
    delivered = gateway.metrics.value("stream_delivered") - delivered_before
    assert delivered == deliveries, (delivered, deliveries)
    assert gateway.metrics.value("stream_shed") == shed_before
    return {
        "scenario": "fanout",
        "clients": clients,
        "events": events,
        "elapsed_s": round(elapsed, 4),
        "deliveries_per_s": round(deliveries / elapsed, 1),
    }


def bench_pushdown(fs, cluster, gateway, api, token, events):
    # 1 matching event per 10: the selective-subscription shape where
    # server-side pruning pays.
    expected = 0
    for index in range(events):
        if index % 10 == 0:
            fs.create(f"/bench/signal/s{index}.h5")
            expected += 1
        else:
            fs.create(f"/bench/noise/n{index}.log")
    assert wait_until(
        lambda: api.events(token, prefix="/bench/signal")["scanned"] > 0
        and len(api.events_all(token, prefix="/bench/signal", limit=512))
        >= expected
    )
    scanned_before = gateway.metrics.value("events_scanned")
    returned_before = gateway.metrics.value("events_returned")
    hits_before = gateway.metrics.value("filter_cache_hits")
    misses_before = gateway.metrics.value("filter_cache_misses")
    started = time.perf_counter()
    # Page size 32 forces a multi-page cursor sweep — the shape where
    # the filter cache pays (identical params re-sent every page).
    matching = api.events_all(
        token, prefix="/bench/signal", types="created", limit=32
    )
    elapsed = time.perf_counter() - started
    scanned = gateway.metrics.value("events_scanned") - scanned_before
    returned = gateway.metrics.value("events_returned") - returned_before
    cache_hits = gateway.metrics.value("filter_cache_hits") - hits_before
    cache_misses = (
        gateway.metrics.value("filter_cache_misses") - misses_before
    )
    assert returned == len(matching) == expected, (returned, expected)
    assert scanned >= events  # the sweep walked the whole retained window
    # Every page of the sweep reuses ONE compiled filter index: at most
    # one miss for this query shape, everything else a cache hit.
    assert cache_hits >= 1, (cache_hits, cache_misses)
    assert cache_misses <= 1, (cache_hits, cache_misses)
    pruned_fraction = 1.0 - returned / scanned
    return {
        "scenario": "pushdown",
        "events_scanned": scanned,
        "events_returned": returned,
        "pruned_fraction": round(pruned_fraction, 4),
        "filter_cache_hits": cache_hits,
        "filter_cache_misses": cache_misses,
        "elapsed_s": round(elapsed, 4),
        "scan_events_per_s": round(scanned / elapsed, 1),
    }


class TestGatewayOverhead:
    def test_overhead_table(self, report):
        fs = LustreFilesystem(num_mds=2)
        for sub in ("hot", "signal", "noise"):
            fs.makedirs(f"/bench/{sub}")
        cluster = ClusterMonitor(fs, ClusterConfig(num_shards=2))
        gateway = attach_gateway(cluster)
        key = gateway.auth.issue_key(
            "bench",
            quota=Quota(
                requests_per_sec=1e9, request_burst=1e9,
                max_page_size=512, max_streams=max(N_CLIENTS, 64),
            ),
        )
        cluster.start()
        try:
            api = GatewayClient(gateway.host, gateway.port, timeout=30.0)
            token = api.auth(key.key)["token"]
            scenarios = [
                bench_rest(gateway, api, token, N_REST),
                bench_fanout(gateway, api, token, N_CLIENTS, N_EVENTS),
                bench_pushdown(fs, cluster, gateway, api, token, N_EVENTS),
            ]
        finally:
            cluster.shutdown()

        lines = [f"{'scenario':<10} {'shape':>22} {'elapsed s':>10} {'rate':>14}"]
        shapes = {
            "rest": lambda r: f"{r['iterations']} reqs",
            "fanout": lambda r: f"{r['clients']}c x {r['events']}ev",
            "pushdown": lambda r: (
                f"{r['events_returned']}/{r['events_scanned']} kept"
            ),
        }
        rates = {
            "rest": "requests_per_s",
            "fanout": "deliveries_per_s",
            "pushdown": "scan_events_per_s",
        }
        for row in scenarios:
            lines.append(
                f"{row['scenario']:<10} {shapes[row['scenario']](row):>22} "
                f"{row['elapsed_s']:>10.4f} "
                f"{row[rates[row['scenario']]]:>14.1f}"
            )
        pushdown = next(r for r in scenarios if r["scenario"] == "pushdown")
        lines.append(
            f"push-down pruned fraction: {pushdown['pruned_fraction']:.2%}"
        )
        lines.append(
            "filter cache across the paged sweep: "
            f"{pushdown['filter_cache_hits']} hits / "
            f"{pushdown['filter_cache_misses']} misses"
        )
        table = "\n".join(lines)
        report.add("service tier - gateway overhead", table)

        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / "BENCH_gateway.json").write_text(
            json.dumps(
                {
                    "rest_iterations": N_REST,
                    "fanout_clients": N_CLIENTS,
                    "events": N_EVENTS,
                    "scenarios": scenarios,
                },
                indent=2,
            )
            + "\n"
        )
