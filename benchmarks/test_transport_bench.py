"""Transport ablation: inproc thread-queue fabric vs process-per-shard.

Three scenarios run the same synthetic ingest through a cluster —
``inproc-1shard`` (the pre-refactor shape: one aggregator doing all the
work on the caller's thread), ``inproc-2shard`` (sharded but still one
process), and ``multiproc-2shard`` (each shard a spawned child process
behind a :class:`~repro.msgq.multiproc.ProcessShardBridge`).

The numbers are *counter-asserted*, not taken on faith: every scenario
must account for exactly the generated event count in its shards'
stores (and, for multiproc, finish with an empty in-flight window) or
the benchmark fails.  The acceptance bar — process shards sustain
higher ev/s than the single-process single-shard baseline — is a
*parallelism* claim, so it is asserted only where it is physically
expressible: full workload size AND at least 3 usable cores (parent +
two shard children each need one; on a 1-core host every backend is
time-sliced onto the same CPU and the multiproc arm can only ever
measure its serialization tax).  The gate's inputs (``cpus``,
``supremacy_asserted``) are recorded in the emitted JSON so a reader
of the artefact knows whether the bar was evaluated or just measured.
The CI smoke run shrinks the workload via ``TRANSPORT_BENCH_EVENTS``,
where wall-clock comparisons of a seconds-long run would be noise.

Results land in ``benchmarks/results/BENCH_transport.json`` plus the
rendered ablation table.
"""

import json
import os
import pathlib
import time

from repro.core.aggregator import AggregatorConfig
from repro.core.events import EventType, FileEvent
from repro.cluster import ClusterConfig, ClusterMonitor
from repro.errors import WouldBlock
from repro.lustre import LustreFilesystem
from repro.lustre.mds import DnePolicy
from repro.util.clock import ManualClock

N_EVENTS = int(os.environ.get("TRANSPORT_BENCH_EVENTS", "20000"))
BATCH = 200
FULL_SIZE = N_EVENTS >= 20000
try:
    CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # non-Linux
    CPUS = os.cpu_count() or 1
#: Parent + 2 shard children each need a core for the supremacy bar
#: to be a statement about the transport rather than the scheduler.
CAN_PARALLELIZE = CPUS >= 3

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def make_event(i):
    """A changelog-shaped event: deep, mostly-unique path plus the FID
    and record fields a real collector fills in.  Flat 3-component
    paths would starve the store's path index and understate the
    per-event aggregation work the transport ablation is about."""
    path = (
        f"/campaign/run{i // 1000:03d}/user{i % 40}"
        f"/job{i % 333}/step{i % 7}/output/part-{i:06d}.h5"
    )
    return FileEvent(
        event_type=EventType.CREATED, path=path, is_dir=False,
        timestamp=float(i), name=f"part-{i:06d}.h5", source="lustre",
        fid=f"0x200000400:0x{i:x}:0x0", parent_fid="0x200000007:0x1:0x0",
        mdt_index=i % 4, record_index=i,
    )


def build_cluster(num_shards, transport, namespace):
    fs = LustreFilesystem(
        num_mds=1, mdts_per_mds=1,
        dne_policy=DnePolicy.ROUND_ROBIN, clock=ManualClock(),
    )
    return ClusterMonitor(
        fs,
        ClusterConfig(
            num_shards=num_shards,
            namespace=namespace,
            transport=transport,
            aggregator=AggregatorConfig(store_max_events=N_EVENTS * 2),
        ),
    )


def events_stored(handle):
    """Stored-event count for either shard flavour (bridge or inproc)."""
    stored = getattr(handle, "events_stored", None)
    if stored is not None:
        return stored
    return handle.store.last_seq


def run_scenario(name, num_shards, transport):
    """Feed N_EVENTS through the cluster's shard inbound endpoints,
    round-robin in BATCH-sized reports, and drain to completion."""
    cluster = build_cluster(num_shards, transport, f"bench-{name}")
    try:
        shard_ids = list(cluster.shard_configs)
        pushers = [
            cluster.context.push(
                hwm=cluster.config.aggregator.hwm
            ).connect(cluster.shard_configs[shard_id].inbound_endpoint)
            for shard_id in shard_ids
        ]
        batches = [
            [make_event(i) for i in range(start, min(start + BATCH, N_EVENTS))]
            for start in range(0, N_EVENTS, BATCH)
        ]

        started = time.perf_counter()
        for index, batch in enumerate(batches):
            push = pushers[index % len(pushers)]
            while True:
                try:
                    push.send(batch, timeout=0.05)
                    break
                except WouldBlock:
                    cluster.pump()  # backpressure: let shards catch up
            cluster.pump()
        cluster.drain()
        elapsed = time.perf_counter() - started

        # Counter assertions: the run only counts if every event is
        # accounted for in the shard stores.
        handles = list(cluster.shard_handles.values())
        stored = sum(events_stored(handle) for handle in handles)
        assert stored == N_EVENTS, (name, stored, N_EVENTS)
        for handle in handles:
            snapshot = handle.metrics.snapshot()
            inflight = snapshot.get("inflight_batches")
            if inflight is not None:  # multiproc bridge: nothing in flight
                assert inflight == 0, (name, snapshot)
                assert snapshot["child_restarts"] == 0, (name, snapshot)
        return {
            "scenario": name,
            "transport": transport,
            "shards": num_shards,
            "events": N_EVENTS,
            "batch": BATCH,
            "elapsed_s": round(elapsed, 4),
            "events_per_s": round(N_EVENTS / elapsed, 1),
            "stored": stored,
        }
    finally:
        cluster.shutdown()


class TestTransportAblation:
    def test_ablation_table(self, report):
        scenarios = [
            run_scenario("inproc-1shard", 1, "inproc"),
            run_scenario("inproc-2shard", 2, "inproc"),
            run_scenario("multiproc-2shard", 2, "multiproc"),
        ]
        lines = [
            f"{'scenario':<20} {'transport':>10} {'shards':>7} "
            f"{'events':>8} {'elapsed s':>10} {'ev/s':>12}"
        ]
        for row in scenarios:
            lines.append(
                f"{row['scenario']:<20} {row['transport']:>10} "
                f"{row['shards']:>7} {row['events']:>8} "
                f"{row['elapsed_s']:>10.4f} {row['events_per_s']:>12.1f}"
            )
        supremacy_asserted = FULL_SIZE and CAN_PARALLELIZE
        lines.append(
            "every scenario counter-asserted: stored == generated, "
            "in-flight window empty"
        )
        lines.append(
            f"host cpus: {CPUS}; multiproc>inproc bar "
            + ("asserted" if supremacy_asserted else
               "measured only (needs full size and >=3 cores)")
        )
        report.add("Ablation - transport backends", "\n".join(lines))
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / "BENCH_transport.json").write_text(
            json.dumps(
                {
                    "cpus": CPUS,
                    "events": N_EVENTS,
                    "supremacy_asserted": supremacy_asserted,
                    "scenarios": scenarios,
                },
                indent=2,
            )
            + "\n"
        )
        by_name = {row["scenario"]: row for row in scenarios}
        if supremacy_asserted:
            # The acceptance bar: 2 process shards beat the
            # single-process single-shard baseline on sustained ev/s.
            assert (
                by_name["multiproc-2shard"]["events_per_s"]
                > by_name["inproc-1shard"]["events_per_s"]
            ), scenarios
