"""Extension experiment: riding out bursts (paper §5.3's caveat).

The paper notes its demand estimate "could significantly underestimate
the peak generation of file events" because dump differencing cannot
see "the sporadic nature of data generation".  This experiment drives
the Iota model with time-varying arrivals whose *mean* is under the
monitor's capacity but whose *bursts* exceed it, and shows the
ChangeLog acting as the shock absorber: backlog grows during bursts,
drains between them, and nothing is lost — the structural advantage
over inotify's fixed-size lossy queue.
"""

import pytest

from repro.harness.reporting import render_table
from repro.perf import IOTA, PipelineConfig, run_pipeline

CAPACITY = 8163.0  # measured per-event single-MDS capacity


def run(**kwargs):
    defaults = dict(profile=IOTA, duration=40.0)
    defaults.update(kwargs)
    return run_pipeline(PipelineConfig(**defaults))


def test_burst_riding(report, benchmark):
    scenarios = [
        ("constant at mean", dict(arrival_rate=6000.0)),
        ("diurnal ±50% (peak 9k > capacity)",
         dict(arrival_rate=6000.0, arrival_profile="diurnal",
              profile_amplitude=0.5, profile_period=10.0)),
        ("bursty 2x for 2s/10s (peak 12k > capacity)",
         dict(arrival_rate=6000.0, arrival_profile="bursty",
              profile_amplitude=2.0, profile_period=10.0,
              profile_burst_len=2.0)),
    ]

    def sweep():
        return [(label, run(**kwargs)) for label, kwargs in scenarios]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["arrival pattern", "mean gen ev/s", "delivered ev/s",
         "peak backlog", "p99 latency", "lost"],
        [
            (
                label,
                f"{r.generation_rate:,.0f}",
                f"{r.delivered_rate:,.0f}",
                f"{r.changelog_backlog_peak:,}",
                f"{r.latency.percentile(0.99) * 1000:.0f} ms",
                f"{r.generated - r.delivered}",
            )
            for label, r in rows
        ],
        title=(
            "Burst absorption (Iota, per-event d2path, mean 6k ev/s vs "
            "8.2k capacity)"
        ),
    )
    report.add("Extension - burst riding", table)

    by_label = dict(rows)
    steady = by_label["constant at mean"]
    bursty = by_label["bursty 2x for 2s/10s (peak 12k > capacity)"]
    # Steady under-capacity load: negligible backlog.
    assert steady.changelog_backlog_peak < 10
    # Bursts exceed capacity -> real backlog forms...
    assert bursty.changelog_backlog_peak > 1000
    # ...but the mean is under capacity, so it drains: no loss overall.
    assert bursty.keeps_up
    assert bursty.delivered >= bursty.generated - 100  # tail in flight


def test_sustained_overload_is_different_from_bursts():
    """A burst that never ends (mean above capacity) does NOT drain."""
    overloaded = run(arrival_rate=9000.0)
    assert not overloaded.keeps_up
    assert overloaded.changelog_backlog_peak > 10_000


def test_profile_validation():
    with pytest.raises(ValueError):
        PipelineConfig(profile=IOTA, arrival_profile="lunar")
    with pytest.raises(ValueError):
        PipelineConfig(profile=IOTA, arrival_profile="diurnal",
                       profile_amplitude=1.5)
