"""A2 — §6 future work: multiple distributed MDS.

"If the d2path resolutions were distributed across multiple MDS, the
throughput of the monitor would surpass the event generation rate."
The Iota testbed has four MDS (one active in the paper's runs); this
ablation activates 1..4 and checks the predicted crossover at 2 MDS.
"""

import pytest

from repro.harness.reporting import render_table
from repro.perf import IOTA, PipelineConfig, run_pipeline


def run(num_mds, arrival_rate=None):
    return run_pipeline(
        PipelineConfig(
            profile=IOTA, duration=15.0, num_mds=num_mds,
            arrival_rate=arrival_rate,
        )
    )


def test_ablation_multi_mds(report, benchmark):
    def sweep():
        return {m: run(m) for m in (1, 2, 3, 4)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["active MDS", "monitor ev/s", "generation ev/s", "keeps up"],
        [
            (
                m,
                f"{r.delivered_rate:,.0f}",
                f"{r.generation_rate:,.0f}",
                "yes" if r.keeps_up else "no",
            )
            for m, r in sorted(results.items())
        ],
        title="A2 - multi-MDS scaling (Iota model, paper's 4-MDS hardware)",
    )
    report.add("Ablation A2 - multi-MDS scaling", table)

    assert not results[1].keeps_up           # the paper's measured config
    assert results[2].keeps_up               # the paper's prediction
    assert results[4].keeps_up


def test_processing_capacity_scales_linearly_below_saturation():
    """With an arrival rate far above capacity, delivered rate ~ M / p."""
    overdriven = 40_000.0
    rate_1 = run(1, arrival_rate=overdriven).delivered_rate
    rate_2 = run(2, arrival_rate=overdriven).delivered_rate
    rate_4 = run(4, arrival_rate=overdriven).delivered_rate
    assert rate_2 == pytest.approx(2 * rate_1, rel=0.05)
    assert rate_4 == pytest.approx(4 * rate_1, rel=0.05)
