"""E1 — Table 1: sample ChangeLog records.

Reproduces the paper's example ChangeLog (CREAT data1.txt, MKDIR DataDir,
UNLNK data1.txt with the UNLINK_LAST flag) and benchmarks the record
format/parse path, which every collected event crosses.
"""

from repro.harness import experiment_table1, render_table
from repro.lustre.changelog import ChangelogFlag, ChangelogRecord, RecordType
from repro.lustre.fid import Fid


def test_table1_sample_changelog(report, benchmark):
    lines = benchmark.pedantic(experiment_table1, rounds=1, iterations=1)
    assert len(lines) == 3
    assert "01CREAT" in lines[0]
    assert "02MKDIR" in lines[1]
    assert "06UNLNK" in lines[2] and lines[2].split()[4] == "0x1"
    paper_lines = [
        "13106 01CREAT 20:15:37.1138 2017.09.06 0x0 "
        "t=[0x200000402:0xa046:0x0] p=[0x200000007:0x1:0x0] data1.txt",
        "13107 02MKDIR 20:15:37.5097 2017.09.06 0x0 "
        "t=[0x200000420:0x3:0x0] p=[0x61b4:0xca2c7dde:0x0] DataDir",
        "13108 06UNLNK 20:15:37.8869 2017.09.06 0x1 "
        "t=[0x200000402:0xa048:0x0] p=[0x200000007:0x1:0x0] data1.txt",
    ]
    body = "paper:\n" + "\n".join(
        f"  {line}" for line in paper_lines
    ) + "\nreproduced:\n" + "\n".join(f"  {line}" for line in lines)
    report.add("Table 1 - sample ChangeLog record", body)


def test_bench_record_format(benchmark):
    record = ChangelogRecord(
        13106, RecordType.CREAT, 1_504_728_937.1138, ChangelogFlag.NONE,
        Fid(0x200000402, 0xA046), Fid(0x200000007, 0x1), "data1.txt",
    )
    line = benchmark(record.format)
    assert "01CREAT" in line


def test_bench_record_parse(benchmark):
    record = ChangelogRecord(
        13106, RecordType.CREAT, 1_504_728_937.1138, ChangelogFlag.NONE,
        Fid(0x200000402, 0xA046), Fid(0x200000007, 0x1), "data1.txt",
    )
    line = record.format()
    parsed = benchmark(ChangelogRecord.parse, line)
    assert parsed.rec_type is RecordType.CREAT


def test_bench_changelog_append(benchmark):
    from repro.lustre.changelog import ChangeLog
    from repro.util.clock import ManualClock

    changelog = ChangeLog(0, clock=ManualClock())
    user = changelog.register_user()
    target, parent = Fid(0x200000402, 1), Fid(0x200000007, 1)

    def append_and_clear():
        changelog.append(RecordType.CREAT, target, parent, "f")
        changelog.clear(user, changelog.last_index)

    benchmark(append_and_clear)
