"""A4 — §6 future work: message-passing techniques.

"exploring and evaluating different message passing techniques between
the collection and aggregation points."  Compares PUSH/PULL (pipeline),
PUB/SUB (the paper's ZeroMQ choice) and REQ/REP (lock-step RPC) on the
collection path, with and without batching.
"""

import pytest

from repro.harness.reporting import render_table
from repro.perf import IOTA, PipelineConfig, run_pipeline


def run(transport, batch_size=1):
    return run_pipeline(
        PipelineConfig(
            profile=IOTA, duration=15.0, transport=transport,
            batch_size=batch_size,
        )
    )


def test_ablation_transports(report, benchmark):
    def sweep():
        rows = []
        for transport in ("pushpull", "pubsub", "reqrep"):
            unbatched = run(transport)
            batched = run(transport, batch_size=64)
            rows.append((transport, unbatched, batched))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["transport", "ev/s (per-event)", "ev/s (batch=64)"],
        [
            (t, f"{u.delivered_rate:,.0f}", f"{b.delivered_rate:,.0f}")
            for t, u, b in rows
        ],
        title="A4 - collector->aggregator transport ablation (Iota model)",
    )
    report.add("Ablation A4 - message transports", table)

    by_name = {t: (u, b) for t, u, b in rows}
    # Async transports are comparable; lock-step RPC collapses throughput.
    assert by_name["pubsub"][0].delivered_rate == pytest.approx(
        by_name["pushpull"][0].delivered_rate, rel=0.05
    )
    assert (
        by_name["reqrep"][0].delivered_rate
        < 0.5 * by_name["pushpull"][0].delivered_rate
    )
    # Batching amortises the round trip enough to keep up again.
    assert by_name["reqrep"][1].delivered_rate > 3 * by_name["reqrep"][0].delivered_rate
