"""Model sensitivity: how the d2path cost *split* drives the fixes.

The calibration pins overhead + per-FID = 1/8162 s on Iota, but the
paper does not report the split.  This study sweeps the overhead
fraction at constant total cost and shows which conclusions are robust
to that unknown:

* baseline (per-event) throughput is split-invariant — it depends only
  on the total, so the headline 8162 ev/s reproduction does not rest on
  the assumed split;
* the *batching* fix's benefit grows with the overhead fraction (it
  amortises exactly the overhead part);
* the *caching* fix is split-invariant (a hit skips the whole call),
  so caching is the robust recommendation when the split is unknown.
"""

import dataclasses

import pytest

from repro.harness.reporting import render_table
from repro.perf import IOTA, PipelineConfig, run_pipeline


def profile_with_split(overhead_fraction: float):
    total = IOTA.d2path_seconds_per_event
    return dataclasses.replace(
        IOTA,
        d2path_overhead_seconds=total * overhead_fraction,
        d2path_per_fid_seconds=total * (1.0 - overhead_fraction),
    )


def run(profile, **kwargs):
    return run_pipeline(
        PipelineConfig(profile=profile, duration=8.0, **kwargs)
    )


def test_sensitivity_to_overhead_fraction(report, benchmark):
    fractions = (0.25, 0.5, 0.73, 0.9)  # 0.73 is the calibrated split

    def sweep():
        rows = []
        for fraction in fractions:
            profile = profile_with_split(fraction)
            baseline = run(profile)
            # Overdrive the batched/cached configurations so measured
            # rates reflect true capacity, not the generation ceiling.
            batched = run(profile, batch_size=64, arrival_rate=60_000.0)
            cached = run(profile, cache_size=4096, arrival_rate=60_000.0)
            rows.append((fraction, baseline, batched, cached))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["overhead fraction", "baseline ev/s", "batch=64 ev/s",
         "cache=4096 ev/s"],
        [
            (
                f"{fraction:.2f}",
                f"{base.delivered_rate:,.0f}",
                f"{batched.delivered_rate:,.0f}",
                f"{cached.delivered_rate:,.0f}",
            )
            for fraction, base, batched, cached in rows
        ],
        title=(
            "Sensitivity of the section-5.2 fixes to the (unreported) "
            "d2path cost split (Iota, total cost held constant)"
        ),
    )
    report.add("Sensitivity - d2path cost split", table)

    baselines = [base.delivered_rate for _f, base, _b, _c in rows]
    cached_rates = [c.delivered_rate for _f, _base, _b, c in rows]
    # Baseline is split-invariant (within 1%).
    assert max(baselines) - min(baselines) < 0.01 * max(baselines)
    # Batching's benefit grows with the overhead fraction.
    gains = [
        batched.delivered_rate / base.delivered_rate
        for _f, base, batched, _c in rows
    ]
    assert gains == sorted(gains)
    # Caching is (nearly) split-invariant and always keeps up.
    assert max(cached_rates) - min(cached_rates) < 0.02 * max(cached_rates)


def test_headline_number_robust_to_split():
    """8162 ev/s must reproduce for ANY split of the calibrated total."""
    for fraction in (0.1, 0.5, 0.9):
        result = run(profile_with_split(fraction))
        assert result.delivered_rate == pytest.approx(8162, rel=0.02)
