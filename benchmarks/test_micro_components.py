"""Component microbenchmarks: the hot paths of the live implementation."""

import os

import pytest

from repro.cloudq import ReliableQueue
from repro.core.aggregator import Aggregator, AggregatorConfig
from repro.core.events import EventType, FileEvent
from repro.core.processor import PathCache
from repro.core.store import EventStore
from repro.lustre.fid import Fid
from repro.msgq import Context

#: Workload size for the ingest micro-benchmark; the CI smoke step
#: shrinks it so the counter assertions run in seconds.
INGEST_EVENTS = int(os.environ.get("INGEST_BENCH_EVENTS", "5000"))
INGEST_BATCH = 100


def make_event(index):
    return FileEvent(
        event_type=EventType.CREATED, path=f"/d/f{index}", is_dir=False,
        timestamp=float(index), name=f"f{index}", source="lustre",
        fid=f"0x1:{index}:0x0", parent_fid="0x1:0x1:0x0",
        mdt_index=0, record_index=index,
    )


class TestEventStoreBench:
    def test_bench_append(self, benchmark):
        store = EventStore(max_events=10_000)
        counter = {"n": 0}

        def append():
            counter["n"] += 1
            store.append(make_event(counter["n"]))

        benchmark(append)

    def test_bench_since_on_full_store(self, benchmark):
        store = EventStore(max_events=10_000)
        for index in range(10_000):
            store.append(make_event(index))
        result = benchmark(store.since, 9_900)
        assert len(result) == 100

    def test_bench_query_by_prefix(self, benchmark):
        store = EventStore(max_events=10_000)
        for index in range(10_000):
            store.append(make_event(index))
        result = benchmark(store.query, path_prefix="/d/f42", limit=10)
        assert result


class TestIngestBatchingBench:
    """Per-event vs batched ingest through the real store+publish path.

    The win is verified with *operation counters*, not wall-clock: the
    batched path must take one store lock per batch and perform at most
    one PUB send per same-topic run of a batch (exactly one per batch
    on a single-topic workload), while the per-event path pays both
    costs per event.
    """

    @staticmethod
    def build(tag):
        context = Context()
        config = AggregatorConfig(
            inbound_endpoint=f"inproc://ingest-in-{tag}",
            publish_endpoint=f"inproc://ingest-pub-{tag}",
            api_endpoint=f"inproc://ingest-rep-{tag}",
            store_max_events=max(INGEST_EVENTS, 1),
        )
        aggregator = Aggregator(context, config)
        subscriber = (
            context.sub(hwm=10_000_000)
            .connect(config.publish_endpoint)
            .subscribe(config.publish_topic)
        )
        return aggregator, subscriber

    def test_bench_ingest_per_event(self, benchmark):
        events = [make_event(index) for index in range(INGEST_EVENTS)]
        counter = {"round": 0}

        def per_event():
            aggregator, _sub = self.build(f"pe{counter['round']}")
            counter["round"] += 1
            for event in events:
                aggregator._handle_batch([event])
            return aggregator

        aggregator = benchmark.pedantic(per_event, rounds=3, iterations=1)
        # The per-event path pays one lock and one publish per event.
        assert aggregator.store.lock_acquisitions == INGEST_EVENTS
        assert aggregator.publisher.published == INGEST_EVENTS

    def test_bench_ingest_batched(self, benchmark):
        events = [make_event(index) for index in range(INGEST_EVENTS)]
        batches = [
            events[start:start + INGEST_BATCH]
            for start in range(0, len(events), INGEST_BATCH)
        ]
        counter = {"round": 0}

        def batched():
            aggregator, _sub = self.build(f"b{counter['round']}")
            counter["round"] += 1
            for batch in batches:
                aggregator._handle_batch(batch)
            return aggregator

        aggregator = benchmark.pedantic(batched, rounds=3, iterations=1)
        # O(1) lock acquisitions per batch, ≤1 fabric send per
        # (batch, topic) — one topic here, so exactly one per batch.
        assert aggregator.store.lock_acquisitions == len(batches)
        assert aggregator.publisher.published == len(batches)
        assert aggregator.batches_published == len(batches)
        assert aggregator.events_stored == INGEST_EVENTS

    def test_since_on_full_store_is_indexed(self):
        """Scan-count probe: ``since(seq)`` against a full 100k-event
        store touches only the entries above *seq*, never the window
        below it (the old implementation scanned all 100k)."""
        size = min(100_000, max(INGEST_EVENTS * 20, 1000))
        store = EventStore(max_events=size)
        store.extend([make_event(index) for index in range(size)])
        store.reset_op_counters()
        tail = store.since(size - 50)
        assert len(tail) == 50
        assert store.events_scanned == 50  # not `size`
        store.reset_op_counters()
        page = store.since(0, limit=25)
        assert len(page) == 25
        assert store.events_scanned == 25  # limit bounds the scan itself


class TestQueueBench:
    def test_bench_sqs_send_receive_delete(self, benchmark):
        queue = ReliableQueue("bench", visibility_timeout=60.0)

        def round_trip():
            queue.send({"k": 1})
            (message,) = queue.receive()
            queue.delete(message.receipt)

        benchmark(round_trip)
        assert queue.approximate_depth == 0

    def test_bench_pubsub_fan_out_10(self, benchmark):
        context = Context()
        publisher = context.pub().bind("inproc://bench")
        subscribers = [
            context.sub(hwm=1_000_000).connect("inproc://bench").subscribe("")
            for _ in range(10)
        ]

        def publish():
            publisher.send("t", "payload")

        benchmark(publish)
        assert all(sub.pending > 0 for sub in subscribers)


class TestPathCacheBench:
    def test_bench_hit(self, benchmark):
        cache = PathCache(capacity=4096)
        fids = [Fid(1, index) for index in range(4096)]
        for index, fid in enumerate(fids):
            cache.put(fid, f"/dir{index}")
        target = fids[123]
        path = benchmark(cache.get, target)
        assert path == "/dir123"

    def test_bench_invalidate_prefix(self, benchmark):
        def build_and_invalidate():
            cache = PathCache(capacity=4096)
            for index in range(2048):
                cache.put(Fid(1, index), f"/tree/sub{index % 8}/d{index}")
            return cache.invalidate_prefix("/tree/sub3")

        removed = benchmark.pedantic(build_and_invalidate, rounds=20,
                                     iterations=1)
        assert removed == 256


class TestChangelogPipelineBench:
    def test_bench_lustre_create_op(self, benchmark):
        from repro.lustre import LustreFilesystem

        fs = LustreFilesystem()
        fs.mkdir("/d")
        user = fs.changelogs()[0].register_user()
        counter = {"n": 0}

        def create():
            counter["n"] += 1
            fs.create(f"/d/f{counter['n']}")
            changelog = fs.changelogs()[0]
            changelog.clear(user, changelog.last_index)

        benchmark(create)
