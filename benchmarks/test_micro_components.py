"""Component microbenchmarks: the hot paths of the live implementation."""

import pytest

from repro.cloudq import ReliableQueue
from repro.core.events import EventType, FileEvent
from repro.core.processor import PathCache
from repro.core.store import EventStore
from repro.lustre.fid import Fid
from repro.msgq import Context


def make_event(index):
    return FileEvent(
        event_type=EventType.CREATED, path=f"/d/f{index}", is_dir=False,
        timestamp=float(index), name=f"f{index}", source="lustre",
        fid=f"0x1:{index}:0x0", parent_fid="0x1:0x1:0x0",
        mdt_index=0, record_index=index,
    )


class TestEventStoreBench:
    def test_bench_append(self, benchmark):
        store = EventStore(max_events=10_000)
        counter = {"n": 0}

        def append():
            counter["n"] += 1
            store.append(make_event(counter["n"]))

        benchmark(append)

    def test_bench_since_on_full_store(self, benchmark):
        store = EventStore(max_events=10_000)
        for index in range(10_000):
            store.append(make_event(index))
        result = benchmark(store.since, 9_900)
        assert len(result) == 100

    def test_bench_query_by_prefix(self, benchmark):
        store = EventStore(max_events=10_000)
        for index in range(10_000):
            store.append(make_event(index))
        result = benchmark(store.query, path_prefix="/d/f42", limit=10)
        assert result


class TestQueueBench:
    def test_bench_sqs_send_receive_delete(self, benchmark):
        queue = ReliableQueue("bench", visibility_timeout=60.0)

        def round_trip():
            queue.send({"k": 1})
            (message,) = queue.receive()
            queue.delete(message.receipt)

        benchmark(round_trip)
        assert queue.approximate_depth == 0

    def test_bench_pubsub_fan_out_10(self, benchmark):
        context = Context()
        publisher = context.pub().bind("inproc://bench")
        subscribers = [
            context.sub(hwm=1_000_000).connect("inproc://bench").subscribe("")
            for _ in range(10)
        ]

        def publish():
            publisher.send("t", "payload")

        benchmark(publish)
        assert all(sub.pending > 0 for sub in subscribers)


class TestPathCacheBench:
    def test_bench_hit(self, benchmark):
        cache = PathCache(capacity=4096)
        fids = [Fid(1, index) for index in range(4096)]
        for index, fid in enumerate(fids):
            cache.put(fid, f"/dir{index}")
        target = fids[123]
        path = benchmark(cache.get, target)
        assert path == "/dir123"

    def test_bench_invalidate_prefix(self, benchmark):
        def build_and_invalidate():
            cache = PathCache(capacity=4096)
            for index in range(2048):
                cache.put(Fid(1, index), f"/tree/sub{index % 8}/d{index}")
            return cache.invalidate_prefix("/tree/sub3")

        removed = benchmark.pedantic(build_and_invalidate, rounds=20,
                                     iterations=1)
        assert removed == 256


class TestChangelogPipelineBench:
    def test_bench_lustre_create_op(self, benchmark):
        from repro.lustre import LustreFilesystem

        fs = LustreFilesystem()
        fs.mkdir("/d")
        user = fs.changelogs()[0].register_user()
        counter = {"n": 0}

        def create():
            counter["n"] += 1
            fs.create(f"/d/f{counter['n']}")
            changelog = fs.changelogs()[0]
            changelog.clear(user, changelog.last_index)

        benchmark(create)
