"""Component microbenchmarks: the hot paths of the live implementation."""

import os

import pytest

from repro.cloudq import ReliableQueue
from repro.core.aggregator import Aggregator, AggregatorConfig
from repro.core.events import EventType, FileEvent
from repro.core.processor import PathCache
from repro.core.store import EventStore
from repro.lustre.fid import Fid
from repro.msgq import Context

#: Workload size for the ingest micro-benchmark; the CI smoke step
#: shrinks it so the counter assertions run in seconds.
INGEST_EVENTS = int(os.environ.get("INGEST_BENCH_EVENTS", "5000"))
INGEST_BATCH = 100


def make_event(index):
    return FileEvent(
        event_type=EventType.CREATED, path=f"/d/f{index}", is_dir=False,
        timestamp=float(index), name=f"f{index}", source="lustre",
        fid=f"0x1:{index}:0x0", parent_fid="0x1:0x1:0x0",
        mdt_index=0, record_index=index,
    )


class TestEventStoreBench:
    def test_bench_append(self, benchmark):
        store = EventStore(max_events=10_000)
        counter = {"n": 0}

        def append():
            counter["n"] += 1
            store.append(make_event(counter["n"]))

        benchmark(append)

    def test_bench_since_on_full_store(self, benchmark):
        store = EventStore(max_events=10_000)
        for index in range(10_000):
            store.append(make_event(index))
        result = benchmark(store.since, 9_900)
        assert len(result) == 100

    def test_bench_query_by_prefix(self, benchmark):
        store = EventStore(max_events=10_000)
        for index in range(10_000):
            store.append(make_event(index))
        result = benchmark(store.query, path_prefix="/d/f42", limit=10)
        assert result

    def test_bench_typed_query_scans_only_its_bucket(self, benchmark):
        # 10k events, four types round-robin: a typed query must touch
        # only that type's bucket (2500 entries), not the whole window.
        store = EventStore(max_events=10_000)
        types = [EventType.CREATED, EventType.DELETED,
                 EventType.MODIFIED, EventType.ATTRIB]
        store.extend([
            FileEvent(
                event_type=types[index % 4], path=f"/d/f{index}",
                is_dir=False, timestamp=float(index), name=f"f{index}",
                source="lustre",
            )
            for index in range(10_000)
        ])
        def typed_query():
            store.reset_op_counters()
            return store.query(event_type=EventType.DELETED)

        result = benchmark.pedantic(typed_query, rounds=3, iterations=1)
        assert len(result) == 2_500
        assert store.events_scanned == 2_500  # bucket-sized, not 10k

    def test_bench_time_window_query_bisects(self, benchmark):
        # Monotone timestamps: a narrow window must scan only in-window
        # entries, located by binary search.
        store = EventStore(max_events=10_000)
        for index in range(10_000):
            store.append(make_event(index))
        def window_query():
            store.reset_op_counters()
            return store.query(since_time=5_000.0, until_time=5_099.0)

        result = benchmark.pedantic(window_query, rounds=3, iterations=1)
        assert len(result) == 100
        assert store.events_scanned == 100  # window-sized, not 10k


class TestIngestBatchingBench:
    """Per-event vs batched ingest through the real store+publish path.

    The win is verified with *operation counters*, not wall-clock: the
    batched path must take one store lock per batch and perform at most
    one PUB send per same-topic run of a batch (exactly one per batch
    on a single-topic workload), while the per-event path pays both
    costs per event.
    """

    @staticmethod
    def build(tag):
        context = Context()
        config = AggregatorConfig(
            inbound_endpoint=f"inproc://ingest-in-{tag}",
            publish_endpoint=f"inproc://ingest-pub-{tag}",
            api_endpoint=f"inproc://ingest-rep-{tag}",
            store_max_events=max(INGEST_EVENTS, 1),
        )
        aggregator = Aggregator(context, config)
        subscriber = (
            context.sub(hwm=10_000_000)
            .connect(config.publish_endpoint)
            .subscribe(config.publish_topic)
        )
        return aggregator, subscriber

    def test_bench_ingest_per_event(self, benchmark):
        events = [make_event(index) for index in range(INGEST_EVENTS)]
        counter = {"round": 0}

        def per_event():
            aggregator, _sub = self.build(f"pe{counter['round']}")
            counter["round"] += 1
            for event in events:
                aggregator._handle_batch([event])
            return aggregator

        aggregator = benchmark.pedantic(per_event, rounds=3, iterations=1)
        # The per-event path pays one lock and one publish per event.
        assert aggregator.store.lock_acquisitions == INGEST_EVENTS
        assert aggregator.publisher.published == INGEST_EVENTS

    def test_bench_ingest_batched(self, benchmark):
        events = [make_event(index) for index in range(INGEST_EVENTS)]
        batches = [
            events[start:start + INGEST_BATCH]
            for start in range(0, len(events), INGEST_BATCH)
        ]
        counter = {"round": 0}

        def batched():
            aggregator, _sub = self.build(f"b{counter['round']}")
            counter["round"] += 1
            for batch in batches:
                aggregator._handle_batch(batch)
            return aggregator

        aggregator = benchmark.pedantic(batched, rounds=3, iterations=1)
        # O(1) lock acquisitions per batch, ≤1 fabric send per
        # (batch, topic) — one topic here, so exactly one per batch.
        assert aggregator.store.lock_acquisitions == len(batches)
        assert aggregator.publisher.published == len(batches)
        assert aggregator.batches_published == len(batches)
        assert aggregator.events_stored == INGEST_EVENTS

    def test_since_on_full_store_is_indexed(self):
        """Scan-count probe: ``since(seq)`` against a full 100k-event
        store touches only the entries above *seq*, never the window
        below it (the old implementation scanned all 100k)."""
        size = min(100_000, max(INGEST_EVENTS * 20, 1000))
        store = EventStore(max_events=size)
        store.extend([make_event(index) for index in range(size)])
        store.reset_op_counters()
        tail = store.since(size - 50)
        assert len(tail) == 50
        assert store.events_scanned == 50  # not `size`
        store.reset_op_counters()
        page = store.since(0, limit=25)
        assert len(page) == 25
        assert store.events_scanned == 25  # limit bounds the scan itself


class TestClusterIngestBench:
    """Throughput of the sharded aggregation tier's real hot path.

    Report batches flow through the rendezvous-routing sink onto real
    per-shard PUSH/PULL sockets and are pumped by stock aggregators —
    the exact cluster ingest path, minus collectors.  Verified by
    counters: every event lands on exactly one shard, and the spread
    covers all shards.
    """

    SHARDS = 4

    @staticmethod
    def make_mdt_event(index, mdt_index):
        return FileEvent(
            event_type=EventType.CREATED, path=f"/d{mdt_index}/f{index}",
            is_dir=False, timestamp=float(index), name=f"f{index}",
            source="lustre", mdt_index=mdt_index, record_index=index,
        )

    def build(self, tag):
        from repro.cluster import ShardMap, ShardRouter, ShardRoutingSink
        from repro.core.monitor import PushSink

        context = Context()
        shard_ids = tuple(f"shard{i}" for i in range(self.SHARDS))
        router = ShardRouter(ShardMap(shard_ids))
        shards, sinks = {}, {}
        for shard_id in shard_ids:
            config = AggregatorConfig(
                inbound_endpoint=f"inproc://{tag}.{shard_id}.in",
                publish_endpoint=f"inproc://{tag}.{shard_id}.pub",
                api_endpoint=f"inproc://{tag}.{shard_id}.api",
                store_max_events=max(INGEST_EVENTS, 1),
                shard_label=shard_id,
            )
            shards[shard_id] = Aggregator(
                context, config, name=f"{tag}.{shard_id}"
            )
            sinks[shard_id] = PushSink(
                context.push().connect(config.inbound_endpoint)
            )
        return ShardRoutingSink(router, sinks), shards

    def test_bench_cluster_ingest(self, benchmark):
        batches = [
            [
                self.make_mdt_event(index, mdt_index=(start // INGEST_BATCH) % 16)
                for index in range(start, start + INGEST_BATCH)
            ]
            for start in range(0, INGEST_EVENTS, INGEST_BATCH)
        ]
        counter = {"round": 0}

        def sharded_ingest():
            sink, shards = self.build(f"clb{counter['round']}")
            counter["round"] += 1
            sink.send_many(batches)
            for shard in shards.values():
                shard.pump_once()
            return shards

        shards = benchmark.pedantic(sharded_ingest, rounds=3, iterations=1)
        stored = {
            shard_id: shard.events_stored
            for shard_id, shard in shards.items()
        }
        assert sum(stored.values()) == sum(len(b) for b in batches)
        # Rendezvous routing is deterministic over the shard-id set, so
        # each shard must have stored exactly its routed share.
        from repro.cluster import ShardMap

        shard_map = ShardMap(tuple(shards))
        expected = {shard_id: 0 for shard_id in shards}
        for batch in batches:
            expected[shard_map.route(f"mdt:{batch[0].mdt_index}")] += len(batch)
        assert stored == expected


class TestTracingOverheadBench:
    """Op-counter proof that stage tracing costs what it claims.

    ``trace_sample_rate=0.0`` must compile to no-ops: zero histograms
    registered, zero histogram lock acquisitions, and the batched-path
    invariants (one store lock / one PUB send per batch) unchanged.
    At the default rate 1.0, tracing adds exactly one histogram lock
    per published chunk and nothing else.
    """

    @staticmethod
    def build(tag, sample_rate):
        context = Context()
        config = AggregatorConfig(
            inbound_endpoint=f"inproc://trace-in-{tag}",
            publish_endpoint=f"inproc://trace-pub-{tag}",
            api_endpoint=f"inproc://trace-rep-{tag}",
            store_max_events=max(INGEST_EVENTS, 1),
            trace_sample_rate=sample_rate,
        )
        return Aggregator(context, config)

    @staticmethod
    def feed(aggregator):
        events = [make_event(index) for index in range(INGEST_EVENTS)]
        batches = [
            events[start:start + INGEST_BATCH]
            for start in range(0, len(events), INGEST_BATCH)
        ]
        for batch in batches:
            aggregator._handle_batch(batch)
        return batches

    def test_tracing_disabled_adds_zero_lock_acquisitions(self, benchmark):
        counter = {"round": 0}

        def run():
            aggregator = self.build(f"off{counter['round']}", 0.0)
            counter["round"] += 1
            self.feed(aggregator)
            return aggregator

        aggregator = benchmark.pedantic(run, rounds=3, iterations=1)
        registry = aggregator.metrics.registry
        # No histograms exist at all, so no histogram lock was ever
        # taken — the disabled path performs zero tracing work.
        assert registry.histograms() == {}
        assert sum(
            h.lock_acquisitions for h in registry.histograms().values()
        ) == 0
        # The batching invariants are untouched.
        batches = INGEST_EVENTS // INGEST_BATCH
        assert aggregator.store.lock_acquisitions == batches
        assert aggregator.publisher.published == batches

    def test_tracing_enabled_costs_one_lock_per_chunk(self, benchmark):
        counter = {"round": 0}

        def run():
            aggregator = self.build(f"on{counter['round']}", 1.0)
            counter["round"] += 1
            self.feed(aggregator)
            return aggregator

        aggregator = benchmark.pedantic(run, rounds=3, iterations=1)
        registry = aggregator.metrics.registry
        batches = INGEST_EVENTS // INGEST_BATCH
        # Raw-list input carries no collected_ts, so only the publish
        # stage records: exactly one histogram lock per published chunk
        # (single topic + default flush policy => one chunk per batch).
        locks = {
            name: h.lock_acquisitions
            for name, h in registry.histograms().items()
        }
        assert locks == {"pipeline.publish": batches}
        assert registry.histogram("pipeline.publish").total == batches
        # Store/publish invariants hold at full sampling too.
        assert aggregator.store.lock_acquisitions == batches
        assert aggregator.publisher.published == batches


class TestQueueBench:
    def test_bench_sqs_send_receive_delete(self, benchmark):
        queue = ReliableQueue("bench", visibility_timeout=60.0)

        def round_trip():
            queue.send({"k": 1})
            (message,) = queue.receive()
            queue.delete(message.receipt)

        benchmark(round_trip)
        assert queue.approximate_depth == 0

    def test_bench_pubsub_fan_out_10(self, benchmark):
        context = Context()
        publisher = context.pub().bind("inproc://bench")
        subscribers = [
            context.sub(hwm=1_000_000).connect("inproc://bench").subscribe("")
            for _ in range(10)
        ]

        def publish():
            publisher.send("t", "payload")

        benchmark(publish)
        assert all(sub.pending > 0 for sub in subscribers)


class TestPathCacheBench:
    def test_bench_hit(self, benchmark):
        cache = PathCache(capacity=4096)
        fids = [Fid(1, index) for index in range(4096)]
        for index, fid in enumerate(fids):
            cache.put(fid, f"/dir{index}")
        target = fids[123]
        path = benchmark(cache.get, target)
        assert path == "/dir123"

    def test_bench_invalidate_prefix(self, benchmark):
        def build_and_invalidate():
            cache = PathCache(capacity=4096)
            for index in range(2048):
                cache.put(Fid(1, index), f"/tree/sub{index % 8}/d{index}")
            return cache.invalidate_prefix("/tree/sub3")

        removed = benchmark.pedantic(build_and_invalidate, rounds=20,
                                     iterations=1)
        assert removed == 256


class TestChangelogPipelineBench:
    def test_bench_lustre_create_op(self, benchmark):
        from repro.lustre import LustreFilesystem

        fs = LustreFilesystem()
        fs.mkdir("/d")
        user = fs.changelogs()[0].register_user()
        counter = {"n": 0}

        def create():
            counter["n"] += 1
            fs.create(f"/d/f{counter['n']}")
            changelog = fs.changelogs()[0]
            changelog.clear(user, changelog.last_index)

        benchmark(create)
