"""Extension experiment: event-delivery latency vs offered load.

The paper reports throughput only; a natural operator question is *how
stale is the stream* as load approaches the monitor's capacity.  This
sweep drives the Iota model at increasing fractions of its measured
capacity (~8.2k ev/s per-event, ~9.6k with the fix) and shows the
classic saturation knee: sub-millisecond-to-ms latency while under
capacity, unbounded backlog growth beyond it — and that the
batching/caching fix moves the knee past the generation maximum.
"""

import pytest

from repro.harness.reporting import render_table
from repro.perf import IOTA, PipelineConfig, run_pipeline


def run(arrival_rate, batch_size=1, cache_size=0, duration=20.0):
    return run_pipeline(
        PipelineConfig(
            profile=IOTA, duration=duration, arrival_rate=arrival_rate,
            batch_size=batch_size, cache_size=cache_size,
        )
    )


def test_latency_vs_load(report, benchmark):
    capacity = 8163.0  # measured single-MDS per-event capacity

    def sweep():
        rows = []
        for fraction in (0.25, 0.5, 0.75, 0.9, 1.1):
            result = run(arrival_rate=fraction * capacity)
            rows.append((fraction, result))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["offered load (x capacity)", "delivered ev/s", "mean latency",
         "p99 latency", "peak backlog"],
        [
            (
                f"{fraction:.2f}",
                f"{r.delivered_rate:,.0f}",
                f"{r.latency.mean * 1000:.2f} ms",
                f"{r.latency.percentile(0.99) * 1000:.2f} ms",
                f"{r.changelog_backlog_peak:,}",
            )
            for fraction, r in rows
        ],
        title="Latency vs offered load (Iota model, per-event d2path)",
    )
    report.add("Extension - latency saturation knee", table)

    by_fraction = dict(rows)
    # Below capacity: stable latency, tiny backlog.
    assert by_fraction[0.25].latency.mean < 0.005
    assert by_fraction[0.25].changelog_backlog_peak < 10
    # Beyond capacity: latency blows up with a growing backlog.
    assert by_fraction[1.1].latency.mean > 10 * by_fraction[0.25].latency.mean
    assert by_fraction[1.1].changelog_backlog_peak > 1000


def test_fix_moves_knee_past_generation_max():
    loaded = run(arrival_rate=9593.0, batch_size=64, cache_size=4096)
    assert loaded.keeps_up
    assert loaded.latency.percentile(0.99) < 0.05


def test_latency_grows_linearly_once_saturated():
    """In overload the queue grows at (arrival - capacity); latency of
    the last delivered events ~ backlog/capacity, so doubling the run
    roughly doubles the tail latency."""
    short = run(arrival_rate=10_000, duration=10.0)
    long = run(arrival_rate=10_000, duration=20.0)
    assert long.latency.max_seen > 1.5 * short.latency.max_seen
