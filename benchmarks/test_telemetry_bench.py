"""Telemetry-plane overhead: exposition, HTTP scrape, relay, alerts.

Four arms price the observability surfaces added by the operator
telemetry plane, on a registry shaped like a busy multi-shard cluster
(``TELEMETRY_BENCH_SCOPES`` shard scopes × a dozen series each plus
pipeline histograms):

* ``render`` — ``render_prometheus()`` of the full registry;
* ``scrape-http`` — end-to-end ``GET /metrics`` against a live
  :class:`TelemetryServer` (stdlib threaded HTTP);
* ``relay-merge`` — folding child-registry snapshots into the parent
  through :class:`RegistryRelay`, including an epoch bump halfway
  through to price the respawn path;
* ``alert-eval`` — :class:`AlertEvaluator` passes with the recommended
  rule set over every shard.

The numbers are *counter-asserted*: the render arm must emit exactly
the expected sample count, the scrape arm's ``scrapes`` counter must
equal the request count, the relay arm must apply every frame with
counters ending monotone-exact, and the evaluator's ``evaluations``
counter must match the pass count.  The CI smoke run shrinks the shape
via ``TELEMETRY_BENCH_SCOPES`` / ``TELEMETRY_BENCH_ITERS``.

Results land in ``benchmarks/results/BENCH_telemetry.json`` plus the
rendered table.
"""

import json
import os
import pathlib
import time
import urllib.request

from repro.metrics.registry import MetricsRegistry
from repro.telemetry import AlertEvaluator, RegistryRelay, TelemetryServer
from repro.telemetry.alerts import recommended_rules

N_SCOPES = int(os.environ.get("TELEMETRY_BENCH_SCOPES", "16"))
N_ITERS = int(os.environ.get("TELEMETRY_BENCH_ITERS", "200"))

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"

COUNTERS = ("events_stored", "batches_received", "api_requests", "crashes")
GAUGES = ("inbound_depth", "inbound_hwm", "inbound_credits", "store_len")
HISTOGRAMS = ("pipeline.publish", "pipeline.aggregate")


def build_registry(n_scopes):
    """A parent registry shaped like an n-shard cluster under load."""
    registry = MetricsRegistry()
    scopes = []
    for index in range(n_scopes):
        scope = registry.unique_scope(f"shard{index}")
        scopes.append(scope)
        for name in COUNTERS:
            registry.counter(f"{scope}.{name}").inc(1000 + index)
        for name in GAUGES:
            registry.gauge(f"{scope}.{name}").set(index * 10)
        for name in HISTOGRAMS:
            histogram = registry.histogram(f"{scope}.{name}")
            for value in (0.0001, 0.001, 0.01):
                histogram.record(value, 100)
    return registry, scopes


def build_child():
    """A child registry as the multiproc relay ships it."""
    child = MetricsRegistry()
    scope = child.unique_scope("s0")
    for name in COUNTERS:
        child.counter(f"{scope}.{name}")
    for name in GAUGES:
        child.gauge(f"{scope}.{name}")
    for name in HISTOGRAMS:
        child.histogram(name)
    return child, scope


def bench_render(registry, iters):
    text = registry.render_prometheus()
    samples = sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )
    started = time.perf_counter()
    for _ in range(iters):
        text = registry.render_prometheus()
    elapsed = time.perf_counter() - started
    # Every series must be rendered: per scope, the counters and gauges
    # plus per-histogram bucket/sum/count lines; plus gauge_fn_errors.
    histogram = next(iter(registry.histograms().values()))
    per_hist = len(histogram.counts()) + 2
    expected = N_SCOPES * (
        len(COUNTERS) + len(GAUGES) + len(HISTOGRAMS) * per_hist
    )
    assert samples >= expected, (samples, expected)
    return {
        "scenario": "render",
        "iterations": iters,
        "samples_per_render": samples,
        "elapsed_s": round(elapsed, 4),
        "renders_per_s": round(iters / elapsed, 1),
    }


def bench_scrape(registry, iters):
    server = TelemetryServer(registry)
    server.start()
    try:
        url = server.url + "/metrics"
        with urllib.request.urlopen(url, timeout=10) as response:
            body = response.read()
        size = len(body)
        started = time.perf_counter()
        for _ in range(iters):
            with urllib.request.urlopen(url, timeout=10) as response:
                response.read()
        elapsed = time.perf_counter() - started
        assert server.scrapes.value == iters + 1, server.scrapes.value
    finally:
        server.close()
    return {
        "scenario": "scrape-http",
        "iterations": iters,
        "body_bytes": size,
        "elapsed_s": round(elapsed, 4),
        "scrapes_per_s": round(iters / elapsed, 1),
    }


def bench_relay(iters):
    parent = MetricsRegistry()
    bridge_scope = parent.unique_scope("shard0")
    relay = RegistryRelay(parent, bridge_scope, strip_scopes=("s0",))
    child, scope = build_child()
    counter = child.counter(f"{scope}.events_stored")
    epoch, total = 1, 0
    started = time.perf_counter()
    for index in range(iters):
        if index == iters // 2:
            # Respawn: a fresh child registry, counters restart at the
            # banked total via the epoch offset.
            child, scope = build_child()
            counter = child.counter(f"{scope}.events_stored")
            epoch += 1
        counter.inc(10)
        total += 10
        relay.merge(child.export_state(), epoch=epoch)
    elapsed = time.perf_counter() - started
    assert relay.merges == iters, relay.merges
    merged = parent.counter(f"{bridge_scope}.events_stored").value
    assert merged == total, (merged, total)
    return {
        "scenario": "relay-merge",
        "iterations": iters,
        "series_per_frame": len(COUNTERS) + len(GAUGES) + len(HISTOGRAMS),
        "elapsed_s": round(elapsed, 4),
        "merges_per_s": round(iters / elapsed, 1),
    }


def bench_alerts(registry, iters):
    evaluator = AlertEvaluator(
        registry, rules=tuple(recommended_rules())
    )
    evaluator.evaluate_once(now=0.0)
    started = time.perf_counter()
    for index in range(iters):
        evaluator.evaluate_once(now=float(index + 1))
    elapsed = time.perf_counter() - started
    assert evaluator.evaluations.value == iters + 1
    return {
        "scenario": "alert-eval",
        "iterations": iters,
        "rules": len(evaluator.rules),
        "elapsed_s": round(elapsed, 4),
        "evals_per_s": round(iters / elapsed, 1),
    }


class TestTelemetryOverhead:
    def test_overhead_table(self, report):
        registry, _scopes = build_registry(N_SCOPES)
        scenarios = [
            bench_render(registry, N_ITERS),
            bench_scrape(registry, max(N_ITERS // 4, 10)),
            bench_relay(N_ITERS),
            bench_alerts(registry, N_ITERS),
        ]

        rate_keys = {
            "render": "renders_per_s",
            "scrape-http": "scrapes_per_s",
            "relay-merge": "merges_per_s",
            "alert-eval": "evals_per_s",
        }
        lines = [
            f"{'scenario':<14} {'iters':>7} {'elapsed s':>10} {'ops/s':>12}"
        ]
        for row in scenarios:
            lines.append(
                f"{row['scenario']:<14} {row['iterations']:>7} "
                f"{row['elapsed_s']:>10.4f} "
                f"{row[rate_keys[row['scenario']]]:>12.1f}"
            )
        table = "\n".join(lines)
        report.add("observability - telemetry plane overhead", table)

        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / "BENCH_telemetry.json").write_text(
            json.dumps(
                {
                    "scopes": N_SCOPES,
                    "iterations": N_ITERS,
                    "scenarios": scenarios,
                },
                indent=2,
            )
            + "\n"
        )
