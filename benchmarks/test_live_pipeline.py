"""Live-implementation microbenchmarks (wall clock, this Python code).

The calibrated model reproduces the paper's numbers; these benchmarks
measure what *this implementation* actually sustains on the host —
the end-to-end monitor pipeline, the processing-stage variants, the
Ripple rule path and the inotify baseline — and print an events/s
summary alongside the timing table.
"""

import pytest

from repro.core import (
    CollectorConfig,
    LustreMonitor,
    MonitorConfig,
    ProcessorConfig,
)
from repro.fs.memfs import MemoryFilesystem
from repro.fs.watchdog import FileSystemEventHandler, Observer
from repro.harness.reporting import render_table
from repro.lustre import LustreFilesystem
from repro.ripple import Action, RippleAgent, RippleService, Trigger

N_EVENTS = 2000


def loaded_monitor(batch_size=1, cache_size=0):
    fs = LustreFilesystem()
    fs.makedirs("/d")
    monitor = LustreMonitor(
        fs,
        MonitorConfig(
            collector=CollectorConfig(
                read_batch=256,
                processor=ProcessorConfig(
                    batch_size=batch_size, cache_size=cache_size
                ),
            )
        ),
    )
    sink = []
    monitor.subscribe(lambda seq, ev: sink.append(seq))
    for index in range(N_EVENTS):
        fs.create(f"/d/f{index}")
    return monitor, sink


class TestMonitorPipeline:
    def test_bench_drain_per_event_resolution(self, benchmark):
        def run():
            monitor, sink = loaded_monitor()
            monitor.drain()
            return len(sink)

        delivered = benchmark.pedantic(run, rounds=3, iterations=1)
        assert delivered == N_EVENTS

    def test_bench_drain_batched_cached(self, benchmark):
        def run():
            monitor, sink = loaded_monitor(batch_size=64, cache_size=1024)
            monitor.drain()
            return len(sink)

        delivered = benchmark.pedantic(run, rounds=3, iterations=1)
        assert delivered == N_EVENTS

    def test_live_throughput_summary(self, report):
        import time

        rows = []
        for label, kwargs in (
            ("per-event d2path", {}),
            ("batch=64 + cache=1024", {"batch_size": 64, "cache_size": 1024}),
        ):
            monitor, sink = loaded_monitor(**kwargs)
            start = time.perf_counter()
            monitor.drain()
            elapsed = time.perf_counter() - start
            rows.append((label, f"{len(sink) / elapsed:,.0f}"))
        report.add(
            "Live implementation - monitor throughput (this host)",
            render_table(
                ["processing mode", "events/s (wall clock)"], rows,
                title="In-memory substrate; compare shapes, not absolutes",
            ),
        )


class TestRippleRulePath:
    def test_bench_rule_evaluation_and_action(self, benchmark):
        service = RippleService()
        agent = RippleAgent("dev")
        service.register_agent(agent)
        agent.attach_local_filesystem()
        agent.fs.makedirs("/in")
        service.add_rule(
            Trigger(agent_id="dev", path_prefix="/in", name_pattern="*.dat"),
            Action("command", "dev",
                   {"command": "copy", "dst": "{dir}/{stem}.bak"}),
        )
        counter = {"n": 0}

        def one_event():
            index = counter["n"]
            counter["n"] += 1
            agent.fs.create(f"/in/f{index}.dat", b"x")
            service.run_until_quiet()

        benchmark(one_event)
        assert agent.actions_executed == counter["n"]

    def test_bench_event_filtering_no_match(self, benchmark):
        """Cost of filtering an event that matches no rule (the common
        case on a busy filesystem)."""
        from repro.core.events import EventType, FileEvent

        service = RippleService()
        agent = RippleAgent("dev")
        service.register_agent(agent)
        for index in range(50):
            service.add_rule(
                Trigger(agent_id="dev", path_prefix=f"/watched{index}",
                        name_pattern="*.csv"),
                Action("email", "dev", {"to": "x@y"}),
            )
        event = FileEvent(
            event_type=EventType.CREATED, path="/elsewhere/f.txt",
            is_dir=False, timestamp=0.0, name="f.txt", source="inotify",
        )
        benchmark(agent.ingest_event, event)
        assert agent.events_matched == 0


class TestInotifyBaseline:
    def test_bench_observer_dispatch(self, benchmark):
        fs = MemoryFilesystem()
        fs.makedirs("/w")
        observer = Observer(fs)
        seen = []

        class Handler(FileSystemEventHandler):
            def on_created(self, event):
                seen.append(event.src_path)

        observer.schedule(Handler(), "/w")
        counter = {"n": 0}

        def create_and_drain():
            index = counter["n"]
            counter["n"] += 1
            fs.create(f"/w/f{index}")
            observer.drain()

        benchmark(create_and_drain)
        assert len(seen) == counter["n"]

    def test_bench_watch_setup_crawl(self, benchmark):
        """The inotify setup cost the paper calls out: crawling the tree
        to place one watch per directory."""
        fs = MemoryFilesystem()
        for top in range(20):
            for sub in range(10):
                fs.makedirs(f"/tree/t{top}/s{sub}")

        def schedule():
            observer = Observer(fs)
            observer.schedule(FileSystemEventHandler(), "/tree")
            count = observer.directories_watched
            observer.close()
            return count

        watched = benchmark.pedantic(schedule, rounds=3, iterations=1)
        assert watched == 1 + 20 + 200
