"""A1 — §5.2 proposed fix: batching + path caching.

The paper attributes the throughput gap to "the repetitive use of the
d2path tool" and proposes "process events in batches ... and temporarily
cache path mappings".  This ablation sweeps both knobs on the Iota model
and shows the fix closes the gap (monitor matches the generation rate).
"""

import pytest

from repro.harness.reporting import render_table
from repro.perf import IOTA, PipelineConfig, run_pipeline


def run(batch_size=1, cache_size=0, **kwargs):
    return run_pipeline(
        PipelineConfig(
            profile=IOTA, duration=15.0, batch_size=batch_size,
            cache_size=cache_size, **kwargs,
        )
    )


def test_ablation_batching_and_caching(report, benchmark):
    configurations = [
        ("paper (per-event d2path)", 1, 0),
        ("batch=16", 16, 0),
        ("batch=64", 64, 0),
        ("cache=4096", 1, 4096),
        ("batch=64 + cache=4096", 64, 4096),
    ]

    def sweep():
        rows = []
        for label, batch, cache in configurations:
            result = run(batch_size=batch, cache_size=cache)
            rows.append((label, result))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["configuration", "monitor ev/s", "vs generation", "d2path calls",
         "cache hit rate"],
        [
            (
                label,
                f"{r.delivered_rate:,.0f}",
                f"{100 - r.shortfall_percent:.1f}%",
                f"{r.d2path_invocations:,}",
                f"{r.cache_hit_rate:.3f}" if r.config.cache_size else "-",
            )
            for label, r in rows
        ],
        title="A1 - d2path batching + path-cache ablation (Iota model)",
    )
    report.add("Ablation A1 - batching and caching", table)

    by_label = dict(rows)
    baseline = by_label["paper (per-event d2path)"]
    fixed = by_label["batch=64 + cache=4096"]
    assert not baseline.keeps_up
    assert fixed.keeps_up
    assert by_label["batch=64"].delivered_rate > baseline.delivered_rate
    assert by_label["cache=4096"].delivered_rate > baseline.delivered_rate


def test_cache_size_sweep_monotone():
    rates = [
        run(cache_size=size).delivered_rate for size in (0, 64, 512, 4096)
    ]
    assert all(b >= a * 0.99 for a, b in zip(rates, rates[1:]))
    assert rates[-1] > rates[0]


def test_batch_size_sweep_amortises_overhead():
    rates = {b: run(batch_size=b).delivered_rate for b in (1, 4, 16, 64)}
    assert rates[4] > rates[1]
    assert rates[64] >= rates[16] * 0.99
