"""Motivation experiment (paper §3, Limitations): why not inotify?

Reproduces the arithmetic and behaviour behind the paper's three
arguments against targeted inotify monitoring on large filesystems:

1. setup cost — watchers require crawling every directory;
2. kernel memory — ~1 KiB per watch, 512 MiB at the default
   524,288-watch limit;
3. loss under burst — the bounded event queue overflows, silently
   dropping events (the ChangeLog monitor loses nothing).
"""

import pytest

from repro.baselines import InotifyMonitor
from repro.core import LustreMonitor
from repro.fs.inotify import DEFAULT_MAX_USER_WATCHES, WATCH_MEMORY_BYTES
from repro.fs.memfs import MemoryFilesystem
from repro.harness.reporting import render_table
from repro.lustre import LustreFilesystem


def build_tree(fs, n_dirs, files_per_dir=0):
    for index in range(n_dirs):
        fs.makedirs(f"/tree/d{index:05d}")
        for f in range(files_per_dir):
            fs.create(f"/tree/d{index:05d}/f{f}", b"")


def test_motivation_summary(report, benchmark):
    def measure():
        rows = []
        for n_dirs in (100, 1000, 5000):
            fs = MemoryFilesystem()
            build_tree(fs, n_dirs)
            monitor = InotifyMonitor(fs, lambda event: None)
            monitor.watch("/tree")
            rows.append(
                (
                    f"{n_dirs:,}",
                    f"{monitor.setup_directories_crawled:,}",
                    f"{monitor.kernel_memory_bytes / 1024:,.0f} KiB",
                )
            )
            monitor.close()
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    projection = (
        f"default watch limit {DEFAULT_MAX_USER_WATCHES:,} directories -> "
        f"{DEFAULT_MAX_USER_WATCHES * WATCH_MEMORY_BYTES // (1024 * 1024)} MiB "
        "of unswappable kernel memory (paper: 'over 512MB')"
    )
    table = render_table(
        ["directories", "crawled at setup", "kernel memory"],
        rows,
        title="Motivation - inotify watcher costs (paper section 3)",
    )
    report.add("Motivation - inotify costs", table + "\n" + projection)
    # Setup cost scales linearly with directory count (tree root + n).
    crawled = [int(row[1].replace(",", "")) for row in rows]
    assert crawled == [101, 1001, 5001]


def test_paper_memory_projection_exact():
    assert DEFAULT_MAX_USER_WATCHES * WATCH_MEMORY_BYTES == 512 * 1024 * 1024


def test_inotify_loses_events_under_burst_changelog_does_not(report, benchmark):
    burst = 5000

    # inotify path: small kernel queue, drained only after the burst.
    def run_inotify_burst():
        local = MemoryFilesystem()
        local.makedirs("/w")
        received = []
        inotify_monitor = InotifyMonitor(local, received.append)
        inotify_monitor.observer.inotify.max_queued_events = 1024
        inotify_monitor.watch("/w")
        for index in range(burst):
            local.create(f"/w/f{index}", b"")
        inotify_monitor.drain()
        return received

    received = benchmark.pedantic(run_inotify_burst, rounds=1, iterations=1)
    inotify_lost = burst - len(received)

    # ChangeLog path: same burst, collector attached only afterwards —
    # the log retains everything until consumed.
    lustre = LustreFilesystem()
    lustre.mkdir("/w")
    monitor = LustreMonitor(lustre)
    changelog_seen = []
    monitor.subscribe(lambda seq, ev: changelog_seen.append(seq))
    for index in range(burst):
        lustre.create(f"/w/f{index}")
    monitor.drain()

    table = render_table(
        ["detector", "events generated", "events delivered", "lost"],
        [
            ("inotify (1024-entry queue)", f"{burst:,}",
             f"{len(received):,}", f"{inotify_lost:,}"),
            ("ChangeLog monitor", f"{burst:,}",
             f"{len(changelog_seen):,}", "0"),
        ],
        title="Burst-loss comparison: inotify queue vs ChangeLog retention",
    )
    report.add("Motivation - burst loss comparison", table)

    assert inotify_lost > 0
    assert len(changelog_seen) == burst
