"""Storage ablation: volatile memory window vs durable segment log.

Four scenarios ingest the same synthetic changelog workload through an
:class:`EventStore` — ``memory`` (the historical volatile window) and
the segment-log backend under each fsync policy (``never``, ``rotate``,
``always``) — then the segment log is recovered cold to price the
crash-replay path.

The numbers are *counter-asserted*, not taken on faith: every scenario
must store exactly the generated event count, take exactly one lock
acquisition per batch, and (for the segment arms) account for every
record in the backend's own ``records_appended`` counter; the recovery
arm must reproduce the final sequence number and window with zero torn
records.  The CI smoke run shrinks the workload via
``STORE_BENCH_EVENTS``.

Results land in ``benchmarks/results/BENCH_store.json`` plus the
rendered ablation table.
"""

import json
import os
import pathlib
import shutil
import tempfile
import time

from repro.core.events import EventType, FileEvent
from repro.core.store import EventStore
from repro.core.storage import open_store

N_EVENTS = int(os.environ.get("STORE_BENCH_EVENTS", "20000"))
BATCH = 200
WINDOW = N_EVENTS  # no rotation: every arm holds the full history
SEGMENT_BYTES = 512 * 1024

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def make_event(i):
    """A changelog-shaped event: deep path plus FID and record fields,
    so the packed record size (and the per-event index work) matches
    what a real collector feeds the store."""
    path = (
        f"/campaign/run{i // 1000:03d}/user{i % 40}"
        f"/job{i % 333}/step{i % 7}/output/part-{i:06d}.h5"
    )
    return FileEvent(
        event_type=EventType.CREATED, path=path, is_dir=False,
        timestamp=float(i), name=f"part-{i:06d}.h5", source="lustre",
        fid=f"0x200000400:0x{i:x}:0x0", parent_fid="0x200000007:0x1:0x0",
        mdt_index=i % 4, record_index=i,
    )


def run_ingest(name, store, batches):
    started = time.perf_counter()
    for batch in batches:
        store.extend(batch)
    elapsed = time.perf_counter() - started

    # Counter assertions: the run only counts if the store accounted
    # for every event in exactly one lock acquisition per batch.
    assert store.total_stored == N_EVENTS, (name, store.total_stored)
    assert store.last_seq == N_EVENTS, (name, store.last_seq)
    assert store.lock_acquisitions == len(batches), (
        name, store.lock_acquisitions, len(batches),
    )
    stats = store.backend.stats()
    if store.backend.durable:
        assert stats["records_appended"] == N_EVENTS, (name, stats)
        assert stats["torn_records"] == 0, (name, stats)
    return {
        "scenario": name,
        "events": N_EVENTS,
        "batch": BATCH,
        "elapsed_s": round(elapsed, 4),
        "events_per_s": round(N_EVENTS / elapsed, 1),
        "fsyncs": stats.get("fsyncs", 0),
        "segments": stats.get("segments", 0),
        "log_bytes": stats.get("log_bytes", 0),
    }


class TestStoreAblation:
    def test_ablation_table(self, report):
        batches = [
            [make_event(i) for i in range(start, min(start + BATCH, N_EVENTS))]
            for start in range(0, N_EVENTS, BATCH)
        ]
        directory = tempfile.mkdtemp(prefix="repro-store-bench-")
        scenarios = []
        try:
            scenarios.append(
                run_ingest("memory", EventStore(max_events=WINDOW), batches)
            )
            recovery_url = None
            for policy in ("never", "rotate", "always"):
                url = (
                    f"segments://{directory}/{policy}"
                    f"?segment_bytes={SEGMENT_BYTES}&fsync={policy}"
                )
                store = open_store(url, max_events=WINDOW)
                scenarios.append(run_ingest(f"segments-{policy}", store, batches))
                store.close()
                if policy == "rotate":
                    recovery_url = url

            # Cold crash-recovery: rebuild the store from the log alone.
            started = time.perf_counter()
            recovered = open_store(recovery_url, max_events=WINDOW)
            recovery_elapsed = time.perf_counter() - started
            assert recovered.last_seq == N_EVENTS
            assert len(recovered) == N_EVENTS
            assert recovered.backend.stats()["torn_records"] == 0
            recovered.close()
            recovery = {
                "scenario": "recovery-rotate",
                "events": N_EVENTS,
                "elapsed_s": round(recovery_elapsed, 4),
                "events_per_s": round(N_EVENTS / recovery_elapsed, 1),
            }
        finally:
            shutil.rmtree(directory, ignore_errors=True)

        lines = [
            f"{'scenario':<18} {'events':>8} {'elapsed s':>10} "
            f"{'ev/s':>12} {'fsyncs':>7} {'log KiB':>8}"
        ]
        for row in scenarios:
            lines.append(
                f"{row['scenario']:<18} {row['events']:>8} "
                f"{row['elapsed_s']:>10.4f} {row['events_per_s']:>12.1f} "
                f"{row['fsyncs']:>7} {row['log_bytes'] // 1024:>8}"
            )
        lines.append(
            f"{recovery['scenario']:<18} {recovery['events']:>8} "
            f"{recovery['elapsed_s']:>10.4f} "
            f"{recovery['events_per_s']:>12.1f} {'-':>7} {'-':>8}"
        )
        lines.append(
            "every scenario counter-asserted: stored == generated, one "
            "lock per batch, zero torn records, recovery reproduces the "
            "final sequence"
        )
        report.add("Ablation - store durability backends", "\n".join(lines))
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / "BENCH_store.json").write_text(
            json.dumps(
                {
                    "events": N_EVENTS,
                    "batch": BATCH,
                    "segment_bytes": SEGMENT_BYTES,
                    "scenarios": scenarios,
                    "recovery": recovery,
                },
                indent=2,
            )
            + "\n"
        )
        by_name = {row["scenario"]: row for row in scenarios}
        # Sanity bars, not supremacy claims.  The write-ahead tax is
        # dominated by per-record serialization (pack + crc + page-cache
        # write), so the flush-only policy stays within ~25x of the
        # volatile window; per-batch fsync can only add to that, never
        # beat it by more than noise.
        assert (
            by_name["segments-never"]["events_per_s"]
            > by_name["memory"]["events_per_s"] / 25
        ), scenarios
        assert (
            by_name["segments-always"]["events_per_s"]
            <= by_name["segments-never"]["events_per_s"] * 1.5
        ), scenarios
