"""E3 — §5.2 event throughput: monitor rate vs generation rate.

The paper's headline measurement: generating events at each testbed's
maximum rate, the monitor detects/processes/reports 1053 of 1366
events/s on AWS and 8162 of 9593 (−14.91%) on Iota, bottlenecked on the
d2path preprocessing step.  The pipeline model must *derive* those
rates and that bottleneck from the calibrated per-op costs.
"""

import os

import pytest

from repro.harness import experiment_throughput
from repro.perf import AWS, IOTA


@pytest.mark.parametrize(
    "profile,paper_rate", [(AWS, 1053.0), (IOTA, 8162.0)], ids=["AWS", "Iota"]
)
def test_throughput(profile, paper_rate, report, benchmark):
    result = benchmark.pedantic(
        experiment_throughput, args=(profile,), kwargs={"duration": 30.0},
        rounds=1, iterations=1,
    )
    assert result.measured_monitor_rate == pytest.approx(paper_rate, rel=0.05)
    assert result.result.bottleneck == "process"
    assert result.result.delivered_rate < result.result.generation_rate
    report.add(f"Throughput (section 5.2) - {profile.name}", result.render())


def test_iota_shortfall_matches_paper_14_91():
    result = experiment_throughput(IOTA, duration=30.0)
    assert result.measured_shortfall_percent == pytest.approx(14.91, abs=0.75)


def test_no_event_loss_after_processing():
    """Paper: 'there is no loss of events once they have been processed'
    — everything the collector reports reaches the consumer."""
    result = experiment_throughput(IOTA, duration=10.0).result
    assert result.delivered >= result.collected - 64  # tail in flight at cutoff


class TestLiveIngestBatching:
    """Batched vs per-event ingest through the real monitor pipeline.

    Complements the calibrated-model experiments above with the live
    implementation: same workload, same delivery guarantees, but the
    batched wire format amortises store locking and fabric sends —
    verified by operation counters, not wall-clock.
    """

    N_FILES = int(os.environ.get("INGEST_BENCH_EVENTS", "2000"))

    @staticmethod
    def run_monitor(batch_events):
        from repro.core import (
            AggregatorConfig,
            CollectorConfig,
            LustreMonitor,
            MonitorConfig,
        )
        from repro.lustre import LustreFilesystem
        from repro.util.clock import ManualClock

        fs = LustreFilesystem(clock=ManualClock())
        fs.makedirs("/d")
        monitor = LustreMonitor(
            fs,
            MonitorConfig(
                collector=CollectorConfig(read_batch=256),
                aggregator=AggregatorConfig(
                    hwm=10_000_000, batch_events=batch_events
                ),
            ),
        )
        seen = []
        monitor.subscribe(lambda seq, event: seen.append(seq))
        for index in range(TestLiveIngestBatching.N_FILES):
            fs.create(f"/d/f{index}")
        monitor.drain()
        return monitor, seen

    @pytest.mark.parametrize("batch_events", [1, 0], ids=["per-event", "batched"])
    def test_bench_live_ingest(self, benchmark, batch_events):
        monitor, seen = benchmark.pedantic(
            self.run_monitor, args=(batch_events,), rounds=3, iterations=1
        )
        n_events = monitor.aggregator.events_stored
        assert len(seen) == n_events
        if batch_events == 1:
            # Per-event flush: one PUB message per event.
            assert monitor.aggregator.batches_published == n_events
        else:
            # Whole-poll batches: PUB messages scale with polls, so the
            # fabric does far less work for the same delivered stream.
            assert monitor.aggregator.batches_published < n_events / 10
            assert (
                monitor.aggregator.store.lock_acquisitions
                <= monitor.aggregator.batches_received + 1
            )
