"""E5 — Figure 3 + §5.3: NERSC dump differencing and scaling analysis.

Synthesises a 36-day dump series statistically similar to tlproject2
(scaled 1:1000), runs the paper's consecutive-day differ, and reproduces
the scaling arithmetic: peak diffs/day → events/s over 24 h → 8-hour
worst case → linear Aurora extrapolation.  The paper's conclusion —
real-world requirements sit far below the monitor's measured throughput
— must hold.
"""

import pytest

from repro.harness import experiment_figure3
from repro.perf.testbeds import PAPER_MONITOR_THROUGHPUT


def test_figure3(report, benchmark):
    result = benchmark.pedantic(
        experiment_figure3, kwargs={"base_files": 850_000}, rounds=1,
        iterations=1,
    )
    # Peak daily differences in the paper's ballpark (3.6M/day).
    ratio = result.scaled_peak_diffs / result.paper_peak_diffs
    assert 0.5 <= ratio <= 2.0
    # The paper's arithmetic chain.
    assert result.analysis.events_per_second_8h == pytest.approx(
        3 * result.analysis.events_per_second_24h
    )
    assert result.analysis.aurora_factor == pytest.approx(21.1, abs=0.2)
    report.add("Figure 3 - NERSC daily differences + scaling", result.render())


def test_requirements_well_within_monitor_capability():
    """'a rate sufficient to meet the predicted needs of the forthcoming
    150PB Aurora file system' — extrapolated demand << Iota throughput."""
    result = experiment_figure3(base_files=200_000)
    aurora_demand = result.analysis.extrapolate()
    assert aurora_demand < 0.8 * PAPER_MONITOR_THROUGHPUT["Iota"]


def test_worst_case_concentration_factor():
    """42 ev/s average vs 127 ev/s when concentrated into 8 hours."""
    result = experiment_figure3(base_files=200_000)
    assert (
        result.analysis.events_per_second_8h
        / result.analysis.events_per_second_24h
    ) == pytest.approx(3.0)
