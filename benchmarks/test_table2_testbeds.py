"""E2 — Table 2: testbed performance characteristics.

Runs the paper's 10,000-file create/modify/delete script against the
Lustre model under each testbed's calibrated per-op latencies and checks
the derived rates against Table 2 (see DESIGN.md for the calibration
policy: per-op latencies and the combined maximum are testbed inputs;
the per-phase record counts and rates are derived by the model).
"""

import pytest

from repro.harness import experiment_table2
from repro.perf import AWS, IOTA


@pytest.mark.parametrize("profile", [AWS, IOTA], ids=["AWS", "Iota"])
def test_table2(profile, report, benchmark):
    result = benchmark.pedantic(
        experiment_table2, args=(profile,), kwargs={"n_files": 10_000},
        rounds=1, iterations=1,
    )
    assert result.created_per_s == pytest.approx(result.paper["created"], rel=0.01)
    assert result.modified_per_s == pytest.approx(result.paper["modified"], rel=0.01)
    assert result.deleted_per_s == pytest.approx(result.paper["deleted"], rel=0.01)
    report.add(f"Table 2 - {profile.name} testbed characteristics", result.render())


def test_table2_iota_dominates_aws(report):
    aws = experiment_table2(AWS, n_files=2000)
    iota = experiment_table2(IOTA, n_files=2000)
    assert iota.created_per_s > 3 * aws.created_per_s
    assert iota.total_per_s > 7 * aws.total_per_s
