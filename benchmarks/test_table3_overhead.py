"""E4 — Table 3: maximum monitor resource utilisation.

Replays the Iota throughput run with per-component resource sampling and
compares peak CPU% / memory against Table 3.  The *shape* assertions are
the load-bearing ones: collector ≫ aggregator > consumer in CPU, and the
aggregator's memory dominated by the rotating event store.
"""

import pytest

from repro.harness import experiment_table3
from repro.perf import IOTA, PipelineConfig, run_pipeline


def test_table3(report, benchmark):
    result = benchmark.pedantic(
        experiment_table3, kwargs={"duration": 30.0}, rounds=1, iterations=1
    )
    collector_cpu, collector_mem = result.measured["collector"]
    aggregator_cpu, aggregator_mem = result.measured["aggregator"]
    consumer_cpu, consumer_mem = result.measured["consumer"]
    # Paper values within tolerance.
    assert collector_cpu == pytest.approx(6.667, rel=0.10)
    assert aggregator_cpu == pytest.approx(0.059, rel=0.15)
    assert consumer_cpu == pytest.approx(0.02, rel=0.15)
    assert collector_mem == pytest.approx(281.6, rel=0.10)
    assert aggregator_mem == pytest.approx(217.6, rel=0.10)
    assert consumer_mem == pytest.approx(12.8, rel=0.10)
    # Shape: ordering and smallness.
    assert collector_cpu > 10 * aggregator_cpu > 10 * consumer_cpu / 10
    assert collector_cpu < 10.0  # "the CPU cost of operating the monitor is small"
    report.add("Table 3 - monitor resource utilisation (Iota)", result.render())


def test_memory_dominated_by_event_store():
    """Paper: 'The memory footprint is due to the use of a local store
    that records a list of every event captured by the monitor' —
    capping the store caps the memory."""
    full = run_pipeline(PipelineConfig(profile=IOTA, duration=30.0))
    aggregator_mem = full.resources["aggregator"].memory_mb
    base = IOTA.aggregator_cost.base_memory_mb
    assert aggregator_mem > 20 * base  # store dwarfs the base footprint
