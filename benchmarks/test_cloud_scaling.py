"""Extension experiment: sizing Ripple's cloud side (Figure 1).

Given the monitor's measured output rates, how many Lambda-style
workers does the cloud service need?  Sweeps worker concurrency at the
AWS and Iota event rates, and shows at-least-once overhead under
injected failures.
"""

import pytest

from repro.harness.reporting import render_table
from repro.perf import CloudConfig, run_cloud
from repro.perf.testbeds import PAPER_MONITOR_THROUGHPUT


def test_concurrency_sizing(report, benchmark):
    service_seconds = 2.0e-3  # per-entry rule evaluation + dispatch

    def sweep():
        rows = []
        for testbed, rate in sorted(PAPER_MONITOR_THROUGHPUT.items()):
            for concurrency in (1, 2, 4, 8, 16, 32):
                result = run_cloud(
                    CloudConfig(
                        arrival_rate=rate,
                        service_seconds=service_seconds,
                        concurrency=concurrency,
                        duration=20.0,
                    )
                )
                rows.append((testbed, rate, concurrency, result))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["testbed", "event rate", "workers", "processed ev/s", "util",
         "p99 latency", "keeps up"],
        [
            (
                testbed,
                f"{rate:,.0f}",
                concurrency,
                f"{r.processed_rate:,.0f}",
                f"{r.utilisation:.2f}",
                f"{r.latency.percentile(0.99) * 1000:.1f} ms",
                "yes" if r.keeps_up else "no",
            )
            for testbed, rate, concurrency, r in rows
        ],
        title=(
            "Cloud-side sizing: Lambda workers needed to absorb the "
            "monitor's output (2 ms/entry service time)"
        ),
    )
    report.add("Extension - cloud worker sizing", table)

    by_key = {(t, c): r for t, _rate, c, r in rows}
    # AWS (1053 ev/s x 2ms = 2.1 busy workers): 4 suffice, 2 do not.
    assert not by_key[("AWS", 2)].keeps_up
    assert by_key[("AWS", 4)].keeps_up
    # Iota (8162 ev/s x 2ms = 16.3 busy workers): 8 saturate, 32 cruise.
    assert not by_key[("Iota", 8)].keeps_up
    assert by_key[("Iota", 32)].keeps_up
    assert by_key[("Iota", 8)].utilisation == pytest.approx(1.0, rel=0.02)


def test_utilisation_matches_theory():
    """util = arrival_rate * service / concurrency below saturation."""
    result = run_cloud(
        CloudConfig(arrival_rate=1000.0, service_seconds=1e-3, concurrency=4)
    )
    assert result.utilisation == pytest.approx(0.25, rel=0.05)
    assert result.keeps_up


def test_failures_cost_redeliveries_not_loss():
    result = run_cloud(
        CloudConfig(
            arrival_rate=500.0,
            service_seconds=1e-3,
            concurrency=4,
            failure_probability=0.2,
            visibility_timeout=0.5,
            duration=30.0,
        )
    )
    # Everything is eventually processed exactly once (per success)...
    assert result.keeps_up
    # ...at the cost of ~25% extra invocations (p/(1-p) redelivery tax);
    # a small tail of failures is still awaiting redelivery at cutoff.
    assert result.failures - result.redeliveries < 150
    assert result.failures > 0.15 * result.processed


def test_saturated_pool_grows_backlog():
    result = run_cloud(
        CloudConfig(arrival_rate=2000.0, service_seconds=1e-3, concurrency=1)
    )
    assert not result.keeps_up
    assert result.queue_depth_peak > 1000
    assert result.utilisation == pytest.approx(1.0, rel=0.02)
