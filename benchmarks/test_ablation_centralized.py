"""A3 — §2/§6: centralized (Robinhood-style) vs distributed collection.

Robinhood "employs a centralized approach ... where metadata is
sequentially extracted from each metadata server by a single client";
the paper's monitor "employs a distributed method".  This ablation
compares the two topologies in the model, and also A/B-tests the real
implementations (RobinhoodCollector vs LustreMonitor) on an identical
trace for wall-clock cost.
"""

import pytest

from repro.baselines import RobinhoodCollector
from repro.core import LustreMonitor
from repro.harness.reporting import render_table
from repro.lustre import DnePolicy, LustreFilesystem
from repro.perf import IOTA, PipelineConfig, run_pipeline
from repro.util.clock import ManualClock
from repro.workloads import TraceReplayer, synthetic_trace


def run_model(num_mds, centralized):
    return run_pipeline(
        PipelineConfig(
            profile=IOTA, duration=15.0, num_mds=num_mds,
            centralized=centralized,
        )
    )


def test_ablation_centralized_vs_distributed(report, benchmark):
    def sweep():
        rows = []
        for num_mds in (1, 2, 4):
            central = run_model(num_mds, centralized=True)
            distributed = run_model(num_mds, centralized=False)
            rows.append((num_mds, central, distributed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["MDS", "centralized ev/s (Robinhood-style)", "distributed ev/s (monitor)"],
        [
            (m, f"{c.delivered_rate:,.0f}", f"{d.delivered_rate:,.0f}")
            for m, c, d in rows
        ],
        title="A3 - centralized vs distributed changelog collection (Iota model)",
    )
    report.add("Ablation A3 - centralized vs distributed", table)

    for num_mds, central, distributed in rows:
        if num_mds == 1:
            # Identical topology: identical capacity.
            assert central.delivered_rate == pytest.approx(
                distributed.delivered_rate, rel=0.02
            )
        else:
            # A single sequential reader cannot exploit extra MDS.
            assert distributed.delivered_rate > central.delivered_rate
    four_way = rows[-1]
    assert four_way[2].keeps_up and not four_way[1].keeps_up


def run_sharded_model(num_aggregators, arrival_rate=150_000):
    """The cluster arm: collectors optimised so aggregation binds."""
    return run_pipeline(
        PipelineConfig(
            profile=IOTA, duration=4.0, num_mds=4, batch_size=64,
            cache_size=2048, arrival_rate=arrival_rate,
            num_aggregators=num_aggregators,
        )
    )


def test_ablation_sharded_aggregation(report, benchmark):
    """Centralized vs 1-aggregator distributed vs N-shard cluster.

    With collection fully optimised (4 MDS, batching, caching) and the
    arrival rate pushed past one Iota aggregator's ~100k ev/s service
    capacity, the single aggregator becomes the bottleneck the paper's
    §6 concedes; the sharded tier lifts it.
    """
    def sweep():
        central = run_pipeline(
            PipelineConfig(
                profile=IOTA, duration=4.0, num_mds=4, centralized=True,
                batch_size=64, cache_size=2048, arrival_rate=150_000,
            )
        )
        arms = [("centralized, 1 aggregator", central)]
        for shards in (1, 2, 4):
            arms.append(
                (f"distributed, {shards} shard(s)", run_sharded_model(shards))
            )
        return arms

    arms = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = render_table(
        ["topology", "delivered ev/s", "keeps up", "bottleneck",
         "aggregate util"],
        [
            (
                label,
                f"{result.delivered_rate:,.0f}",
                "yes" if result.keeps_up else "no",
                result.bottleneck,
                f"{result.stage_utilisation()['aggregate']:.2f}",
            )
            for label, result in arms
        ],
        title="Sharded aggregation tier vs the paper's topologies "
        "(Iota model, 150k ev/s offered)",
    )
    report.add("Ablation - sharded aggregation tier", table)

    results = dict(arms)
    single = results["distributed, 1 shard(s)"]
    two = results["distributed, 2 shard(s)"]
    four = results["distributed, 4 shard(s)"]
    # The §6 wall: one aggregator saturates below the offered rate...
    assert not single.keeps_up
    assert single.bottleneck == "aggregate"
    # ...sharding the tier removes it...
    assert two.keeps_up and four.keeps_up
    assert two.delivered_rate > single.delivered_rate
    # ...and the centralized topology is worst of all.
    assert results["centralized, 1 aggregator"].delivered_rate <= (
        single.delivered_rate * 1.02
    )


def _build_loaded_fs(n_ops=1500):
    fs = LustreFilesystem(
        num_mds=2, dne_policy=DnePolicy.HASH, clock=ManualClock()
    )
    replayer = TraceReplayer(fs)
    replayer.replay(synthetic_trace(n_ops, seed=11))
    return fs


def test_bench_live_robinhood_scan(benchmark):
    """Wall-clock cost of a centralized Robinhood scan of the backlog."""
    def scan():
        fs = _build_loaded_fs()
        collector = RobinhoodCollector(fs, clock=fs.clock)
        # The collector registered after the trace: replay a second
        # burst so there is a backlog to scan.
        TraceReplayer(fs).replay(synthetic_trace(500, seed=12, root="/t2"))
        return collector.scan_once()

    ingested = benchmark.pedantic(scan, rounds=3, iterations=1)
    assert ingested > 0


def test_bench_live_monitor_drain(benchmark):
    """Wall-clock cost of the distributed monitor over the same burst."""
    def drain():
        fs = _build_loaded_fs()
        monitor = LustreMonitor(fs)
        TraceReplayer(fs).replay(synthetic_trace(500, seed=12, root="/t2"))
        return monitor.drain()

    delivered = benchmark.pedantic(drain, rounds=3, iterations=1)
    assert delivered > 0
