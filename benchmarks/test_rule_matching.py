"""Rule-matching micro-benchmark: spine-fused automaton vs linear sweep.

The win is verified with *operation counters*, not wall-clock: with N
rules on disjoint prefixes the trie surfaces only the candidates whose
prefix can cover the event's path, and with N rules stacked on one
nested spine (the pre-fusion worst case, ``evaluated_fraction`` 1.0)
the fused bucket programs dedupe identical predicates so the automaton
pays one evaluation per *distinct* predicate on the ancestor chain, not
one per rule.  Both acceptance bars (indexed evaluations ≤ 10% of
linear — on the nested spine too) are asserted directly, alongside
result equality against the ``matching_linear`` oracle.

Sizes come from the environment so the CI smoke step can shrink them:
``RULE_BENCH_RULES`` (default 1000), ``RULE_BENCH_EVENTS`` (default
2000), and for the rule-scale scenario ``RULE_BENCH_SCALE_RULES``
(default 100_000) / ``RULE_BENCH_SCALE_EVENTS`` (default 200).  At
scale the full linear sweep would dominate the benchmark run, so the
oracle is equality-checked on a sample of events and the linear
evaluation count is the exact analytic ``rules × events`` product (a
linear sweep evaluates every rule for every event, by construction).
The ablation table and ``BENCH_rule_matching.json`` land in
``benchmarks/results/``.
"""

import json
import os
import pathlib

from repro.core.events import EventType, FileEvent
from repro.ripple.rules import Action, Rule, RuleSet, Trigger

N_RULES = int(os.environ.get("RULE_BENCH_RULES", "1000"))
N_EVENTS = int(os.environ.get("RULE_BENCH_EVENTS", "2000"))
N_SCALE_RULES = int(os.environ.get("RULE_BENCH_SCALE_RULES", "100000"))
N_SCALE_EVENTS = int(os.environ.get("RULE_BENCH_SCALE_EVENTS", "200"))
#: Events the scale scenario runs through the (slow) linear oracle.
ORACLE_SAMPLE = 5

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The nested-spine acceptance bar: fused evaluations vs linear sweep.
NESTED_FRACTION_BAR = 0.10

#: Per-tenant shape of the rule-scale scenario.
SCALE_RULES_PER_TENANT = 500
SCALE_DEPTH = 10
#: A small pattern vocabulary — the dedup target: real tenants install
#: many rules but reuse few predicates (same suffix filters, same
#: literal marker files, broad catch-alls).
SCALE_PATTERNS = ["*.dat", "*.h5", "DONE.marker", "*"]


def make_event(path):
    return FileEvent(
        event_type=EventType.CREATED, path=path, is_dir=False,
        timestamp=1.0, name=path.rsplit("/", 1)[-1], source="lustre",
    )


def build_disjoint(n_rules):
    """N rules, each watching its own subtree (the paper's multi-user
    shape: every user's policy watches that user's project directory)."""
    rules = RuleSet()
    for i in range(n_rules):
        rules.add(Rule(
            Trigger(agent_id="a", path_prefix=f"/proj/p{i}",
                    name_pattern="*.dat"),
            Action("email", "a"),
        ))
    return rules


def build_nested(n_rules, depth=8):
    """N rules stacked on a shared path spine (the pruning worst case:
    every ancestor on the event's path holds rules — pre-fusion, the
    trie surfaced all of them and evaluated all of them)."""
    rules = RuleSet()
    for i in range(n_rules):
        components = "/".join(f"d{level}" for level in range(i % depth + 1))
        rules.add(Rule(
            Trigger(agent_id="a", path_prefix=f"/{components}",
                    name_pattern="*.dat"),
            Action("email", "a"),
        ))
    return rules


def build_scale(n_rules):
    """The 100k-rule shape: many tenants, each stacking rules on its
    own spine, drawing patterns from a small shared vocabulary.

    This composes both hard cases — nesting (every tenant's rules share
    that tenant's spine) at a rule count where even candidate surfacing
    must stay sub-linear (disjoint tenants prune each other out).
    """
    tenants = max(1, n_rules // SCALE_RULES_PER_TENANT)
    rules = RuleSet()
    for i in range(n_rules):
        tenant = i % tenants
        nth = i // tenants  # this tenant's nth rule
        components = "/".join(f"d{d}" for d in range(nth % SCALE_DEPTH + 1))
        rules.add(Rule(
            Trigger(agent_id="a",
                    path_prefix=f"/tenants/t{tenant}/{components}",
                    name_pattern=SCALE_PATTERNS[nth % len(SCALE_PATTERNS)]),
            Action("email", "a"),
        ))
    return rules, tenants


def disjoint_events(n_events, n_rules):
    return [
        make_event(f"/proj/p{i % n_rules}/run/f{i}.dat")
        for i in range(n_events)
    ]


def nested_events(n_events, depth=8):
    spine = "/".join(f"d{level}" for level in range(depth))
    return [make_event(f"/{spine}/f{i}.dat") for i in range(n_events)]


def scale_events(n_events, tenants):
    spine = "/".join(f"d{d}" for d in range(SCALE_DEPTH))
    return [
        make_event(f"/tenants/t{i % tenants}/{spine}/f{i}.dat")
        for i in range(n_events)
    ]


def run_linear(rules, events):
    rules.linear_rules_evaluated = 0
    results = [rules.matching_linear("a", event) for event in events]
    return results, rules.linear_rules_evaluated


def run_indexed(rules, events):
    index = rules.index_for("a")
    index.reset_op_counters()
    results = [matched for _event, matched in index.matching_batch(events)]
    return results, index


class TestRuleMatchingBench:
    def test_bench_linear_sweep(self, benchmark):
        rules = build_disjoint(N_RULES)
        events = disjoint_events(N_EVENTS, N_RULES)

        def linear():
            return run_linear(rules, events)

        _results, evaluated = benchmark.pedantic(
            linear, rounds=3, iterations=1
        )
        # The linear sweep pays one full evaluation per rule per event.
        assert evaluated == N_RULES * N_EVENTS

    def test_bench_indexed_matching(self, benchmark):
        rules = build_disjoint(N_RULES)
        events = disjoint_events(N_EVENTS, N_RULES)
        rules.index_for("a")  # compile outside the timed region

        def indexed():
            return run_indexed(rules, events)

        results, index = benchmark.pedantic(indexed, rounds=3, iterations=1)
        linear_results, linear_evaluated = run_linear(rules, events)
        # Identical results, a fraction of the evaluations.  Disjoint
        # prefixes surface exactly one candidate per event; the 10%
        # acceptance bar has plenty of margin at every size.
        assert results == linear_results
        assert all(len(matched) == 1 for matched in results)
        assert index.rules_evaluated == N_EVENTS
        assert index.rules_evaluated <= 0.10 * linear_evaluated

    def test_bench_fused_nested_spine(self, benchmark):
        # Rules stacked on one spine: before fusion this degraded to
        # the linear sweep (every rule on the ancestor chain was a
        # candidate AND a full evaluation; evaluated_fraction 1.0).
        # Predicate dedup collapses each spine bucket to one evaluation
        # fanning out to all owners, so the fused automaton pays
        # O(distinct predicates on the chain) — the same ≤10% bar as
        # the disjoint shape now holds on its worst case.
        rules = build_nested(N_RULES)
        events = nested_events(min(N_EVENTS, 200))
        rules.index_for("a")

        def indexed():
            return run_indexed(rules, events)

        results, index = benchmark.pedantic(indexed, rounds=3, iterations=1)
        linear_results, linear_evaluated = run_linear(rules, events)
        assert results == linear_results
        assert index.rules_evaluated <= NESTED_FRACTION_BAR * linear_evaluated


class TestRuleScaleBench:
    """The 100k-rule scenario: sub-linear candidates AND evaluations."""

    def test_bench_rule_scale(self, benchmark):
        rules, tenants = build_scale(N_SCALE_RULES)
        events = scale_events(N_SCALE_EVENTS, tenants)
        rules.index_for("a")  # compile outside the timed region

        def indexed():
            return run_indexed(rules, events)

        results, index = benchmark.pedantic(indexed, rounds=1, iterations=1)
        # Oracle equality on a sample (the full linear product is the
        # benchmark's own denominator; running it at 100k × events
        # would dwarf the measured work).
        sample = events[:ORACLE_SAMPLE]
        linear_results, _ = run_linear(rules, sample)
        assert results[:len(sample)] == linear_results
        assert all(matched for matched in results)  # every event fires rules
        n_rules, n_events = len(rules), len(events)
        linear_evaluations = n_rules * n_events
        # Counter-asserted sub-linearity: candidates stay bounded by one
        # tenant's rule count (disjoint tenants prune each other), and
        # fused evaluations collapse far below candidates (dedup).
        assert index.candidates_considered <= (
            (SCALE_RULES_PER_TENANT + len(SCALE_PATTERNS)) * n_events
        )
        assert index.rules_evaluated <= NESTED_FRACTION_BAR * linear_evaluations
        assert index.rules_evaluated <= index.candidates_considered


class TestIndexedVsLinearAblation:
    def test_ablation_table(self, report):
        scale_rules, scale_tenants = build_scale(N_SCALE_RULES)
        scenarios = []
        for name, rules, events, oracle_sample in [
            ("disjoint prefixes",
             build_disjoint(N_RULES), disjoint_events(N_EVENTS, N_RULES),
             None),
            ("nested spine (fused)",
             build_nested(N_RULES), nested_events(min(N_EVENTS, 200)),
             None),
            (f"{N_SCALE_RULES // 1000}k rules",
             scale_rules, scale_events(N_SCALE_EVENTS, scale_tenants),
             ORACLE_SAMPLE),
        ]:
            indexed_results, index = run_indexed(rules, events)
            if oracle_sample is None:
                linear_results, linear_evaluated = run_linear(rules, events)
                assert indexed_results == linear_results
                oracle = "full"
            else:
                sample = events[:oracle_sample]
                linear_results, _ = run_linear(rules, sample)
                assert indexed_results[:len(sample)] == linear_results
                # One linear pass evaluates every rule for every event.
                linear_evaluated = len(rules) * len(events)
                oracle = f"sampled({len(sample)})"
            scenarios.append({
                "scenario": name,
                "rules": len(rules),
                "events": len(events),
                "linear_evaluations": linear_evaluated,
                "indexed_candidates": index.candidates_considered,
                "indexed_evaluations": index.rules_evaluated,
                "program_recompiles": index.program_recompiles,
                "oracle": oracle,
                "evaluated_fraction": (
                    index.rules_evaluated / linear_evaluated
                    if linear_evaluated else 0.0
                ),
            })
        lines = [
            f"{'scenario':<22} {'rules':>7} {'events':>7} "
            f"{'linear evals':>13} {'candidates':>11} {'fused evals':>12} "
            f"{'fraction':>9}"
        ]
        for row in scenarios:
            lines.append(
                f"{row['scenario']:<22} {row['rules']:>7} "
                f"{row['events']:>7} {row['linear_evaluations']:>13} "
                f"{row['indexed_candidates']:>11} "
                f"{row['indexed_evaluations']:>12} "
                f"{row['evaluated_fraction']:>9.4f}"
            )
        lines.append(
            "indexed results were asserted identical to the linear sweep "
            "(full oracle at bench size, sampled at scale)"
        )
        report.add(
            "Ablation - spine-fused rule automaton vs linear sweep",
            "\n".join(lines),
        )
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / "BENCH_rule_matching.json").write_text(
            json.dumps({"scenarios": scenarios}, indent=2) + "\n"
        )
        # The acceptance bars: the disjoint (paper-shaped) workload and
        # the previously-degenerate nested spine both stay under 10%.
        assert scenarios[0]["evaluated_fraction"] <= 0.10
        assert scenarios[1]["evaluated_fraction"] <= NESTED_FRACTION_BAR
        assert scenarios[2]["evaluated_fraction"] <= NESTED_FRACTION_BAR
