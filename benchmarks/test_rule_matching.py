"""Rule-matching micro-benchmark: compiled trie index vs linear sweep.

The win is verified with *operation counters*, not wall-clock: with N
rules on disjoint prefixes, the linear sweep evaluates all N triggers
for every event while the trie walk surfaces only the candidates whose
prefix can actually cover the event's path.  The acceptance bar (at
``RULE_BENCH_RULES >= 1000``: indexed evaluations ≤ 10% of linear) is
asserted directly, alongside result equality.

Sizes come from the environment so the CI smoke step can shrink them:
``RULE_BENCH_RULES`` (default 1000), ``RULE_BENCH_EVENTS`` (default
2000).  The ablation table and ``BENCH_rule_matching.json`` land in
``benchmarks/results/``.
"""

import json
import os
import pathlib

from repro.core.events import EventType, FileEvent
from repro.ripple.rules import Action, Rule, RuleSet, Trigger

N_RULES = int(os.environ.get("RULE_BENCH_RULES", "1000"))
N_EVENTS = int(os.environ.get("RULE_BENCH_EVENTS", "2000"))

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def make_event(path):
    return FileEvent(
        event_type=EventType.CREATED, path=path, is_dir=False,
        timestamp=1.0, name=path.rsplit("/", 1)[-1], source="lustre",
    )


def build_disjoint(n_rules):
    """N rules, each watching its own subtree (the paper's multi-user
    shape: every user's policy watches that user's project directory)."""
    rules = RuleSet()
    for i in range(n_rules):
        rules.add(Rule(
            Trigger(agent_id="a", path_prefix=f"/proj/p{i}",
                    name_pattern="*.dat"),
            Action("email", "a"),
        ))
    return rules


def build_nested(n_rules, depth=8):
    """N rules stacked on a shared path spine (worst case for pruning:
    every ancestor on the event's path holds rules)."""
    rules = RuleSet()
    for i in range(n_rules):
        components = "/".join(f"d{level}" for level in range(i % depth + 1))
        rules.add(Rule(
            Trigger(agent_id="a", path_prefix=f"/{components}",
                    name_pattern="*.dat"),
            Action("email", "a"),
        ))
    return rules


def disjoint_events(n_events, n_rules):
    return [
        make_event(f"/proj/p{i % n_rules}/run/f{i}.dat")
        for i in range(n_events)
    ]


def nested_events(n_events, depth=8):
    spine = "/".join(f"d{level}" for level in range(depth))
    return [make_event(f"/{spine}/f{i}.dat") for i in range(n_events)]


def run_linear(rules, events):
    rules.linear_rules_evaluated = 0
    results = [rules.matching_linear("a", event) for event in events]
    return results, rules.linear_rules_evaluated


def run_indexed(rules, events):
    index = rules.index_for("a")
    index.reset_op_counters()
    results = [matched for _event, matched in index.matching_batch(events)]
    return results, index


class TestRuleMatchingBench:
    def test_bench_linear_sweep(self, benchmark):
        rules = build_disjoint(N_RULES)
        events = disjoint_events(N_EVENTS, N_RULES)

        def linear():
            return run_linear(rules, events)

        _results, evaluated = benchmark.pedantic(
            linear, rounds=3, iterations=1
        )
        # The linear sweep pays one full evaluation per rule per event.
        assert evaluated == N_RULES * N_EVENTS

    def test_bench_indexed_matching(self, benchmark):
        rules = build_disjoint(N_RULES)
        events = disjoint_events(N_EVENTS, N_RULES)
        rules.index_for("a")  # compile outside the timed region

        def indexed():
            return run_indexed(rules, events)

        results, index = benchmark.pedantic(indexed, rounds=3, iterations=1)
        linear_results, linear_evaluated = run_linear(rules, events)
        # Identical results, a fraction of the evaluations.  Disjoint
        # prefixes surface exactly one candidate per event; the 10%
        # acceptance bar has plenty of margin at every size.
        assert results == linear_results
        assert all(len(matched) == 1 for matched in results)
        assert index.rules_evaluated == N_EVENTS
        assert index.rules_evaluated <= 0.10 * linear_evaluated

    def test_bench_indexed_nested_worst_case(self, benchmark):
        # Rules stacked on one spine: pruning degrades gracefully to the
        # rules actually on the event's ancestor chain (all of them
        # here) — never worse than linear.
        rules = build_nested(N_RULES)
        events = nested_events(min(N_EVENTS, 200))
        rules.index_for("a")

        def indexed():
            return run_indexed(rules, events)

        results, index = benchmark.pedantic(indexed, rounds=3, iterations=1)
        linear_results, linear_evaluated = run_linear(rules, events)
        assert results == linear_results
        assert index.rules_evaluated <= linear_evaluated


class TestIndexedVsLinearAblation:
    def test_ablation_table(self, report):
        scenarios = []
        for name, rules, events in [
            ("disjoint prefixes",
             build_disjoint(N_RULES), disjoint_events(N_EVENTS, N_RULES)),
            ("nested spine (worst case)",
             build_nested(N_RULES), nested_events(min(N_EVENTS, 200))),
        ]:
            linear_results, linear_evaluated = run_linear(rules, events)
            indexed_results, index = run_indexed(rules, events)
            assert indexed_results == linear_results
            scenarios.append({
                "scenario": name,
                "rules": len(rules),
                "events": len(events),
                "linear_evaluations": linear_evaluated,
                "indexed_candidates": index.candidates_considered,
                "indexed_evaluations": index.rules_evaluated,
                "evaluated_fraction": (
                    index.rules_evaluated / linear_evaluated
                    if linear_evaluated else 0.0
                ),
            })
        lines = [
            f"{'scenario':<28} {'rules':>6} {'events':>7} "
            f"{'linear evals':>13} {'indexed evals':>14} {'fraction':>9}"
        ]
        for row in scenarios:
            lines.append(
                f"{row['scenario']:<28} {row['rules']:>6} "
                f"{row['events']:>7} {row['linear_evaluations']:>13} "
                f"{row['indexed_evaluations']:>14} "
                f"{row['evaluated_fraction']:>9.4f}"
            )
        lines.append(
            "indexed results were asserted identical to the linear sweep"
        )
        report.add(
            "Ablation - compiled rule index vs linear sweep",
            "\n".join(lines),
        )
        _RESULTS_DIR.mkdir(exist_ok=True)
        (_RESULTS_DIR / "BENCH_rule_matching.json").write_text(
            json.dumps({"scenarios": scenarios}, indent=2) + "\n"
        )
        # The acceptance bar for the disjoint (paper-shaped) workload.
        assert scenarios[0]["evaluated_fraction"] <= 0.10
