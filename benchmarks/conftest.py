"""Benchmark harness plumbing.

Each benchmark registers the rendered table/figure it reproduces via the
``report`` fixture; everything registered is printed in the terminal
summary (so ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
captures the paper-vs-measured artefacts alongside the timing table) and
written to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

_REPORTS: list[tuple[str, str]] = []
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class ReportRegistry:
    """Collects rendered experiment artefacts from benchmark tests."""

    def add(self, name: str, text: str) -> None:
        """Register artefact *name* with rendered *text*."""
        _REPORTS.append((name, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        safe = name.replace(" ", "_").replace("/", "-").lower()
        (_RESULTS_DIR / f"{safe}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def report() -> ReportRegistry:
    """Session-wide registry benchmarks use to publish their artefacts."""
    return ReportRegistry()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper artefacts")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"### {name}")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    # One combined artefact file for easy diffing across runs.
    _RESULTS_DIR.mkdir(exist_ok=True)
    summary = "\n\n".join(
        f"### {name}\n{text}" for name, text in _REPORTS
    )
    (_RESULTS_DIR / "SUMMARY.md").write_text(
        "# Reproduced paper artefacts\n\n" + summary + "\n"
    )
