"""Workloads: event generation, NERSC dump synthesis, trace replay."""

from repro.workloads.generator import EventGenerator, GenerationReport, OpLatencies
from repro.workloads.nersc import (
    DumpDiffer,
    DumpSeries,
    FileSystemDumpModel,
    ScalingAnalysis,
)
from repro.workloads.traces import TraceOp, TraceRecorder, TraceReplayer, synthetic_trace

__all__ = [
    "EventGenerator",
    "GenerationReport",
    "OpLatencies",
    "FileSystemDumpModel",
    "DumpSeries",
    "DumpDiffer",
    "ScalingAnalysis",
    "TraceOp",
    "TraceRecorder",
    "TraceReplayer",
    "synthetic_trace",
]
