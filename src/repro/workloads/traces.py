"""Operation traces: record, synthesise and replay filesystem activity.

Traces decouple workload definition from execution: the same operation
sequence can be replayed against the local in-memory filesystem, the
Lustre model, or fed to the DES performance models — useful for
apples-to-apples monitor/baseline comparisons.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from repro.fs.memfs import MemoryFilesystem
from repro.lustre.filesystem import LustreFilesystem

AnyFilesystem = Union[MemoryFilesystem, LustreFilesystem]


@dataclass(frozen=True)
class TraceOp:
    """One traced operation.

    ``op`` is one of create | write | unlink | mkdir | rmdir | rename |
    setattr.  ``path2`` is the rename destination.
    """

    op: str
    path: str
    path2: Optional[str] = None
    size: int = 0

    def to_line(self) -> str:
        """A compact one-line text form (for trace files)."""
        parts = [self.op, self.path]
        if self.path2 is not None:
            parts.append(self.path2)
        if self.size:
            parts.append(str(self.size))
        return " ".join(parts)

    @classmethod
    def from_line(cls, line: str) -> "TraceOp":
        """Inverse of :meth:`to_line`."""
        parts = line.split()
        op, path = parts[0], parts[1]
        path2 = None
        size = 0
        rest = parts[2:]
        if op == "rename" and rest:
            path2 = rest.pop(0)
        if rest:
            size = int(rest[0])
        return cls(op=op, path=path, path2=path2, size=size)


class TraceRecorder:
    """Collects TraceOps as a workload runs (manual instrumentation)."""

    def __init__(self) -> None:
        self.ops: list[TraceOp] = []

    def record(self, op: TraceOp) -> None:
        self.ops.append(op)

    def __len__(self) -> int:
        return len(self.ops)


class TraceReplayer:
    """Replays a trace against any supported filesystem."""

    def __init__(self, filesystem: AnyFilesystem) -> None:
        self.fs = filesystem
        self.applied = 0
        self.skipped = 0

    def replay(self, ops: Iterable[TraceOp]) -> int:
        """Apply every op; ops that no longer make sense are skipped
        (e.g. unlink of a path a previous failure never created).
        Returns the number applied."""
        for op in ops:
            try:
                self._apply(op)
                self.applied += 1
            except Exception:
                self.skipped += 1
        return self.applied

    def _apply(self, op: TraceOp) -> None:
        is_local = isinstance(self.fs, MemoryFilesystem)
        if op.op == "mkdir":
            self.fs.mkdir(op.path)
        elif op.op == "rmdir":
            self.fs.rmdir(op.path)
        elif op.op == "create":
            if is_local:
                self.fs.create(op.path, b"\x00" * op.size)
            else:
                self.fs.create(op.path, size=op.size)
        elif op.op == "write":
            if is_local:
                self.fs.write(op.path, b"\x00" * op.size)
            else:
                self.fs.write(op.path, op.size)
        elif op.op == "unlink":
            self.fs.unlink(op.path)
        elif op.op == "rename":
            assert op.path2 is not None
            self.fs.rename(op.path, op.path2)
        elif op.op == "setattr":
            self.fs.setattr(op.path)
        else:
            raise ValueError(f"unknown trace op {op.op!r}")


def synthetic_trace(
    n_ops: int,
    root: str = "/trace",
    n_directories: int = 8,
    seed: int = 0,
    create_weight: float = 0.35,
    write_weight: float = 0.30,
    unlink_weight: float = 0.15,
    rename_weight: float = 0.10,
    setattr_weight: float = 0.10,
) -> Iterator[TraceOp]:
    """Generate a coherent random trace (ops always reference live paths).

    Starts with the mkdirs needed, then mixes operations; yields lazily.
    """
    rng = random.Random(seed)
    yield TraceOp("mkdir", root)
    directories = []
    for index in range(n_directories):
        path = f"{root}/dir{index:02d}"
        directories.append(path)
        yield TraceOp("mkdir", path)
    live: list[str] = []
    counter = 0
    ops = ("create", "write", "unlink", "rename", "setattr")
    weights = (
        create_weight,
        write_weight,
        unlink_weight,
        rename_weight,
        setattr_weight,
    )
    for _ in range(n_ops):
        op = rng.choices(ops, weights)[0]
        if op == "create" or not live:
            directory = rng.choice(directories)
            path = f"{directory}/t{counter:07d}.dat"
            counter += 1
            live.append(path)
            yield TraceOp("create", path, size=rng.randrange(0, 65536))
        elif op == "write":
            yield TraceOp("write", rng.choice(live), size=rng.randrange(0, 65536))
        elif op == "unlink":
            index = rng.randrange(len(live))
            yield TraceOp("unlink", live.pop(index))
        elif op == "rename":
            index = rng.randrange(len(live))
            source = live[index]
            destination = f"{rng.choice(directories)}/r{counter:07d}.dat"
            counter += 1
            live[index] = destination
            yield TraceOp("rename", source, path2=destination)
        else:
            yield TraceOp("setattr", rng.choice(live))
