"""NERSC dump synthesis and consecutive-day differencing (paper §5.3).

The paper analysed 36 days of file-system dumps from NERSC's 7.1 PB GPFS
system *tlproject2* (16,506 users, >850 M files), diffing consecutive
days to count files created or changed per day (Figure 3), finding a
peak of >3.6 M differences/day — 42 events/s averaged over 24 h, ~127
events/s in an 8-hour worst case, and a linear extrapolation to Aurora's
150 PB of ~3,178 events/s.

We do not have the proprietary dumps, so :class:`FileSystemDumpModel`
synthesises a statistically similar series — a large stable population
with bursty, diurnal daily activity — and :class:`DumpDiffer` implements
the *same analysis* the paper ran, including its stated blind spots
(only the latest modification per file is detectable; short-lived files
are invisible).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict

#: Paper constants (§5.3).
TLPROJECT2_PB = 7.1
AURORA_PB = 150.0
PEAK_DIFFS_PER_DAY = 3_600_000
SECONDS_PER_DAY = 86_400
EIGHT_HOURS = 8 * 3_600


@dataclass(frozen=True)
class DailyDump:
    """One day's dump: file id -> last-modification day-stamp."""

    day: int
    files: Dict[int, float]

    @property
    def file_count(self) -> int:
        return len(self.files)


@dataclass(frozen=True)
class DayDiff:
    """Differences between two consecutive daily dumps."""

    day: int
    created: int
    modified: int
    deleted: int

    @property
    def total_differences(self) -> int:
        """The quantity Figure 3 plots per day (created + modified)."""
        return self.created + self.modified


class FileSystemDumpModel:
    """Synthesises a daily dump series resembling tlproject2 activity.

    Parameters
    ----------
    base_files:
        Stable population size (scaled down from 850 M for tractability;
        rates scale linearly so the analysis is unaffected).
    daily_create_fraction / daily_modify_fraction:
        Mean fraction of the population created/modified per day.
    burstiness:
        Lognormal sigma on daily volume (sporadic data generation).
    weekly_amplitude:
        Weekday/weekend modulation depth in [0, 1).
    churn_fraction:
        Fraction of created files deleted again within days (long-lived
        enough to appear in a dump; truly short-lived files never do).
    """

    def __init__(
        self,
        base_files: int = 850_000,
        daily_create_fraction: float = 0.0008,
        daily_modify_fraction: float = 0.0011,
        burstiness: float = 0.45,
        weekly_amplitude: float = 0.35,
        churn_fraction: float = 0.3,
        seed: int = 7,
    ) -> None:
        if base_files < 1:
            raise ValueError(f"base_files must be >= 1: {base_files}")
        self.base_files = base_files
        self.daily_create_fraction = daily_create_fraction
        self.daily_modify_fraction = daily_modify_fraction
        self.burstiness = burstiness
        self.weekly_amplitude = weekly_amplitude
        self.churn_fraction = churn_fraction
        self.rng = random.Random(seed)
        self._next_file_id = base_files
        self._population: Dict[int, float] = {
            file_id: 0.0 for file_id in range(base_files)
        }

    def _daily_volume(self, mean_fraction: float, day: int) -> int:
        diurnal = 1.0 + self.weekly_amplitude * math.sin(2 * math.pi * day / 7.0)
        base = self.base_files * mean_fraction * diurnal
        noisy = base * self.rng.lognormvariate(0, self.burstiness)
        return max(0, int(noisy))

    def advance_one_day(self, day: int) -> None:
        """Apply one day of creates, modifies and deletes."""
        n_create = self._daily_volume(self.daily_create_fraction, day)
        n_modify = self._daily_volume(self.daily_modify_fraction, day)
        n_delete = int(n_create * self.churn_fraction)
        for _ in range(n_create):
            self._population[self._next_file_id] = float(day)
            self._next_file_id += 1
        population_ids = list(self._population)
        for _ in range(min(n_modify, len(population_ids))):
            file_id = self.rng.choice(population_ids)
            self._population[file_id] = float(day)
        for _ in range(min(n_delete, len(population_ids))):
            file_id = self.rng.choice(population_ids)
            self._population.pop(file_id, None)

    def dump(self, day: int) -> DailyDump:
        """Take today's dump (a snapshot copy)."""
        return DailyDump(day=day, files=dict(self._population))

    def generate_series(self, days: int = 36) -> "DumpSeries":
        """Produce *days* consecutive daily dumps."""
        dumps = [self.dump(0)]
        for day in range(1, days):
            self.advance_one_day(day)
            dumps.append(self.dump(day))
        return DumpSeries(dumps)


@dataclass
class DumpSeries:
    """An ordered collection of daily dumps."""

    dumps: list[DailyDump] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.dumps)


class DumpDiffer:
    """The paper's consecutive-day differencing analysis."""

    @staticmethod
    def diff(previous: DailyDump, current: DailyDump) -> DayDiff:
        """Compare two dumps.

        A file present today but not yesterday was *created*; present in
        both with a newer stamp was *modified* (only the latest
        modification is visible); present yesterday but not today was
        *deleted*.  Files created and deleted between dumps are invisible
        — the paper's stated limitation.
        """
        created = modified = deleted = 0
        for file_id, stamp in current.files.items():
            old = previous.files.get(file_id)
            if old is None:
                created += 1
            elif stamp > old:
                modified += 1
        for file_id in previous.files:
            if file_id not in current.files:
                deleted += 1
        return DayDiff(
            day=current.day, created=created, modified=modified, deleted=deleted
        )

    @classmethod
    def analyze(cls, series: DumpSeries) -> list[DayDiff]:
        """Diff every consecutive pair in *series* (Figure 3's data)."""
        return [
            cls.diff(series.dumps[i - 1], series.dumps[i])
            for i in range(1, len(series.dumps))
        ]


@dataclass(frozen=True)
class ScalingAnalysis:
    """The paper's §5.3 arithmetic from a peak daily difference count."""

    peak_diffs_per_day: int
    storage_pb: float = TLPROJECT2_PB

    @property
    def events_per_second_24h(self) -> float:
        """Peak day spread over 24 hours (paper: ~42 ev/s)."""
        return self.peak_diffs_per_day / SECONDS_PER_DAY

    @property
    def events_per_second_8h(self) -> float:
        """Worst case: all activity within 8 hours (paper: ~127 ev/s)."""
        return self.peak_diffs_per_day / EIGHT_HOURS

    def extrapolate(self, target_pb: float = AURORA_PB) -> float:
        """Linear-in-capacity extrapolation (paper: Aurora ≈ 3,178 ev/s).

        The paper scales the *8-hour worst case* by capacity ratio:
        127 ev/s × (150/7.1 ≈ 25×) ≈ 3,178 ev/s.
        """
        return self.events_per_second_8h * (target_pb / self.storage_pb)

    @property
    def aurora_factor(self) -> float:
        """The capacity ratio the paper rounds to '25 times'."""
        return AURORA_PB / self.storage_pb
