"""The event-generation script (paper §5.1).

"We use a Python script to record the time taken to create, modify, or
delete 10,000 files on each file system" — then a combined workload
"combines file creation, modification, and deletion to generate multiple
events for each file" at the filesystem's maximum rate.

Two timing modes:

* **Wall-clock** (default) — drive the in-memory filesystem as fast as
  Python executes it; used by the live-pipeline benchmarks that measure
  *this implementation's* throughput.
* **Calibrated** — the filesystem runs on a
  :class:`~repro.util.clock.ManualClock` and the generator advances it
  by per-operation latencies taken from a testbed profile
  (:class:`OpLatencies`); used by the paper-number reproductions, where
  the hardware's measured rates are model inputs (see DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.lustre.filesystem import LustreFilesystem
from repro.util.clock import ManualClock


@dataclass(frozen=True)
class OpLatencies:
    """Per-operation metadata latencies (seconds) for calibrated mode."""

    create: float
    modify: float
    delete: float

    @classmethod
    def from_rates(
        cls, create_per_s: float, modify_per_s: float, delete_per_s: float
    ) -> "OpLatencies":
        """Build from Table-2 style operation rates (ops/second)."""
        return cls(1.0 / create_per_s, 1.0 / modify_per_s, 1.0 / delete_per_s)


@dataclass
class GenerationReport:
    """Measured rates from one generation run (Table 2's rows)."""

    files: int
    create_seconds: float
    modify_seconds: float
    delete_seconds: float
    records_created: int
    records_modified: int
    records_deleted: int

    @property
    def created_per_second(self) -> float:
        """File-create events per second during the create phase."""
        return self.records_created / self.create_seconds if self.create_seconds else 0.0

    @property
    def modified_per_second(self) -> float:
        return self.records_modified / self.modify_seconds if self.modify_seconds else 0.0

    @property
    def deleted_per_second(self) -> float:
        return self.records_deleted / self.delete_seconds if self.delete_seconds else 0.0

    @property
    def total_records(self) -> int:
        return self.records_created + self.records_modified + self.records_deleted

    @property
    def total_seconds(self) -> float:
        return self.create_seconds + self.modify_seconds + self.delete_seconds

    @property
    def total_events_per_second(self) -> float:
        """Aggregate event rate over the whole combined run."""
        return self.total_records / self.total_seconds if self.total_seconds else 0.0


class EventGenerator:
    """Drives create/modify/delete workloads against a Lustre model."""

    def __init__(
        self,
        filesystem: LustreFilesystem,
        directory: str = "/gen",
        latencies: Optional[OpLatencies] = None,
        seed: int = 0,
    ) -> None:
        self.fs = filesystem
        self.directory = directory
        self.latencies = latencies
        self.rng = random.Random(seed)
        if latencies is not None and not isinstance(filesystem.clock, ManualClock):
            raise ValueError(
                "calibrated mode requires the filesystem to run on a ManualClock"
            )
        self.fs.makedirs(directory)

    def _tick(self, seconds: float) -> None:
        if self.latencies is not None:
            assert isinstance(self.fs.clock, ManualClock)
            self.fs.clock.advance(seconds)

    def _count_records(self) -> int:
        return self.fs.total_changelog_records()

    # -- the paper's 10,000-file experiment ----------------------------------

    def generate(self, n_files: int = 10_000) -> GenerationReport:
        """Create, then modify, then delete *n_files*; time each phase.

        In calibrated mode phase durations are deterministic (latency ×
        count); in wall-clock mode they are measured with a monotonic
        timer around the in-memory operations.
        """
        import time as _time

        paths = [f"{self.directory}/gen_{i:06d}.dat" for i in range(n_files)]

        before = self._count_records()
        start = _time.perf_counter()
        for path in paths:
            self.fs.create(path)
            self._tick(self.latencies.create if self.latencies else 0.0)
        create_wall = _time.perf_counter() - start
        created = self._count_records() - before

        before = self._count_records()
        start = _time.perf_counter()
        for path in paths:
            self.fs.write(path, 4096)
            self._tick(self.latencies.modify if self.latencies else 0.0)
        modify_wall = _time.perf_counter() - start
        modified = self._count_records() - before

        before = self._count_records()
        start = _time.perf_counter()
        for path in paths:
            self.fs.unlink(path)
            self._tick(self.latencies.delete if self.latencies else 0.0)
        delete_wall = _time.perf_counter() - start
        deleted = self._count_records() - before

        if self.latencies is not None:
            create_seconds = n_files * self.latencies.create
            modify_seconds = n_files * self.latencies.modify
            delete_seconds = n_files * self.latencies.delete
        else:
            create_seconds = create_wall
            modify_seconds = modify_wall
            delete_seconds = delete_wall
        return GenerationReport(
            files=n_files,
            create_seconds=create_seconds,
            modify_seconds=modify_seconds,
            delete_seconds=delete_seconds,
            records_created=created,
            records_modified=modified,
            records_deleted=deleted,
        )

    # -- sustained mixed workload ----------------------------------------------

    def generate_mixed(
        self,
        n_ops: int,
        create_weight: float = 0.4,
        modify_weight: float = 0.4,
        delete_weight: float = 0.2,
        n_directories: int = 16,
        dir_skew: float = 1.2,
    ) -> int:
        """A sustained interleaved workload over *n_directories* subdirs.

        Directory choice follows a Zipf-like skew (*dir_skew*), giving the
        parent-path locality the processor's cache exploits.  Returns the
        number of ChangeLog records generated.
        """
        if n_ops < 0:
            raise ValueError(f"negative n_ops: {n_ops}")
        weights = [create_weight, modify_weight, delete_weight]
        if min(weights) < 0 or sum(weights) <= 0:
            raise ValueError(f"bad operation weights: {weights}")
        subdirs = []
        for d in range(n_directories):
            path = f"{self.directory}/d{d:03d}"
            if not self.fs.exists(path):
                self.fs.mkdir(path)
            subdirs.append(path)
        # Zipf-ish directory popularity.
        ranks = [1.0 / (i + 1) ** dir_skew for i in range(n_directories)]
        total_rank = sum(ranks)
        probabilities = [r / total_rank for r in ranks]
        live: list[str] = []
        before = self._count_records()
        counter = 0
        for _ in range(n_ops):
            op = self.rng.choices(("create", "modify", "delete"), weights)[0]
            if op == "create" or not live:
                directory = self.rng.choices(subdirs, probabilities)[0]
                path = f"{directory}/m{counter:07d}.dat"
                counter += 1
                self.fs.create(path)
                live.append(path)
                self._tick(self.latencies.create if self.latencies else 0.0)
            elif op == "modify":
                path = self.rng.choice(live)
                self.fs.write(path, 1024)
                self._tick(self.latencies.modify if self.latencies else 0.0)
            else:
                index = self.rng.randrange(len(live))
                path = live.pop(index)
                self.fs.unlink(path)
                self._tick(self.latencies.delete if self.latencies else 0.0)
        return self._count_records() - before
