"""Exception hierarchy for the SDCI reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Filesystem substrate errors (repro.fs, repro.lustre)
# ---------------------------------------------------------------------------


class FilesystemError(ReproError):
    """Base class for filesystem-related errors."""

    def __init__(self, path: str, message: str) -> None:
        super().__init__(f"{message}: {path!r}")
        self.path = path


class FileNotFound(FilesystemError):
    """A path component or the target itself does not exist (ENOENT)."""

    def __init__(self, path: str) -> None:
        super().__init__(path, "no such file or directory")


class FileExists(FilesystemError):
    """The target already exists (EEXIST)."""

    def __init__(self, path: str) -> None:
        super().__init__(path, "file exists")


class NotADirectory(FilesystemError):
    """A non-directory was used as a path component (ENOTDIR)."""

    def __init__(self, path: str) -> None:
        super().__init__(path, "not a directory")


class IsADirectory(FilesystemError):
    """A directory was used where a file was required (EISDIR)."""

    def __init__(self, path: str) -> None:
        super().__init__(path, "is a directory")


class DirectoryNotEmpty(FilesystemError):
    """rmdir on a non-empty directory (ENOTEMPTY)."""

    def __init__(self, path: str) -> None:
        super().__init__(path, "directory not empty")


class InvalidPath(FilesystemError):
    """The path is syntactically invalid for this filesystem."""

    def __init__(self, path: str, reason: str = "invalid path") -> None:
        super().__init__(path, reason)


# ---------------------------------------------------------------------------
# inotify emulation errors
# ---------------------------------------------------------------------------


class InotifyError(ReproError):
    """Base class for inotify emulation failures."""


class WatchLimitExceeded(InotifyError):
    """The per-instance watch limit (max_user_watches) was reached."""


class EventQueueOverflow(InotifyError):
    """The inotify event queue overflowed and events were dropped."""


class UnknownWatch(InotifyError):
    """An operation referenced a watch descriptor that does not exist."""


# ---------------------------------------------------------------------------
# Lustre substrate errors
# ---------------------------------------------------------------------------


class LustreError(ReproError):
    """Base class for Lustre model errors."""


class UnknownFid(LustreError):
    """A FID could not be resolved (stale or never allocated)."""


class ChangelogError(LustreError):
    """Errors interacting with an MDT ChangeLog."""


class ChangelogUserError(ChangelogError):
    """A changelog reader id is unknown or already deregistered."""


# ---------------------------------------------------------------------------
# Messaging substrate errors
# ---------------------------------------------------------------------------


class MessagingError(ReproError):
    """Base class for message-fabric errors."""


class SocketClosed(MessagingError):
    """An operation was attempted on a closed socket."""


class AddressInUse(MessagingError):
    """A bind collided with an already-bound endpoint."""


class AddressNotFound(MessagingError):
    """A connect referenced an endpoint nobody has bound."""


class WouldBlock(MessagingError):
    """A non-blocking receive found no message (EAGAIN analogue)."""


# ---------------------------------------------------------------------------
# Cloud substrate errors
# ---------------------------------------------------------------------------


class CloudError(ReproError):
    """Base class for cloud-substrate (queue / worker) errors."""


class QueueNotFound(CloudError):
    """An operation referenced a queue that does not exist."""


class ReceiptInvalid(CloudError):
    """A delete/extend used an expired or unknown receipt handle."""


# ---------------------------------------------------------------------------
# Monitor and Ripple errors
# ---------------------------------------------------------------------------


class MonitorError(ReproError):
    """Base class for monitor pipeline errors."""


class CollectorError(MonitorError):
    """A collector failed to read or purge its ChangeLog."""


class AggregatorError(MonitorError):
    """The aggregator failed to store or publish an event."""


class RippleError(ReproError):
    """Base class for Ripple rule/agent/service errors."""


class RuleValidationError(RippleError):
    """A rule definition is malformed."""


class ActionError(RippleError):
    """An action failed to execute."""


class AgentNotFound(RippleError):
    """An action was routed to an agent id that is not registered."""


# ---------------------------------------------------------------------------
# Simulation engine errors
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event engine errors."""


class StopSimulation(SimulationError):
    """Raised internally to halt :meth:`Environment.run` early."""
