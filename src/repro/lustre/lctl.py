"""Operator-facing facades mirroring the ``lctl`` and ``lfs`` tools.

The library's Python API is what programs use; administrators know
Lustre through ``lctl`` (server control: changelog users, tunables) and
``lfs`` (client utilities: df, getstripe, fid2path).  These facades
expose the model through those idioms — string MDT names, string
parameters — which keeps runbooks and examples recognisable to Lustre
operators and gives tests an end-to-end "operator path" to exercise.
"""

from __future__ import annotations

import fnmatch
from typing import Optional, Union

from repro.errors import LustreError
from repro.lustre.changelog import RecordType
from repro.lustre.fid import Fid
from repro.lustre.filesystem import LustreFilesystem

#: Filesystem name used in target labels (lustre-MDT0000 style).
FSNAME = "lustre"


def _mdt_label(index: int) -> str:
    return f"{FSNAME}-MDT{index:04x}"


def _parse_mdt(target: str) -> int:
    """Accept 'lustre-MDT0000', 'MDT0000' or a bare index string."""
    name = target.rsplit("-", 1)[-1]
    if name.upper().startswith("MDT"):
        return int(name[3:], 16)
    return int(target)


class LctlAdmin:
    """``lctl``-style server administration over a LustreFilesystem."""

    def __init__(self, filesystem: LustreFilesystem) -> None:
        self.fs = filesystem

    # -- device listing ------------------------------------------------------

    def dl(self) -> list[str]:
        """List devices (``lctl dl``): MDTs then OSTs."""
        lines = []
        for mdt in self.fs.cluster.all_mdts():
            server = self.fs.cluster.server_for_mdt(mdt.index)
            lines.append(f"{_mdt_label(mdt.index)} mdt {server.name} UP")
        for index in sorted(self.fs.osts._osts):
            lines.append(f"{FSNAME}-OST{index:04x} ost UP")
        return lines

    # -- changelog administration ---------------------------------------------

    def changelog_register(self, target: str) -> str:
        """``lctl --device <mdt> changelog_register``; returns clN."""
        mdt = self.fs.cluster.mdt(_parse_mdt(target))
        return mdt.changelog.register_user()

    def changelog_deregister(self, target: str, user: str) -> None:
        """``lctl --device <mdt> changelog_deregister <user>``."""
        mdt = self.fs.cluster.mdt(_parse_mdt(target))
        mdt.changelog.deregister_user(user)

    def changelog(self, target: str, user: str,
                  max_records: Optional[int] = None) -> list[str]:
        """Read records for *user* (like ``lfs changelog``)."""
        mdt = self.fs.cluster.mdt(_parse_mdt(target))
        return [
            record.format()
            for record in mdt.changelog.read(user, max_records=max_records)
        ]

    def changelog_clear(self, target: str, user: str, index: int) -> None:
        """``lfs changelog_clear <mdt> <user> <index>``."""
        mdt = self.fs.cluster.mdt(_parse_mdt(target))
        mdt.changelog.clear(user, index)

    # -- tunables ------------------------------------------------------------

    def set_param(self, name: str, value: str) -> int:
        """``lctl set_param`` — supported: ``mdd.*.changelog_mask``.

        The value is a space-separated list of record-type names
        (``"CREAT MKDIR UNLNK"``); the glob in the parameter name
        selects MDTs.  Returns the number of MDTs updated.
        """
        parts = name.split(".")
        if len(parts) != 3 or parts[0] != "mdd" or parts[2] != "changelog_mask":
            raise LustreError(f"unsupported parameter {name!r}")
        try:
            types = {RecordType[token.upper()] for token in value.split()}
        except KeyError as exc:
            raise LustreError(f"unknown record type in mask: {exc}") from None
        updated = 0
        for mdt in self.fs.cluster.all_mdts():
            if fnmatch.fnmatch(_mdt_label(mdt.index), parts[1]):
                mdt.changelog.set_mask(types)
                updated += 1
        if updated == 0:
            raise LustreError(f"no MDT matches {parts[1]!r}")
        return updated

    def get_param(self, name: str) -> dict[str, str]:
        """``lctl get_param`` for ``mdd.*.changelog_mask``."""
        parts = name.split(".")
        if len(parts) != 3 or parts[0] != "mdd" or parts[2] != "changelog_mask":
            raise LustreError(f"unsupported parameter {name!r}")
        result = {}
        for mdt in self.fs.cluster.all_mdts():
            label = _mdt_label(mdt.index)
            if fnmatch.fnmatch(label, parts[1]):
                names = sorted(
                    record_type.name for record_type in mdt.changelog.mask
                )
                result[f"mdd.{label}.changelog_mask"] = " ".join(names)
        return result


class LfsClient:
    """``lfs``-style client utilities over a LustreFilesystem."""

    def __init__(self, filesystem: LustreFilesystem) -> None:
        self.fs = filesystem

    def df(self) -> list[str]:
        """``lfs df``: per-OST usage plus a summary line."""
        lines = []
        total_used = 0
        total_capacity: Union[int, None] = 0
        for index in sorted(self.fs.osts._osts):
            ost = self.fs.osts.ost(index)
            capacity = ost.capacity_bytes
            total_used += ost.used_bytes
            if total_capacity is not None:
                total_capacity = (
                    total_capacity + capacity if capacity is not None else None
                )
            capacity_text = str(capacity) if capacity is not None else "-"
            lines.append(
                f"{FSNAME}-OST{index:04x}  used={ost.used_bytes}  "
                f"capacity={capacity_text}  objects={ost.object_count}"
            )
        capacity_text = str(total_capacity) if total_capacity is not None else "-"
        lines.append(f"filesystem_summary  used={total_used}  "
                     f"capacity={capacity_text}")
        return lines

    def getstripe(self, path: str) -> dict[str, object]:
        """``lfs getstripe``: layout of a file or default of a directory."""
        stat = self.fs.stat(path)
        if stat.is_dir:
            return {
                "path": path,
                "stripe_count": self.fs.get_stripe(path),
                "default": True,
            }
        entry = self.fs._resolve(path)
        assert entry.layout is not None
        return {
            "path": path,
            "stripe_count": entry.layout.stripe_count,
            "stripe_size": entry.layout.stripe_size,
            "objects": list(entry.layout.objects),
            "default": False,
        }

    def setstripe(self, path: str, stripe_count: int) -> None:
        """``lfs setstripe -c <n> <dir>``."""
        self.fs.set_stripe(path, stripe_count)

    def path2fid(self, path: str) -> str:
        """``lfs path2fid``."""
        return str(self.fs.fid_of(path))

    def fid2path(self, fid: Union[str, Fid]) -> str:
        """``lfs fid2path``."""
        if isinstance(fid, str):
            fid = Fid.parse(fid)
        return self.fs.path_of(fid)
