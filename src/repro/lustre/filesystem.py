"""The client-visible Lustre filesystem API.

:class:`LustreFilesystem` ties the substrate together: a namespace of
FID-identified entries served by an :class:`MdtCluster` (each metadata
operation appends a record to the owning MDT's ChangeLog) and file data
striped over an :class:`OstPool`.

The API mirrors what the paper's event-generation script exercised —
create, modify (write), delete — plus the rest of the namespace
operations a ChangeLog can record (mkdir/rmdir/rename/setattr/hardlink/
symlink), so the monitor sees a realistic record-type mix.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidPath,
    IsADirectory,
    NotADirectory,
    UnknownFid,
)
from repro.lustre.changelog import ChangelogFlag, ChangelogRecord, RecordType
from repro.lustre.fid import Fid, ROOT_FID
from repro.lustre.mds import DnePolicy, MdtCluster, MetadataTarget
from repro.lustre.oss import DEFAULT_STRIPE_SIZE, OstPool, StripeLayout
from repro.util.clock import Clock, WallClock
from repro.util.paths import is_ancestor, normalize, split_components


@dataclass
class _Entry:
    """One namespace object (file, directory or symlink)."""

    fid: Fid
    kind: str  # 'file' | 'dir' | 'symlink'
    parent: Optional[Fid]
    name: str
    mdt_index: int
    mode: int
    mtime: float
    ctime: float
    size: int = 0
    nlink: int = 1
    children: Dict[str, Fid] = field(default_factory=dict)
    layout: Optional[StripeLayout] = None
    symlink_target: Optional[str] = None
    #: Directory default stripe count (lfs setstripe on a directory);
    #: None inherits from the parent chain / filesystem default.
    default_stripe_count: Optional[int] = None


@dataclass(frozen=True)
class LustreStat:
    """Result of :meth:`LustreFilesystem.stat`."""

    fid: Fid
    kind: str
    size: int
    mode: int
    mtime: float
    ctime: float
    nlink: int
    mdt_index: int

    @property
    def is_dir(self) -> bool:
        return self.kind == "dir"

    @property
    def is_file(self) -> bool:
        return self.kind == "file"


class LustreFilesystem:
    """An in-memory Lustre filesystem.

    Parameters
    ----------
    num_mds, mdts_per_mds:
        Metadata topology.  The paper's AWS testbed is ``num_mds=1``;
        Iota has four MDS but ran with one active.
    dne_policy:
        Directory placement across MDTs (``SINGLE`` reproduces the
        paper's configuration).
    num_oss, osts_per_oss, default_stripe_count:
        Data topology.
    changelog_capacity:
        Optional bound on retained ChangeLog records per MDT.
    """

    def __init__(
        self,
        num_mds: int = 1,
        mdts_per_mds: int = 1,
        dne_policy: DnePolicy = DnePolicy.SINGLE,
        num_oss: int = 1,
        osts_per_oss: int = 1,
        default_stripe_count: int = 1,
        stripe_size: int = DEFAULT_STRIPE_SIZE,
        ost_capacity_bytes: Optional[int] = None,
        changelog_capacity: Optional[int] = None,
        clock: Clock | None = None,
    ) -> None:
        self.clock = clock or WallClock()
        self.cluster = MdtCluster.build(
            num_mds=num_mds,
            mdts_per_mds=mdts_per_mds,
            policy=dne_policy,
            clock=self.clock,
            changelog_capacity=changelog_capacity,
        )
        self.osts = OstPool.build(
            num_oss=num_oss,
            osts_per_oss=osts_per_oss,
            ost_capacity_bytes=ost_capacity_bytes,
        )
        self.default_stripe_count = default_stripe_count
        self.stripe_size = stripe_size
        self._lock = threading.RLock()
        now = self.clock.now()
        root = _Entry(
            fid=ROOT_FID,
            kind="dir",
            parent=None,
            name="",
            mdt_index=0,
            mode=0o755,
            mtime=now,
            ctime=now,
            nlink=2,
        )
        self._entries: Dict[Fid, _Entry] = {ROOT_FID: root}
        #: JobID attached to subsequent operations (Lustre jobstats).
        self._job_context: Optional[str] = None

    # ------------------------------------------------------------------
    # Job context (jobstats)
    # ------------------------------------------------------------------

    def set_job(self, jobid: Optional[str]) -> None:
        """Tag subsequent operations with *jobid* (None clears it)."""
        with self._lock:
            self._job_context = jobid

    def job(self, jobid: str):
        """Context manager scoping a job id over a block of operations.

        >>> fs = LustreFilesystem()
        >>> with fs.job("train.1234"):
        ...     _ = fs.create("/model.ckpt")
        """
        import contextlib

        @contextlib.contextmanager
        def _scope():
            previous = self._job_context
            self.set_job(jobid)
            try:
                yield self
            finally:
                self.set_job(previous)

        return _scope()

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def _entry(self, fid: Fid) -> _Entry:
        entry = self._entries.get(fid)
        if entry is None:
            raise UnknownFid(f"no entry for FID {fid}")
        return entry

    def _resolve(self, path: str) -> _Entry:
        entry = self._entries[ROOT_FID]
        walked = "/"
        for component in split_components(path):
            if entry.kind != "dir":
                raise NotADirectory(walked)
            child_fid = entry.children.get(component)
            if child_fid is None:
                raise FileNotFound(normalize(path))
            entry = self._entries[child_fid]
            walked = walked.rstrip("/") + "/" + component
        return entry

    def _resolve_parent(self, path: str) -> tuple[_Entry, str]:
        components = split_components(path)
        if not components:
            raise InvalidPath(path, "operation not permitted on the root")
        parent = self._resolve("/" + "/".join(components[:-1]))
        if parent.kind != "dir":
            raise NotADirectory(path)
        return parent, components[-1]

    def path_of(self, fid: Fid) -> str:
        """Reconstruct the absolute path of *fid* by walking parents.

        This is the primitive the ``fid2path`` tool exposes; the
        monitor's processing stage calls it through
        :class:`~repro.lustre.fid2path.FidResolver`, which adds
        invocation accounting and caching.
        """
        with self._lock:
            entry = self._entry(fid)
            parts: list[str] = []
            while entry.parent is not None:
                parts.append(entry.name)
                entry = self._entry(entry.parent)
            return "/" + "/".join(reversed(parts))

    def fid_of(self, path: str) -> Fid:
        """The FID at *path* (raises FileNotFound)."""
        with self._lock:
            return self._resolve(path).fid

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def exists(self, path: str) -> bool:
        """True if *path* resolves."""
        with self._lock:
            try:
                self._resolve(path)
                return True
            except (FileNotFound, NotADirectory):
                return False

    def stat(self, path: str) -> LustreStat:
        """Metadata for *path*."""
        with self._lock:
            entry = self._resolve(path)
            return LustreStat(
                fid=entry.fid,
                kind=entry.kind,
                size=entry.size,
                mode=entry.mode,
                mtime=entry.mtime,
                ctime=entry.ctime,
                nlink=entry.nlink,
                mdt_index=entry.mdt_index,
            )

    def listdir(self, path: str) -> list[str]:
        """Sorted names in directory *path*."""
        with self._lock:
            entry = self._resolve(path)
            if entry.kind != "dir":
                raise NotADirectory(normalize(path))
            return sorted(entry.children)

    def walk(self, top: str = "/") -> Iterator[tuple[str, list[str], list[str]]]:
        """Depth-first traversal like :func:`os.walk`."""
        top = normalize(top)
        with self._lock:
            entry = self._resolve(top)
            if entry.kind != "dir":
                raise NotADirectory(top)
            names = sorted(entry.children.items())
            dirnames = [
                n for n, f in names if self._entries[f].kind == "dir"
            ]
            filenames = [
                n for n, f in names if self._entries[f].kind != "dir"
            ]
        yield top, dirnames, filenames
        for name in dirnames:
            child = top.rstrip("/") + "/" + name
            try:
                yield from self.walk(child)
            except (FileNotFound, NotADirectory):
                continue

    @property
    def entry_count(self) -> int:
        """Total namespace entries including the root."""
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _mdt_for_entry(self, entry: _Entry) -> MetadataTarget:
        return self.cluster.mdt(entry.mdt_index)

    def _record(
        self,
        mdt: MetadataTarget,
        rec_type: RecordType,
        target: Fid,
        parent: Fid,
        name: str,
        flags: ChangelogFlag = ChangelogFlag.NONE,
        source_parent: Optional[Fid] = None,
        source_name: Optional[str] = None,
    ) -> Optional[ChangelogRecord]:
        return mdt.changelog.append(
            rec_type,
            target,
            parent,
            name,
            flags=flags,
            source_parent_fid=source_parent,
            source_name=source_name,
            jobid=self._job_context,
        )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def mkdir(self, path: str, mode: int = 0o755) -> Fid:
        """Create a directory; returns its FID.  Appends ``02MKDIR``."""
        with self._lock:
            parent, name = self._resolve_parent(path)
            if name in parent.children:
                raise FileExists(normalize(path))
            mdt_index = self.cluster.place_directory(parent.mdt_index, name)
            mdt = self.cluster.mdt(mdt_index)
            fid = mdt.allocator.next_fid()
            now = self.clock.now()
            entry = _Entry(
                fid=fid,
                kind="dir",
                parent=parent.fid,
                name=name,
                mdt_index=mdt_index,
                mode=mode,
                mtime=now,
                ctime=now,
                nlink=2,
            )
            self._entries[fid] = entry
            parent.children[name] = fid
            parent.nlink += 1
            parent.mtime = now
            mdt.stats.mkdirs += 1
            # The mkdir is served by (and logged on) the MDT that owns the
            # new directory; the parent may live elsewhere under DNE.
            self._record(mdt, RecordType.MKDIR, fid, parent.fid, name)
            return fid

    def makedirs(self, path: str, exist_ok: bool = True) -> None:
        """Create *path* and any missing ancestors."""
        current = ""
        for component in split_components(path):
            current += "/" + component
            with self._lock:
                if self.exists(current):
                    entry = self._resolve(current)
                    if entry.kind != "dir":
                        raise NotADirectory(current)
                    continue
                self.mkdir(current)

    def set_stripe(self, path: str, stripe_count: int) -> None:
        """Set a directory's default stripe count (``lfs setstripe``).

        Files created under it (without an explicit count) use it;
        subdirectories inherit through the parent chain.
        """
        if stripe_count < 1:
            raise ValueError(f"stripe_count must be >= 1: {stripe_count}")
        with self._lock:
            entry = self._resolve(path)
            if entry.kind != "dir":
                raise NotADirectory(normalize(path))
            entry.default_stripe_count = stripe_count

    def get_stripe(self, path: str) -> int:
        """Effective stripe count for new files under directory *path*."""
        with self._lock:
            entry = self._resolve(path)
            return self._effective_stripe(entry)

    def _effective_stripe(self, entry: _Entry) -> int:
        while entry is not None:
            if entry.default_stripe_count is not None:
                return entry.default_stripe_count
            if entry.parent is None:
                break
            entry = self._entries[entry.parent]
        return self.default_stripe_count

    def create(
        self,
        path: str,
        size: int = 0,
        mode: int = 0o644,
        stripe_count: Optional[int] = None,
    ) -> Fid:
        """Create a regular file; returns its FID.  Appends ``01CREAT``.

        *stripe_count* overrides the directory default for this file.
        """
        if size < 0:
            raise ValueError(f"negative size: {size}")
        with self._lock:
            parent, name = self._resolve_parent(path)
            if name in parent.children:
                raise FileExists(normalize(path))
            mdt_index = self.cluster.place_file(parent.mdt_index)
            mdt = self.cluster.mdt(mdt_index)
            fid = mdt.allocator.next_fid()
            now = self.clock.now()
            layout = self.osts.allocate_layout(
                stripe_count=(
                    stripe_count
                    if stripe_count is not None
                    else self._effective_stripe(parent)
                ),
                stripe_size=self.stripe_size,
            )
            entry = _Entry(
                fid=fid,
                kind="file",
                parent=parent.fid,
                name=name,
                mdt_index=mdt_index,
                mode=mode,
                mtime=now,
                ctime=now,
                layout=layout,
            )
            self._entries[fid] = entry
            parent.children[name] = fid
            parent.mtime = now
            mdt.stats.creates += 1
            self._record(mdt, RecordType.CREAT, fid, parent.fid, name)
            if size:
                self.write(path, size)
            return fid

    def write(self, path: str, size: int) -> None:
        """Set the file's size (a full rewrite).  Appends ``13TRUNC``-free
        ``17MTIME``-style modification via CLOSE: Lustre logs data
        modification as a CLOSE (or MTIME) record; we use ``11CLOSE``.
        """
        if size < 0:
            raise ValueError(f"negative size: {size}")
        with self._lock:
            entry = self._resolve(path)
            if entry.kind == "dir":
                raise IsADirectory(normalize(path))
            assert entry.layout is not None
            self.osts.write_layout(entry.layout, size)
            now = self.clock.now()
            entry.size = size
            entry.mtime = now
            mdt = self._mdt_for_entry(entry)
            mdt.stats.writes += 1
            parent_fid = entry.parent if entry.parent is not None else ROOT_FID
            self._record(mdt, RecordType.CLOSE, entry.fid, parent_fid, entry.name)

    def truncate(self, path: str, size: int = 0) -> None:
        """Truncate the file to *size*.  Appends ``13TRUNC``."""
        if size < 0:
            raise ValueError(f"negative size: {size}")
        with self._lock:
            entry = self._resolve(path)
            if entry.kind == "dir":
                raise IsADirectory(normalize(path))
            assert entry.layout is not None
            self.osts.write_layout(entry.layout, size)
            now = self.clock.now()
            entry.size = size
            entry.mtime = now
            mdt = self._mdt_for_entry(entry)
            mdt.stats.writes += 1
            parent_fid = entry.parent if entry.parent is not None else ROOT_FID
            self._record(mdt, RecordType.TRUNC, entry.fid, parent_fid, entry.name)

    def setattr(self, path: str, mode: Optional[int] = None) -> None:
        """Change attributes.  Appends ``14SATTR``."""
        with self._lock:
            entry = self._resolve(path)
            now = self.clock.now()
            if mode is not None:
                entry.mode = mode
            entry.ctime = now
            mdt = self._mdt_for_entry(entry)
            mdt.stats.setattrs += 1
            parent_fid = entry.parent if entry.parent is not None else ROOT_FID
            self._record(mdt, RecordType.SATTR, entry.fid, parent_fid, entry.name)

    def unlink(self, path: str) -> None:
        """Remove a file.  Appends ``06UNLNK`` with UNLINK_LAST when the
        last link goes away (flag 0x1, as in the paper's Table 1)."""
        with self._lock:
            parent, name = self._resolve_parent(path)
            fid = parent.children.get(name)
            if fid is None:
                raise FileNotFound(normalize(path))
            entry = self._entries[fid]
            if entry.kind == "dir":
                raise IsADirectory(normalize(path))
            now = self.clock.now()
            del parent.children[name]
            parent.mtime = now
            entry.nlink -= 1
            flags = ChangelogFlag.NONE
            if entry.nlink <= 0:
                if entry.layout is not None:
                    self.osts.destroy_layout(entry.layout)
                del self._entries[fid]
                flags = ChangelogFlag.UNLINK_LAST
            mdt = self._mdt_for_entry(parent)
            mdt.stats.unlinks += 1
            self._record(
                mdt, RecordType.UNLNK, fid, parent.fid, name, flags=flags
            )

    def rmdir(self, path: str) -> None:
        """Remove an empty directory.  Appends ``07RMDIR``."""
        with self._lock:
            parent, name = self._resolve_parent(path)
            fid = parent.children.get(name)
            if fid is None:
                raise FileNotFound(normalize(path))
            entry = self._entries[fid]
            if entry.kind != "dir":
                raise NotADirectory(normalize(path))
            if entry.children:
                raise DirectoryNotEmpty(normalize(path))
            now = self.clock.now()
            del parent.children[name]
            del self._entries[fid]
            parent.nlink -= 1
            parent.mtime = now
            mdt = self._mdt_for_entry(entry)
            mdt.stats.rmdirs += 1
            self._record(mdt, RecordType.RMDIR, fid, parent.fid, name)

    def rename(self, src: str, dst: str) -> None:
        """Move *src* to *dst*.  Appends ``08RENME`` on the source parent's
        MDT (with the destination recorded) and, when the destination
        parent is served by a different MDT, a companion ``09RNMTO``
        there — mirroring Lustre's two-record cross-MDT renames."""
        with self._lock:
            src_norm, dst_norm = normalize(src), normalize(dst)
            src_parent, src_name = self._resolve_parent(src)
            fid = src_parent.children.get(src_name)
            if fid is None:
                raise FileNotFound(src_norm)
            entry = self._entries[fid]
            if entry.kind == "dir" and is_ancestor(src_norm, dst_norm):
                raise InvalidPath(dst, "cannot move a directory into itself")
            dst_parent, dst_name = self._resolve_parent(dst)
            flags = ChangelogFlag.NONE
            existing_fid = dst_parent.children.get(dst_name)
            if existing_fid is not None:
                existing = self._entries[existing_fid]
                if existing.kind == "dir":
                    if entry.kind != "dir":
                        raise IsADirectory(dst_norm)
                    if existing.children:
                        raise DirectoryNotEmpty(dst_norm)
                    del self._entries[existing_fid]
                    dst_parent.nlink -= 1
                else:
                    if entry.kind == "dir":
                        raise NotADirectory(dst_norm)
                    if existing.layout is not None:
                        self.osts.destroy_layout(existing.layout)
                    del self._entries[existing_fid]
                flags = ChangelogFlag.RENAME_OVERWRITE
            now = self.clock.now()
            del src_parent.children[src_name]
            dst_parent.children[dst_name] = fid
            if entry.kind == "dir":
                src_parent.nlink -= 1
                dst_parent.nlink += 1
            entry.parent = dst_parent.fid
            entry.name = dst_name
            entry.ctime = now
            src_parent.mtime = now
            dst_parent.mtime = now
            src_mdt = self._mdt_for_entry(src_parent)
            src_mdt.stats.renames += 1
            self._record(
                src_mdt,
                RecordType.RENME,
                fid,
                dst_parent.fid,
                dst_name,
                flags=flags,
                source_parent=src_parent.fid,
                source_name=src_name,
            )
            if dst_parent.mdt_index != src_parent.mdt_index:
                dst_mdt = self._mdt_for_entry(dst_parent)
                self._record(
                    dst_mdt,
                    RecordType.RNMTO,
                    fid,
                    dst_parent.fid,
                    dst_name,
                    flags=flags,
                    source_parent=src_parent.fid,
                    source_name=src_name,
                )

    def hardlink(self, existing: str, link_path: str) -> None:
        """Create a hard link.  Appends ``03HLINK``."""
        with self._lock:
            entry = self._resolve(existing)
            if entry.kind == "dir":
                raise IsADirectory(normalize(existing))
            parent, name = self._resolve_parent(link_path)
            if name in parent.children:
                raise FileExists(normalize(link_path))
            now = self.clock.now()
            parent.children[name] = entry.fid
            entry.nlink += 1
            parent.mtime = now
            mdt = self._mdt_for_entry(parent)
            self._record(mdt, RecordType.HLINK, entry.fid, parent.fid, name)

    def symlink(self, target: str, link_path: str) -> Fid:
        """Create a symbolic link.  Appends ``04SLINK``."""
        with self._lock:
            parent, name = self._resolve_parent(link_path)
            if name in parent.children:
                raise FileExists(normalize(link_path))
            mdt_index = self.cluster.place_file(parent.mdt_index)
            mdt = self.cluster.mdt(mdt_index)
            fid = mdt.allocator.next_fid()
            now = self.clock.now()
            entry = _Entry(
                fid=fid,
                kind="symlink",
                parent=parent.fid,
                name=name,
                mdt_index=mdt_index,
                mode=0o777,
                mtime=now,
                ctime=now,
                symlink_target=target,
            )
            self._entries[fid] = entry
            parent.children[name] = fid
            parent.mtime = now
            self._record(mdt, RecordType.SLINK, fid, parent.fid, name)
            return fid

    def readlink(self, path: str) -> str:
        """Return the target string of symlink *path*."""
        with self._lock:
            entry = self._resolve(path)
            if entry.kind != "symlink":
                raise InvalidPath(normalize(path), "not a symbolic link")
            assert entry.symlink_target is not None
            return entry.symlink_target

    def rmtree(self, path: str) -> None:
        """Recursively remove *path*."""
        with self._lock:
            entry = self._resolve(path)
            if entry.kind != "dir":
                self.unlink(path)
                return
            for name in list(entry.children):
                self.rmtree(normalize(path).rstrip("/") + "/" + name)
            if normalize(path) != "/":
                self.rmdir(path)

    # ------------------------------------------------------------------
    # Changelog access (what the monitor consumes)
    # ------------------------------------------------------------------

    def changelogs(self):
        """The ChangeLog of every MDT, ordered by MDT index."""
        return [mdt.changelog for mdt in self.cluster.all_mdts()]

    def total_changelog_records(self) -> int:
        """Records ever appended across all MDTs."""
        return sum(mdt.changelog.total_appended for mdt in self.cluster.all_mdts())
