"""An in-memory model of the Lustre filesystem.

This substrate reproduces the pieces of Lustre the paper's monitor
depends on:

* :class:`Fid` — Lustre File Identifiers (``[seq:oid:ver]``), allocated
  from per-MDT sequence ranges.
* :class:`ChangeLog` — the per-MDT metadata catalog: an append-only log
  of namespace mutations with registered reader ids and purge pointers
  (``lctl changelog_clear`` semantics).
* :class:`MetadataServer` / :class:`MetadataTarget` — MDS hosts serving
  one or more MDTs; DNE (Distributed NamEspace) placement policies
  spread directories across MDTs.
* :class:`ObjectStorageServer` / OSTs with round-robin striping.
* :class:`LustreFilesystem` — the client-visible API (mkdir, create,
  write, unlink, rename, setattr, ...) that drives changelog records
  into the owning MDT, exactly as client RPCs do.
* :class:`FidResolver` — the ``fid2path`` tool used by the monitor's
  processing step, with invocation accounting so experiments can model
  its cost (the paper's measured bottleneck).
"""

from repro.lustre.fid import Fid, FidSequenceAllocator
from repro.lustre.changelog import (
    ChangeLog,
    ChangelogFlag,
    ChangelogRecord,
    RecordType,
)
from repro.lustre.mds import DnePolicy, MetadataServer, MetadataTarget
from repro.lustre.oss import ObjectStorageServer, ObjectStorageTarget, StripeLayout
from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.fid2path import FidResolver
from repro.lustre.lctl import LctlAdmin, LfsClient

__all__ = [
    "LctlAdmin",
    "LfsClient",
    "Fid",
    "FidSequenceAllocator",
    "ChangeLog",
    "ChangelogRecord",
    "RecordType",
    "ChangelogFlag",
    "MetadataServer",
    "MetadataTarget",
    "DnePolicy",
    "ObjectStorageServer",
    "ObjectStorageTarget",
    "StripeLayout",
    "LustreFilesystem",
    "FidResolver",
]
