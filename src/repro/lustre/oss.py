"""Object storage servers (OSS) and targets (OST) with file striping.

File *data* in Lustre lives in objects on OSTs; a file's layout maps
byte ranges round-robin across its stripe objects.  The monitor never
reads data, but the substrate models it so the event-generation
workloads (create/write/delete scripts) exercise a realistic pipeline
and so capacity accounting is available to policy examples (e.g. a
purge-when-full rule).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import LustreError

#: Default stripe size: 1 MiB, Lustre's default.
DEFAULT_STRIPE_SIZE = 1 << 20


@dataclass(frozen=True)
class StripeLayout:
    """A file's layout: ordered (ost_index, object_id) stripe objects."""

    stripe_size: int
    objects: tuple[tuple[int, int], ...]

    @property
    def stripe_count(self) -> int:
        return len(self.objects)

    def ost_for_offset(self, offset: int) -> tuple[int, int]:
        """The (ost_index, object_id) holding byte *offset*."""
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        stripe = (offset // self.stripe_size) % self.stripe_count
        return self.objects[stripe]


class ObjectStorageTarget:
    """One OST: an object table with byte-level capacity accounting."""

    def __init__(self, index: int, capacity_bytes: Optional[int] = None) -> None:
        self.index = index
        self.capacity_bytes = capacity_bytes
        self._objects: Dict[int, int] = {}  # object id -> size
        self._next_object = 1
        self._lock = threading.Lock()
        self.used_bytes = 0

    def create_object(self) -> int:
        """Allocate a new, empty object; returns its id."""
        with self._lock:
            object_id = self._next_object
            self._next_object += 1
            self._objects[object_id] = 0
            return object_id

    def write_object(self, object_id: int, size: int) -> None:
        """Set the size of *object_id* (idempotent full-object write)."""
        if size < 0:
            raise ValueError(f"negative size: {size}")
        with self._lock:
            if object_id not in self._objects:
                raise LustreError(f"OST{self.index}: unknown object {object_id}")
            previous = self._objects[object_id]
            delta = size - previous
            if (
                self.capacity_bytes is not None
                and self.used_bytes + delta > self.capacity_bytes
            ):
                raise LustreError(f"OST{self.index} out of space")
            self._objects[object_id] = size
            self.used_bytes += delta

    def destroy_object(self, object_id: int) -> None:
        """Remove *object_id*, releasing its bytes."""
        with self._lock:
            size = self._objects.pop(object_id, None)
            if size is None:
                raise LustreError(f"OST{self.index}: unknown object {object_id}")
            self.used_bytes -= size

    @property
    def object_count(self) -> int:
        with self._lock:
            return len(self._objects)


class ObjectStorageServer:
    """An OSS host serving one or more OSTs."""

    def __init__(self, name: str, osts: list[ObjectStorageTarget]) -> None:
        if not osts:
            raise LustreError(f"OSS {name!r} must serve at least one OST")
        self.name = name
        self.osts = list(osts)


class OstPool:
    """All OSTs in the filesystem plus round-robin stripe allocation."""

    def __init__(self, servers: list[ObjectStorageServer]) -> None:
        if not servers:
            raise LustreError("need at least one OSS")
        self.servers = list(servers)
        self._osts: Dict[int, ObjectStorageTarget] = {}
        for server in servers:
            for ost in server.osts:
                if ost.index in self._osts:
                    raise LustreError(f"duplicate OST index {ost.index}")
                self._osts[ost.index] = ost
        self._lock = threading.Lock()
        self._rr_next = 0

    @classmethod
    def build(
        cls,
        num_oss: int = 1,
        osts_per_oss: int = 1,
        ost_capacity_bytes: Optional[int] = None,
    ) -> "OstPool":
        servers = []
        index = 0
        for host in range(num_oss):
            osts = []
            for _ in range(osts_per_oss):
                osts.append(ObjectStorageTarget(index, ost_capacity_bytes))
                index += 1
            servers.append(ObjectStorageServer(f"oss{host}", osts))
        return cls(servers)

    @property
    def ost_count(self) -> int:
        return len(self._osts)

    def ost(self, index: int) -> ObjectStorageTarget:
        try:
            return self._osts[index]
        except KeyError:
            raise LustreError(f"no OST with index {index}") from None

    @property
    def used_bytes(self) -> int:
        """Total bytes stored across all OSTs."""
        return sum(ost.used_bytes for ost in self._osts.values())

    @property
    def capacity_bytes(self) -> Optional[int]:
        """Total capacity (None if any OST is unbounded)."""
        total = 0
        for ost in self._osts.values():
            if ost.capacity_bytes is None:
                return None
            total += ost.capacity_bytes
        return total

    def allocate_layout(
        self, stripe_count: int = 1, stripe_size: int = DEFAULT_STRIPE_SIZE
    ) -> StripeLayout:
        """Create stripe objects round-robin across OSTs."""
        if stripe_count < 1:
            raise LustreError(f"stripe_count must be >= 1: {stripe_count}")
        if stripe_count > self.ost_count:
            stripe_count = self.ost_count
        ordered = sorted(self._osts)
        with self._lock:
            start = self._rr_next % self.ost_count
            self._rr_next += stripe_count
        objects = []
        for i in range(stripe_count):
            ost_index = ordered[(start + i) % self.ost_count]
            object_id = self._osts[ost_index].create_object()
            objects.append((ost_index, object_id))
        return StripeLayout(stripe_size=stripe_size, objects=tuple(objects))

    def write_layout(self, layout: StripeLayout, size: int) -> None:
        """Distribute *size* bytes across the layout's stripe objects."""
        if size < 0:
            raise ValueError(f"negative size: {size}")
        full_stripes, remainder = divmod(size, layout.stripe_size)
        per_object = [0] * layout.stripe_count
        for stripe in range(full_stripes):
            per_object[stripe % layout.stripe_count] += layout.stripe_size
        if remainder:
            per_object[full_stripes % layout.stripe_count] += remainder
        for (ost_index, object_id), nbytes in zip(layout.objects, per_object):
            self.ost(ost_index).write_object(object_id, nbytes)

    def destroy_layout(self, layout: StripeLayout) -> None:
        """Destroy every stripe object of *layout*."""
        for ost_index, object_id in layout.objects:
            self.ost(ost_index).destroy_object(object_id)
