"""The Lustre ChangeLog: per-MDT append-only metadata event catalog.

Every namespace or metadata mutation served by an MDT appends one record
to that MDT's ChangeLog.  A record carries (Table 1 of the paper): record
number, event type, timestamp, datestamp, flags, target FID, parent FID
and target name, rendered like::

    13106 01CREAT 20:15:37.1138 2017.09.06 0x0 t=[0x200000402:0xa046:0x0] p=[0x200000007:0x1:0x0] data1.txt

Consumers register as *changelog users* (``lctl changelog_register``),
read records past their bookmark and acknowledge consumption with
``clear`` (``lctl changelog_clear``), which lets the MDT purge records
once **every** registered user has consumed them — the mechanism the
monitor's Collectors use to keep the log from growing without bound
while guaranteeing no event is missed.
"""

from __future__ import annotations

import threading
import time as _time
from dataclasses import dataclass
from enum import IntEnum, IntFlag
from typing import Dict, Iterator, Optional

from repro.errors import ChangelogError, ChangelogUserError
from repro.lustre.fid import Fid
from repro.util.clock import Clock, WallClock


class RecordType(IntEnum):
    """Changelog record types (numeric values match Lustre's)."""

    MARK = 0
    CREAT = 1
    MKDIR = 2
    HLINK = 3
    SLINK = 4
    MKNOD = 5
    UNLNK = 6
    RMDIR = 7
    RENME = 8
    RNMTO = 9
    OPEN = 10
    CLOSE = 11
    LYOUT = 12
    TRUNC = 13
    SATTR = 14
    XATTR = 15
    HSM = 16
    MTIME = 17
    CTIME = 18
    ATIME = 19

    @property
    def mnemonic(self) -> str:
        """The ``01CREAT``-style token used in changelog output."""
        return f"{self.value:02d}{self.name}"

    @classmethod
    def from_mnemonic(cls, token: str) -> "RecordType":
        """Parse a ``01CREAT``-style token back to a record type."""
        for member in cls:
            if member.mnemonic == token:
                return member
        raise ChangelogError(f"unknown changelog record type: {token!r}")


class ChangelogFlag(IntFlag):
    """Record flags (subset; UNLINK_LAST marks the last link going away)."""

    NONE = 0x0
    UNLINK_LAST = 0x1
    RENAME_OVERWRITE = 0x2


@dataclass(frozen=True)
class ChangelogRecord:
    """One immutable changelog record (the paper's Table 1 tuple)."""

    index: int
    rec_type: RecordType
    timestamp: float  # seconds since the epoch (possibly virtual)
    flags: ChangelogFlag
    target_fid: Fid
    parent_fid: Fid
    name: str
    #: For RENME records Lustre also logs the source parent/name; we keep
    #: the rename source here so consumers can reconstruct moves.
    source_parent_fid: Optional[Fid] = None
    source_name: Optional[str] = None
    #: JobID of the client operation (Lustre jobstats), when enabled.
    jobid: Optional[str] = None

    def format(self) -> str:
        """Render the record in ``lctl changelog`` textual form.

        >>> from repro.lustre.fid import Fid
        >>> rec = ChangelogRecord(13106, RecordType.CREAT, 1504728937.1138,
        ...     ChangelogFlag.NONE, Fid(0x200000402, 0xa046), Fid(0x200000007, 0x1),
        ...     'data1.txt')
        >>> rec.format().split()[1]
        '01CREAT'
        """
        struct = _time.gmtime(self.timestamp)
        frac = int((self.timestamp % 1) * 10_000)
        clock = _time.strftime("%H:%M:%S", struct) + f".{frac:04d}"
        date = _time.strftime("%Y.%m.%d", struct)
        fields = [
            str(self.index),
            self.rec_type.mnemonic,
            clock,
            date,
            f"{int(self.flags):#x}",
            f"t={self.target_fid}",
        ]
        if self.jobid:
            fields.append(f"j={self.jobid}")
        fields.append(f"p={self.parent_fid}")
        fields.append(self.name)
        return " ".join(fields)

    @classmethod
    def parse(cls, line: str) -> "ChangelogRecord":
        """Parse a record previously produced by :meth:`format`.

        Fractional-second precision below 100 microseconds is lost in the
        textual form, as with the real tool.
        """
        parts = line.split()
        if len(parts) < 8:
            raise ChangelogError(f"short changelog line: {line!r}")
        index = int(parts[0])
        rec_type = RecordType.from_mnemonic(parts[1])
        clock_text, date_text = parts[2], parts[3]
        hms, frac = clock_text.rsplit(".", 1)
        struct = _time.strptime(f"{date_text} {hms}", "%Y.%m.%d %H:%M:%S")
        import calendar

        timestamp = calendar.timegm(struct) + int(frac) / 10_000
        flags = ChangelogFlag(int(parts[4], 0))
        if not parts[5].startswith("t="):
            raise ChangelogError(f"malformed FID fields: {line!r}")
        target = Fid.parse(parts[5][2:])
        cursor = 6
        jobid = None
        if cursor < len(parts) and parts[cursor].startswith("j="):
            jobid = parts[cursor][2:]
            cursor += 1
        if cursor >= len(parts) or not parts[cursor].startswith("p="):
            raise ChangelogError(f"malformed FID fields: {line!r}")
        parent = Fid.parse(parts[cursor][2:])
        name = " ".join(parts[cursor + 1 :])
        return cls(
            index, rec_type, timestamp, flags, target, parent, name,
            jobid=jobid,
        )

    @property
    def is_namespace_change(self) -> bool:
        """True for records that alter the namespace (vs pure attributes)."""
        return self.rec_type in (
            RecordType.CREAT,
            RecordType.MKDIR,
            RecordType.UNLNK,
            RecordType.RMDIR,
            RecordType.RENME,
            RecordType.RNMTO,
            RecordType.HLINK,
            RecordType.SLINK,
            RecordType.MKNOD,
        )


class ChangeLog:
    """An MDT's changelog with registered users and purge pointers.

    Thread-safe: clients append from application threads while collector
    threads read and clear concurrently.
    """

    def __init__(
        self,
        mdt_index: int,
        clock: Clock | None = None,
        capacity: Optional[int] = None,
    ) -> None:
        self.mdt_index = mdt_index
        self._clock = clock or WallClock()
        self._capacity = capacity
        self._lock = threading.RLock()
        self._records: list[ChangelogRecord] = []
        self._first_index = 1  # index of _records[0]
        self._next_index = 1
        self._users: Dict[str, int] = {}  # user id -> highest cleared index
        self._next_user = 1
        #: Records dropped because no user was registered and capacity hit.
        self.overflow_drops = 0
        self.total_appended = 0
        #: The record-type mask (``mdd.*.changelog_mask``): only types in
        #: the mask are recorded.  Defaults to everything.
        self._mask: frozenset[RecordType] = frozenset(RecordType)
        #: Records suppressed by the mask (observability).
        self.mask_suppressed = 0

    # -- user registration ---------------------------------------------------

    def register_user(self) -> str:
        """Register a changelog consumer; returns an id like ``cl1``."""
        with self._lock:
            user_id = f"cl{self._next_user}"
            self._next_user += 1
            # A new user starts at the current tail: it sees only records
            # appended after registration, like lctl changelog_register.
            self._users[user_id] = self._next_index - 1
            return user_id

    def deregister_user(self, user_id: str) -> None:
        """Remove a consumer and release its purge pointer."""
        with self._lock:
            if user_id not in self._users:
                raise ChangelogUserError(f"unknown changelog user {user_id!r}")
            del self._users[user_id]
            self._purge()

    @property
    def users(self) -> list[str]:
        """Registered changelog user ids."""
        with self._lock:
            return sorted(self._users)

    # -- mask -------------------------------------------------------------

    @property
    def mask(self) -> frozenset[RecordType]:
        """Record types currently being logged."""
        with self._lock:
            return self._mask

    def set_mask(self, record_types) -> None:
        """Restrict logging to *record_types* (``changelog_mask``).

        Suppressed operations are counted in ``mask_suppressed``.  MARK
        records are always allowed (Lustre uses them for bookkeeping).
        """
        with self._lock:
            self._mask = frozenset(record_types) | {RecordType.MARK}

    def reset_mask(self) -> None:
        """Log every record type again (the default)."""
        with self._lock:
            self._mask = frozenset(RecordType)

    # -- append ---------------------------------------------------------------

    def append(
        self,
        rec_type: RecordType,
        target_fid: Fid,
        parent_fid: Fid,
        name: str,
        flags: ChangelogFlag = ChangelogFlag.NONE,
        source_parent_fid: Optional[Fid] = None,
        source_name: Optional[str] = None,
        jobid: Optional[str] = None,
    ) -> Optional[ChangelogRecord]:
        """Append a record; returns it (None if the mask suppressed it)."""
        with self._lock:
            if rec_type not in self._mask:
                self.mask_suppressed += 1
                return None
            record = ChangelogRecord(
                index=self._next_index,
                rec_type=rec_type,
                timestamp=self._clock.now(),
                flags=flags,
                target_fid=target_fid,
                parent_fid=parent_fid,
                name=name,
                source_parent_fid=source_parent_fid,
                source_name=source_name,
                jobid=jobid,
            )
            self._next_index += 1
            self._records.append(record)
            self.total_appended += 1
            if self._capacity is not None and len(self._records) > self._capacity:
                # A full changelog with no consumers drops its oldest
                # records (real deployments must size the log or attach
                # a consumer; we surface the loss explicitly).
                dropped = len(self._records) - self._capacity
                del self._records[:dropped]
                self._first_index += dropped
                self.overflow_drops += dropped
            return record

    # -- read / clear --------------------------------------------------------

    def read(
        self, user_id: str, max_records: Optional[int] = None
    ) -> list[ChangelogRecord]:
        """Records after *user_id*'s bookmark, oldest first.

        Reading does **not** advance the purge pointer; call :meth:`clear`
        once records are durably consumed.
        """
        with self._lock:
            if user_id not in self._users:
                raise ChangelogUserError(f"unknown changelog user {user_id!r}")
            start_index = max(self._users[user_id] + 1, self._first_index)
            offset = start_index - self._first_index
            records = self._records[offset:]
            if max_records is not None:
                records = records[:max_records]
            return list(records)

    def clear(self, user_id: str, up_to_index: int) -> None:
        """Acknowledge consumption of records up to *up_to_index*.

        Records become purgeable once every registered user has cleared
        them; purging happens immediately here.
        """
        with self._lock:
            if user_id not in self._users:
                raise ChangelogUserError(f"unknown changelog user {user_id!r}")
            if up_to_index >= self._next_index:
                raise ChangelogError(
                    f"clear({up_to_index}) beyond last record "
                    f"{self._next_index - 1}"
                )
            self._users[user_id] = max(self._users[user_id], up_to_index)
            self._purge()

    def _purge(self) -> None:
        if not self._users:
            return
        horizon = min(self._users.values())
        purgeable = horizon - self._first_index + 1
        if purgeable > 0:
            del self._records[:purgeable]
            self._first_index += purgeable

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def backlog(self) -> int:
        """Records retained (not yet purged)."""
        return len(self)

    @property
    def last_index(self) -> int:
        """Index of the most recent record (0 if none ever appended)."""
        with self._lock:
            return self._next_index - 1

    @property
    def first_retained_index(self) -> int:
        """Index of the oldest retained record."""
        with self._lock:
            return self._first_index

    def dump(self) -> Iterator[str]:
        """Yield every retained record in textual form (oldest first)."""
        with self._lock:
            snapshot = list(self._records)
        for record in snapshot:
            yield record.format()
