"""The ``fid2path`` tool: FID → absolute path resolution.

The paper identifies repeated per-event ``fid2path`` invocation as the
monitor's throughput bottleneck (§5.2) and proposes two mitigations —
batching resolutions and caching path mappings — which the Processor in
:mod:`repro.core.processor` implements on top of this resolver.

:class:`FidResolver` accounts every invocation so both the live pipeline
and the calibrated performance models can charge its cost, and supports
an optional per-call latency hook used by wall-clock experiments to
emulate the real tool's fork/exec + RPC expense.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.errors import UnknownFid
from repro.lustre.fid import Fid
from repro.lustre.filesystem import LustreFilesystem


class FidResolver:
    """Resolve FIDs to absolute paths with invocation accounting.

    Parameters
    ----------
    filesystem:
        The Lustre filesystem whose namespace is consulted.
    latency_hook:
        Optional callable invoked once per underlying resolution (e.g.
        ``lambda: time.sleep(0.0001)``); lets wall-clock benchmarks model
        the cost of forking the real ``lfs fid2path`` tool.
    """

    def __init__(
        self,
        filesystem: LustreFilesystem,
        latency_hook: Optional[Callable[[], None]] = None,
    ) -> None:
        self.fs = filesystem
        self.latency_hook = latency_hook
        self._lock = threading.Lock()
        #: Number of underlying fid2path invocations (the expensive part).
        self.invocations = 0
        #: Number of FIDs that could not be resolved (deleted before
        #: resolution — inherent to asynchronous changelog consumption).
        self.failures = 0

    def resolve(self, fid: Fid) -> str:
        """Resolve one FID to an absolute path.

        Raises :class:`~repro.errors.UnknownFid` when the object no
        longer exists (e.g. an UNLNK was processed after the file's
        records were read but the file is already gone).
        """
        with self._lock:
            self.invocations += 1
        if self.latency_hook is not None:
            self.latency_hook()
        try:
            return self.fs.path_of(fid)
        except UnknownFid:
            with self._lock:
                self.failures += 1
            raise

    def resolve_many(self, fids: list[Fid]) -> dict[Fid, Optional[str]]:
        """Resolve a batch of FIDs in one logical invocation.

        Batch resolution deduplicates FIDs and charges a single
        invocation for the batch plus one unit per *unique* FID — the
        cost structure that makes the paper's proposed batching fix
        effective (the same ``overhead + n * per_fid`` model the A1
        ablation's calibrated pipeline charges).  Unresolvable FIDs map
        to ``None``.
        """
        if not fids:
            return {}
        unique = {}
        for fid in fids:
            if fid not in unique:
                unique[fid] = None
        with self._lock:
            # One batch invocation plus one unit per unique FID, per
            # the documented cost model; charging a flat 1 here made
            # the batching ablation overstate its win.
            self.invocations += 1 + len(unique)
        if self.latency_hook is not None:
            self.latency_hook()
        for fid in unique:
            try:
                unique[fid] = self.fs.path_of(fid)
            except UnknownFid:
                with self._lock:
                    self.failures += 1
                unique[fid] = None
        return unique

    def reset_counters(self) -> None:
        """Zero the invocation/failure counters (benchmark hygiene)."""
        with self._lock:
            self.invocations = 0
            self.failures = 0
