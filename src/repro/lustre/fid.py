"""Lustre File Identifiers (FIDs).

A FID is the cluster-wide unique identifier of a Lustre object, printed
as ``[0x200000402:0xa046:0x0]`` — a 64-bit *sequence*, a 32-bit *object
id* within the sequence and a 32-bit *version*.  Sequence ranges are
granted to servers by the sequence controller, so each MDT allocates
from its own disjoint range — which is how we model DNE: a FID's
sequence identifies the MDT that owns the object.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import LustreError

#: First sequence usable for normal (client-visible) objects; lower
#: sequences are reserved (matches Lustre's FID_SEQ_NORMAL = 0x200000400).
FID_SEQ_NORMAL = 0x200000400

#: Width of the sequence range granted to each MDT in this model.
SEQUENCE_RANGE_PER_MDT = 0x10000

#: The well-known FID of the filesystem root (Lustre uses a fixed root FID).
ROOT_FID_SEQ = 0x200000007

_FID_RE = re.compile(
    r"^\[?(0x[0-9a-fA-F]+|\d+):(0x[0-9a-fA-F]+|\d+):(0x[0-9a-fA-F]+|\d+)\]?$"
)


@dataclass(frozen=True, order=True)
class Fid:
    """An immutable Lustre FID: (sequence, oid, version)."""

    seq: int
    oid: int
    ver: int = 0

    def __str__(self) -> str:
        return f"[{self.seq:#x}:{self.oid:#x}:{self.ver:#x}]"

    def short(self) -> str:
        """Compact form without brackets, used in message payloads."""
        return f"{self.seq:#x}:{self.oid:#x}:{self.ver:#x}"

    @classmethod
    def parse(cls, text: str) -> "Fid":
        """Parse ``[0x...:0x...:0x...]`` (brackets optional).

        >>> Fid.parse('[0x200000402:0xa046:0x0]')
        Fid(seq=8589935618, oid=41030, ver=0)
        """
        match = _FID_RE.match(text.strip())
        if match is None:
            raise LustreError(f"malformed FID: {text!r}")
        seq, oid, ver = (int(group, 0) for group in match.groups())
        return cls(seq, oid, ver)

    @property
    def is_root(self) -> bool:
        """True for the well-known root FID."""
        return self.seq == ROOT_FID_SEQ and self.oid == 1


#: The filesystem root object.
ROOT_FID = Fid(ROOT_FID_SEQ, 1, 0)


class FidSequenceAllocator:
    """Allocates FIDs from the sequence range owned by one MDT.

    MDT *i* owns sequences ``[FID_SEQ_NORMAL + i*RANGE, ... + (i+1)*RANGE)``
    and hands out object ids densely within the current sequence, rolling
    to the next sequence when one fills (we model a generous 2**32 - 1
    objects per sequence, so rollover is rare but supported).
    """

    OIDS_PER_SEQUENCE = 2**32 - 1

    def __init__(self, mdt_index: int) -> None:
        if mdt_index < 0:
            raise LustreError(f"negative MDT index: {mdt_index}")
        self.mdt_index = mdt_index
        self._base_seq = FID_SEQ_NORMAL + mdt_index * SEQUENCE_RANGE_PER_MDT
        self._seq_offset = 0
        self._next_oid = 1
        self.allocated = 0

    def next_fid(self) -> Fid:
        """Allocate and return the next FID for this MDT."""
        if self._next_oid > self.OIDS_PER_SEQUENCE:
            self._seq_offset += 1
            if self._seq_offset >= SEQUENCE_RANGE_PER_MDT:
                raise LustreError(
                    f"MDT {self.mdt_index} exhausted its FID sequence range"
                )
            self._next_oid = 1
        fid = Fid(self._base_seq + self._seq_offset, self._next_oid, 0)
        self._next_oid += 1
        self.allocated += 1
        return fid

    def owns(self, fid: Fid) -> bool:
        """True if *fid* belongs to this MDT's sequence range."""
        return (
            self._base_seq
            <= fid.seq
            < FID_SEQ_NORMAL + (self.mdt_index + 1) * SEQUENCE_RANGE_PER_MDT
        )


def mdt_index_of(fid: Fid) -> int:
    """Derive the owning MDT index from a normal FID's sequence.

    Raises :class:`LustreError` for reserved FIDs (e.g. the root, which
    lives on MDT 0 by convention but uses a reserved sequence).
    """
    if fid.is_root:
        return 0
    if fid.seq < FID_SEQ_NORMAL:
        raise LustreError(f"FID {fid} is in a reserved sequence")
    return (fid.seq - FID_SEQ_NORMAL) // SEQUENCE_RANGE_PER_MDT
