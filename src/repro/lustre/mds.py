"""Metadata servers (MDS) and metadata targets (MDT), with DNE placement.

A Lustre filesystem's namespace is served by one or more MDTs, each
hosted on an MDS.  Every MDT owns a FID sequence range and keeps its own
ChangeLog; a namespace operation is recorded in the ChangeLog of the MDT
that serves it.  DNE (Distributed NamEspace) spreads directories across
MDTs; the placement policy is modelled here.

The paper's testbeds: AWS had a single MDS; Iota had four MDS but was
configured to use only one (its tests ran single-MDS).  The multi-MDS
ablation (A2 in DESIGN.md) exercises the >1 case.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

from repro.errors import LustreError
from repro.lustre.changelog import ChangeLog
from repro.lustre.fid import Fid, FidSequenceAllocator
from repro.util.clock import Clock, WallClock


class DnePolicy(Enum):
    """How new directories are placed across MDTs."""

    #: All directories on MDT 0 (pre-DNE behaviour; paper's configuration).
    SINGLE = "single"
    #: Child directory inherits the parent directory's MDT.
    INHERIT = "inherit"
    #: Directories placed by hash of their name (DNE striped-dir style).
    HASH = "hash"
    #: Directories placed round-robin across MDTs.
    ROUND_ROBIN = "round_robin"


@dataclass
class MdtStats:
    """Operation counters for one MDT."""

    opens: int = 0
    creates: int = 0
    mkdirs: int = 0
    unlinks: int = 0
    rmdirs: int = 0
    renames: int = 0
    setattrs: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return (
            self.opens
            + self.creates
            + self.mkdirs
            + self.unlinks
            + self.rmdirs
            + self.renames
            + self.setattrs
            + self.writes
        )


class MetadataTarget:
    """One MDT: a FID allocator plus a ChangeLog plus counters."""

    def __init__(
        self,
        index: int,
        clock: Clock | None = None,
        changelog_capacity: Optional[int] = None,
    ) -> None:
        self.index = index
        self.allocator = FidSequenceAllocator(index)
        self.changelog = ChangeLog(index, clock=clock, capacity=changelog_capacity)
        self.stats = MdtStats()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetadataTarget(index={self.index}, backlog={self.changelog.backlog})"


class MetadataServer:
    """An MDS host serving one or more MDTs.

    The host identity matters to the monitor: one Collector is deployed
    per MDS, reading the ChangeLogs of every MDT the host serves.
    """

    def __init__(self, name: str, mdts: list[MetadataTarget]) -> None:
        if not mdts:
            raise LustreError(f"MDS {name!r} must serve at least one MDT")
        self.name = name
        self.mdts = list(mdts)

    @property
    def mdt_indices(self) -> list[int]:
        return [mdt.index for mdt in self.mdts]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetadataServer(name={self.name!r}, mdts={self.mdt_indices})"


class MdtCluster:
    """The full set of MDTs plus the DNE placement policy.

    Construction helper: ``MdtCluster.build(num_mds=4, mdts_per_mds=1)``
    creates MDS hosts named ``mds0`` .. ``mds3`` with consecutively
    numbered MDTs.
    """

    def __init__(
        self,
        servers: list[MetadataServer],
        policy: DnePolicy = DnePolicy.SINGLE,
    ) -> None:
        if not servers:
            raise LustreError("cluster needs at least one MDS")
        self.servers = list(servers)
        self.policy = policy
        self._mdts: Dict[int, MetadataTarget] = {}
        for server in servers:
            for mdt in server.mdts:
                if mdt.index in self._mdts:
                    raise LustreError(f"duplicate MDT index {mdt.index}")
                self._mdts[mdt.index] = mdt
        if 0 not in self._mdts:
            raise LustreError("MDT 0 (root MDT) must exist")
        self._rr_lock = threading.Lock()
        self._rr_next = 0

    @classmethod
    def build(
        cls,
        num_mds: int = 1,
        mdts_per_mds: int = 1,
        policy: DnePolicy = DnePolicy.SINGLE,
        clock: Clock | None = None,
        changelog_capacity: Optional[int] = None,
    ) -> "MdtCluster":
        clock = clock or WallClock()
        servers = []
        index = 0
        for host in range(num_mds):
            mdts = []
            for _ in range(mdts_per_mds):
                mdts.append(
                    MetadataTarget(
                        index, clock=clock, changelog_capacity=changelog_capacity
                    )
                )
                index += 1
            servers.append(MetadataServer(f"mds{host}", mdts))
        return cls(servers, policy=policy)

    # -- lookup --------------------------------------------------------------

    @property
    def mdt_count(self) -> int:
        return len(self._mdts)

    def mdt(self, index: int) -> MetadataTarget:
        """The MDT with the given index."""
        try:
            return self._mdts[index]
        except KeyError:
            raise LustreError(f"no MDT with index {index}") from None

    def all_mdts(self) -> list[MetadataTarget]:
        """All MDTs, ordered by index."""
        return [self._mdts[i] for i in sorted(self._mdts)]

    def server_for_mdt(self, index: int) -> MetadataServer:
        """The MDS host serving MDT *index*."""
        for server in self.servers:
            if index in server.mdt_indices:
                return server
        raise LustreError(f"no MDS serves MDT {index}")

    # -- DNE placement ----------------------------------------------------------

    def place_directory(self, parent_mdt: int, name: str) -> int:
        """Choose the MDT index for a new directory per the DNE policy."""
        if self.policy is DnePolicy.SINGLE:
            return 0
        if self.policy is DnePolicy.INHERIT:
            return parent_mdt
        if self.policy is DnePolicy.HASH:
            return zlib.crc32(name.encode()) % self.mdt_count
        with self._rr_lock:
            chosen = self._rr_next % self.mdt_count
            self._rr_next += 1
            return chosen

    def place_file(self, parent_mdt: int) -> int:
        """Files are always served by their parent directory's MDT."""
        return parent_mdt
