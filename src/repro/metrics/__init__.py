"""Measurement utilities: registries, meters, histograms, tracing."""

from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ScopedRegistry,
)
from repro.metrics.adaptive import AdaptiveFlushController, FlushTuning
from repro.metrics.throughput import RateMeter, StageTimer
from repro.metrics.histogram import LatencyHistogram
from repro.metrics.resources import ResourceSample, ResourceUsageModel
from repro.metrics.tracing import (
    NULL_TRACER,
    NullTracer,
    PIPELINE_STAGES,
    PipelineTracer,
    make_tracer,
)

__all__ = [
    "AdaptiveFlushController",
    "FlushTuning",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ScopedRegistry",
    "RateMeter",
    "StageTimer",
    "LatencyHistogram",
    "ResourceSample",
    "ResourceUsageModel",
    "NULL_TRACER",
    "NullTracer",
    "PIPELINE_STAGES",
    "PipelineTracer",
    "make_tracer",
]
