"""Measurement utilities: registries, meters, histograms, resources."""

from repro.metrics.registry import Counter, Gauge, MetricsRegistry, ScopedRegistry
from repro.metrics.throughput import RateMeter, StageTimer
from repro.metrics.histogram import LatencyHistogram
from repro.metrics.resources import ResourceSample, ResourceUsageModel

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "ScopedRegistry",
    "RateMeter",
    "StageTimer",
    "LatencyHistogram",
    "ResourceSample",
    "ResourceUsageModel",
]
