"""Measurement utilities: throughput meters, histograms, resource samples."""

from repro.metrics.throughput import RateMeter, StageTimer
from repro.metrics.histogram import LatencyHistogram
from repro.metrics.resources import ResourceSample, ResourceUsageModel

__all__ = [
    "RateMeter",
    "StageTimer",
    "LatencyHistogram",
    "ResourceSample",
    "ResourceUsageModel",
]
