"""Throughput measurement: rate meters and per-stage timers."""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict

from repro.util.clock import Clock, WallClock


class RateMeter:
    """Counts events against a clock and reports rates.

    Works with either the wall clock (live benchmarks) or a manual /
    virtual clock (calibrated experiments).
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or WallClock()
        self._lock = threading.Lock()
        self.count = 0
        self.started_at = self.clock.now()
        self.last_at = self.started_at

    def mark(self, n: int = 1) -> None:
        """Record *n* occurrences."""
        with self._lock:
            self.count += n
            self.last_at = self.clock.now()

    @property
    def elapsed(self) -> float:
        """Seconds from start to the most recent mark."""
        return max(0.0, self.last_at - self.started_at)

    @property
    def rate(self) -> float:
        """Occurrences per second over the active window."""
        elapsed = self.elapsed
        return self.count / elapsed if elapsed > 0 else 0.0

    def rate_over(self, elapsed: float) -> float:
        """Occurrences per second over an externally supplied window."""
        return self.count / elapsed if elapsed > 0 else 0.0

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.started_at = self.clock.now()
            self.last_at = self.started_at


@dataclass
class StageTimer:
    """Accumulates wall time per named pipeline stage.

    Used by the live throughput benchmark to attribute cost to the
    detect / process / report stages the way the paper's bottleneck
    analysis does.
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    class _Span:
        def __init__(self, timer: "StageTimer", stage: str) -> None:
            self.timer = timer
            self.stage = stage
            self.start = 0.0

        def __enter__(self) -> "StageTimer._Span":
            self.start = time.perf_counter()
            return self

        def __exit__(self, *exc: object) -> None:
            elapsed = time.perf_counter() - self.start
            self.timer.totals[self.stage] = (
                self.timer.totals.get(self.stage, 0.0) + elapsed
            )
            self.timer.counts[self.stage] = self.timer.counts.get(self.stage, 0) + 1

    def stage(self, name: str) -> "_Span":
        """Context manager timing one execution of stage *name*."""
        return self._Span(self, name)

    def mean(self, name: str) -> float:
        """Mean seconds per execution of stage *name*."""
        count = self.counts.get(name, 0)
        return self.totals.get(name, 0.0) / count if count else 0.0

    def breakdown(self) -> Dict[str, float]:
        """Fraction of total timed cost per stage."""
        total = sum(self.totals.values())
        if total <= 0:
            return {name: 0.0 for name in self.totals}
        return {name: value / total for name, value in self.totals.items()}

    def dominant_stage(self) -> str | None:
        """The stage with the largest accumulated cost (the bottleneck)."""
        if not self.totals:
            return None
        return max(self.totals, key=lambda name: self.totals[name])
