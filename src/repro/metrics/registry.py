"""A shared metrics registry: named counters, gauges and histograms.

Every long-running service in the pipeline (collectors, aggregator,
consumers, serverless workers, Ripple agents) registers its counters
here instead of keeping bare ``self.events_reported += 1`` instance
attributes.  One registry is shared across a supervision tree, so
pipeline-wide statistics — ``LustreMonitor.stats()``, the aggregator's
``{'op': 'stats'}`` API answer, operator dashboards — are *derived*
from the registry rather than hand-scraped from component attributes.

Four metric kinds:

* :class:`Counter` — a monotone, thread-safe count (events stored,
  batches received, crashes observed).
* :class:`Gauge` — a settable instantaneous value (queue depth).
* callback gauges (:meth:`MetricsRegistry.gauge_fn`) — values computed
  on read from existing state (store length, cache hit counts), which
  lets components expose derived numbers without double bookkeeping.
* :class:`Histogram` — a thread-safe latency distribution (wrapping
  :class:`~repro.metrics.histogram.LatencyHistogram`); ``snapshot()``
  flattens each histogram into ``<name>.count/mean/max/p50/p95/p99``
  so stage-latency percentiles travel with every stats answer.

Metric names are dotted: ``<scope>.<metric>``, where the scope is the
owning service's unique name within the registry (see
:meth:`MetricsRegistry.unique_scope`).  :meth:`render_prometheus`
renders everything in the Prometheus text exposition format for
operator tooling: series are grouped into families (one ``# HELP`` /
``# TYPE`` header pair per family), and series owned by a *registered*
service scope render the scope as a ``scope="..."`` label on a shared
family instead of a name-mangled prefix — so ``shard0.inbound_depth``
and ``shard1.inbound_depth`` become two samples of one
``repro_inbound_depth`` family that dashboards can aggregate across.

Callback gauges are **guarded** everywhere they are read: a raising
``gauge_fn`` is skipped (and counted in ``gauge_fn_errors``) rather
than aborting a whole snapshot or scrape — one bad probe must never
blind the exposition.

:meth:`export_state` / :meth:`RelayedHistogram` are the cross-process
half: a child process exports its registry as plain primitives
(histogram bucket counts included) and the parent merges them back in
(:mod:`repro.telemetry.relay`), so one scrape of the parent covers
series that live in shard child processes.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterator, Optional, Union

from repro.metrics.histogram import LatencyHistogram

#: Registry counter incremented whenever a callback gauge raises during
#: a snapshot or exposition render (the series is skipped instead).
GAUGE_FN_ERRORS = "gauge_fn_errors"


class Counter:
    """A thread-safe monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up: {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A thread-safe instantaneous value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Union[int, float] = 0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """A thread-safe latency-distribution metric.

    Wraps a :class:`~repro.metrics.histogram.LatencyHistogram` (which
    owns the lock), exposing the same read API — ``total``, ``mean``,
    ``max_seen``, ``percentile()`` — plus :meth:`summary` for
    snapshots, so code written against the bare histogram (the
    consumer's ``track_latency``) migrates without call-site changes.
    """

    __slots__ = ("name", "_hist")

    def __init__(
        self, name: str, min_latency: float = 1e-6, buckets: int = 40
    ) -> None:
        self.name = name
        self._hist = LatencyHistogram(min_latency=min_latency, buckets=buckets)

    def record(self, value: float, count: int = 1) -> None:
        """Add *count* observations of *value* (one lock acquisition)."""
        self._hist.record(value, count)

    # -- read API (delegated) -----------------------------------------------

    @property
    def total(self) -> int:
        return self._hist.total

    @property
    def sum(self) -> float:
        return self._hist.sum

    @property
    def mean(self) -> float:
        return self._hist.mean

    @property
    def max_seen(self) -> float:
        return self._hist.max_seen

    @property
    def min_seen(self) -> Optional[float]:
        return self._hist.min_seen

    @property
    def lock_acquisitions(self) -> int:
        """Op counter: how often :meth:`record` took the histogram lock."""
        return self._hist.lock_acquisitions

    def percentile(self, fraction: float) -> float:
        return self._hist.percentile(fraction)

    def counts(self) -> list[int]:
        return self._hist.counts()

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        return self._hist.bucket_bounds(index)

    def summary(self) -> dict[str, float]:
        """Consistent ``count/mean/max/p50/p95/p99`` summary."""
        return self._hist.summary()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self._hist.total})"

    def export_state(self) -> dict:
        """The histogram as plain primitives (for cross-process relay)."""
        hist = self._hist
        with hist._lock:
            return {
                "counts": list(hist._counts),
                "sum": hist.sum,
                "total": hist.total,
                "max": hist.max_seen,
                "min_latency": hist.min_latency,
            }


class RelayedHistogram:
    """A histogram whose state is *installed* rather than recorded.

    The cross-process metrics relay ships histogram bucket counts from
    a shard child's registry to the parent; the parent needs an object
    with the :class:`Histogram` read API (``counts``/``bucket_bounds``/
    ``sum``/``total``/``summary``) that it can overwrite wholesale on
    every relay tick.  It lives in the registry's histogram map, so
    snapshots and the Prometheus exposition render it exactly like a
    locally recorded histogram — cumulative ``_bucket`` series and all.
    """

    __slots__ = ("name", "_lock", "_counts", "_sum", "_total", "_max",
                 "_min_latency")

    def __init__(self, name: str, min_latency: float = 1e-6,
                 buckets: int = 40) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._counts = [0] * buckets
        self._sum = 0.0
        self._total = 0
        self._max = 0.0
        self._min_latency = min_latency

    def set_state(
        self,
        counts: list[int],
        total_sum: float,
        total: int,
        max_seen: float,
        min_latency: float = 1e-6,
    ) -> None:
        """Replace the whole distribution (one relay tick)."""
        with self._lock:
            self._counts = list(counts)
            self._sum = total_sum
            self._total = total
            self._max = max_seen
            self._min_latency = min_latency

    # -- Histogram read API --------------------------------------------------

    @property
    def total(self) -> int:
        return self._total

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def max_seen(self) -> float:
        return self._max

    def counts(self) -> list[int]:
        with self._lock:
            return list(self._counts)

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        if index == 0:
            return (0.0, self._min_latency)
        low = self._min_latency * 2 ** (index - 1)
        return (low, low * 2)

    def summary(self) -> dict[str, float]:
        with self._lock:
            counts = list(self._counts)
            total = self._total
            total_sum = self._sum
            max_seen = self._max
        if total == 0:
            return {
                "count": 0, "mean": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }

        def pct(fraction: float) -> float:
            threshold = fraction * total
            cumulative = 0
            for index, count in enumerate(counts):
                cumulative += count
                if cumulative >= threshold:
                    return self.bucket_bounds(index)[1]
            return max_seen

        return {
            "count": total,
            "mean": total_sum / total,
            "max": max_seen,
            "p50": pct(0.50),
            "p95": pct(0.95),
            "p99": pct(0.99),
        }

    def export_state(self) -> dict:
        with self._lock:
            return {
                "counts": list(self._counts),
                "sum": self._sum,
                "total": self._total,
                "max": self._max,
                "min_latency": self._min_latency,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RelayedHistogram({self.name}, n={self._total})"


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges and histograms.

    Thread-safe; shared by every service of one supervision tree so a
    single :meth:`snapshot` captures the whole pipeline.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._gauge_fns: Dict[str, Callable[[], Union[int, float]]] = {}
        self._histograms: Dict[str, Union[Histogram, RelayedHistogram]] = {}
        self._scopes: Dict[str, int] = {}
        #: Concrete scope strings handed out by :meth:`unique_scope` —
        #: the exposition renders these as ``scope="..."`` labels.
        self._reserved_scopes: set[str] = set()
        #: One-line help texts per dotted metric name (optional).
        self._help: Dict[str, str] = {}

    # -- registration -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Return the counter *name*, creating it on first use."""
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        """Return the gauge *name*, creating it on first use."""
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def gauge_fn(self, name: str, fn: Callable[[], Union[int, float]]) -> None:
        """Register a gauge whose value is computed by *fn* on read."""
        with self._lock:
            self._gauge_fns[name] = fn

    def histogram(
        self, name: str, min_latency: float = 1e-6, buckets: int = 40
    ) -> Histogram:
        """Return the histogram *name*, creating it on first use."""
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(
                    name, min_latency=min_latency, buckets=buckets
                )
            return metric

    def relayed_histogram(
        self, name: str, min_latency: float = 1e-6, buckets: int = 40
    ) -> RelayedHistogram:
        """Return the relayed (externally set) histogram *name*.

        Raises :class:`TypeError` when *name* already exists as a
        locally recorded :class:`Histogram` — the two kinds must never
        alias one series.
        """
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = RelayedHistogram(
                    name, min_latency=min_latency, buckets=buckets
                )
            if not isinstance(metric, RelayedHistogram):
                raise TypeError(
                    f"{name!r} is a locally recorded histogram; it cannot "
                    f"be overwritten by a relay"
                )
            return metric

    def histograms(self) -> Dict[str, Union[Histogram, RelayedHistogram]]:
        """A point-in-time copy of the registered histograms by name."""
        with self._lock:
            return dict(self._histograms)

    def unique_scope(self, base: str) -> str:
        """Reserve a unique scope name derived from *base*.

        The first caller gets ``base`` itself, later callers get
        ``base#2``, ``base#3``, … — so two consumers both named
        ``"consumer"`` never share counters.
        """
        with self._lock:
            count = self._scopes.get(base, 0) + 1
            self._scopes[base] = count
            scope = base if count == 1 else f"{base}#{count}"
            self._reserved_scopes.add(scope)
            return scope

    def describe(self, name: str, help_text: str) -> None:
        """Attach a one-line ``# HELP`` text to metric *name*.

        *name* is the dotted registry name (scope included); scoped
        series rendered under a shared family use the help text of
        whichever member described it first.
        """
        with self._lock:
            self._help[name] = help_text

    def contains(self, name: str) -> bool:
        """True when *name* is registered as any metric kind."""
        with self._lock:
            return (
                name in self._counters
                or name in self._gauges
                or name in self._gauge_fns
                or name in self._histograms
            )

    def unregister(self, name: str) -> bool:
        """Remove metric *name* of any kind (True when it existed).

        Used when a relayed series supersedes a local placeholder (and
        by tests); references handed out earlier keep working but are
        no longer rendered.
        """
        with self._lock:
            removed = False
            for table in (self._counters, self._gauges,
                          self._gauge_fns, self._histograms):
                if name in table:
                    del table[name]
                    removed = True
            return removed

    # -- reading ------------------------------------------------------------

    def _gauge_fn_failed(self, name: str, exc: Exception) -> None:
        """Account one raising callback gauge (the series is skipped)."""
        self.counter(GAUGE_FN_ERRORS).inc()

    def value(self, name: str, default: Union[int, float] = 0) -> Union[int, float]:
        """Current value of one metric (0/default when absent).

        A raising callback gauge yields *default* (and bumps
        ``gauge_fn_errors``) instead of propagating.
        """
        with self._lock:
            if name in self._counters:
                return self._counters[name].value
            if name in self._gauges:
                return self._gauges[name].value
            fn = self._gauge_fns.get(name)
        if fn is not None:
            try:
                return fn()
            except Exception as exc:
                self._gauge_fn_failed(name, exc)
        return default

    def names(self) -> list[str]:
        with self._lock:
            return sorted(
                set(self._counters)
                | set(self._gauges)
                | set(self._gauge_fns)
                | set(self._histograms)
            )

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, Union[int, float]]:
        """All metric values, optionally restricted to a dotted *prefix*.

        ``snapshot("collector.mds0")`` returns that scope's metrics with
        the prefix stripped (``{"events_reported": 3, ...}``);
        ``snapshot()`` returns everything fully qualified.
        """
        with self._lock:
            pairs: list[tuple[str, Union[int, float, Callable]]] = [
                *((name, c.value) for name, c in self._counters.items()),
                *((name, g.value) for name, g in self._gauges.items()),
                *(self._gauge_fns.items()),
            ]
            histograms = list(self._histograms.items())
        result: Dict[str, Union[int, float]] = {}
        for name, value in pairs:
            if prefix is not None:
                if not name.startswith(prefix + "."):
                    continue
                key = name[len(prefix) + 1:]
            else:
                key = name
            if callable(value):
                # Guarded: one raising probe skips its series only.
                try:
                    value = value()
                except Exception as exc:
                    self._gauge_fn_failed(name, exc)
                    continue
            result[key] = value
        # Histograms flatten into <name>.count/mean/max/p50/p95/p99, so
        # percentile visibility rides along with every stats answer.
        for name, histogram in histograms:
            if prefix is not None:
                if not name.startswith(prefix + "."):
                    continue
                key = name[len(prefix) + 1:]
            else:
                key = name
            for stat, value in histogram.summary().items():
                result[f"{key}.{stat}"] = value
        return result

    def scoped(self, scope: str) -> "ScopedRegistry":
        """A view that prefixes every metric name with ``scope.``."""
        return ScopedRegistry(self, scope)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    # -- cross-process export -------------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        """The whole registry as plain primitives (for the relay wire).

        Counters, gauges, and evaluated callback gauges ship as value
        maps; histograms ship their full bucket state so the parent's
        exposition can render real ``_bucket`` series for child-side
        distributions.  Callback gauges are guarded as everywhere else.
        """
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            gauge_fns = list(self._gauge_fns.items())
            histograms = list(self._histograms.items())
        state: Dict[str, Any] = {
            "counters": {name: c.value for name, c in counters},
            "gauges": {name: g.value for name, g in gauges},
            "gauge_fns": {},
            "histograms": {
                name: h.export_state() for name, h in histograms
            },
        }
        for name, fn in gauge_fns:
            try:
                state["gauge_fns"][name] = fn()
            except Exception as exc:
                self._gauge_fn_failed(name, exc)
        return state

    # -- exposition ----------------------------------------------------------

    def render_prometheus(self, namespace: str = "repro") -> str:
        """The registry in the Prometheus text exposition format.

        Dotted metric names are sanitised to the ``[a-zA-Z0-9_:]``
        alphabet (dots and ``#`` become underscores).  Series are
        grouped into metric families: one ``# HELP``/``# TYPE`` header
        pair per family, samples after their headers.  Series whose
        name starts with a scope reserved via :meth:`unique_scope`
        render the scope as a ``scope="..."`` label on a family named
        after the unscoped remainder — unless that would be ambiguous
        (the family already exists with a different metric kind, or two
        series would collapse onto identical label sets), in which case
        the series falls back to the historical name-mangled form.
        Histograms render the conventional cumulative
        ``_bucket{le="..."}`` series plus ``_sum`` and ``_count``;
        counters get ``_total`` appended per Prometheus convention.
        Raising callback gauges are skipped (counted in
        ``gauge_fn_errors``) so one bad probe cannot blind a scrape.
        """
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            gauge_fns = list(self._gauge_fns.items())
            histograms = list(self._histograms.items())
            scopes = sorted(self._reserved_scopes, key=len, reverse=True)
            help_texts = dict(self._help)

        def sanitize(name: str) -> str:
            cleaned = "".join(
                ch if (ch.isascii() and ch.isalnum()) or ch in "_:" else "_"
                for ch in name
            )
            if cleaned and cleaned[0].isdigit():
                cleaned = "_" + cleaned
            return f"{namespace}_{cleaned}" if namespace else cleaned

        def split_scope(name: str) -> tuple[Optional[str], str]:
            for scope in scopes:  # longest reserved scope wins
                if name.startswith(scope + ".") and len(name) > len(scope) + 1:
                    return scope, name[len(scope) + 1:]
            return None, name

        def escape_label(value: str) -> str:
            return (
                value.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
            )

        # One record per series: [raw name, kind, payload, family, labels].
        series: list[list] = []
        for name, counter in counters:
            series.append([name, "counter", counter.value, None, None])
        for name, gauge in gauges:
            series.append([name, "gauge", gauge.value, None, None])
        for name, fn in gauge_fns:
            try:
                value = fn()
            except Exception as exc:
                self._gauge_fn_failed(name, exc)
                continue
            series.append([name, "gauge", value, None, None])
        for name, histogram in histograms:
            series.append([name, "histogram", histogram, None, None])

        def assign(record: list, mangled: bool) -> None:
            name, kind = record[0], record[1]
            scope, rest = (None, name) if mangled else split_scope(name)
            family = sanitize(rest)
            if kind == "counter":
                family += "_total"
            record[3] = family
            record[4] = (
                f'scope="{escape_label(scope)}"' if scope else ""
            )

        for record in series:
            assign(record, mangled=False)

        def conflicts() -> set[str]:
            """Families that are ambiguous: mixed kinds, or identical
            (family, labels) pairs from different raw series."""
            kinds: Dict[str, set] = {}
            keys: Dict[tuple, int] = {}
            bad: set[str] = set()
            for _name, kind, _payload, family, labels in series:
                kinds.setdefault(family, set()).add(kind)
                keys[(family, labels)] = keys.get((family, labels), 0) + 1
            for family, family_kinds in kinds.items():
                if len(family_kinds) > 1:
                    bad.add(family)
            for (family, _labels), count in keys.items():
                if count > 1:
                    bad.add(family)
            return bad

        bad = conflicts()
        if bad:
            for record in series:
                if record[4] and record[3] in bad:
                    assign(record, mangled=True)
            # Pathological mangled collisions: drop later duplicates so
            # the exposition stays parseable.
            seen: set[tuple] = set()
            deduped = []
            for record in series:
                key = (record[3], record[4])
                if record[3] in conflicts() and key in seen:
                    continue
                seen.add(key)
                deduped.append(record)
            series = deduped

        families: Dict[str, list] = {}
        family_kind: Dict[str, str] = {}
        for record in series:
            families.setdefault(record[3], []).append(record)
            family_kind[record[3]] = record[1]

        lines: list[str] = []
        for family in sorted(families):
            members = families[family]
            kind = family_kind[family]
            help_text = next(
                (help_texts[m[0]] for m in members if m[0] in help_texts),
                None,
            )
            if help_text is None:
                base = split_scope(members[0][0])[1] if members[0][4] else (
                    members[0][0]
                )
                help_text = f"{kind} {base}"
            lines.append(f"# HELP {family} {escape_label(help_text)}")
            lines.append(f"# TYPE {family} {kind}")
            for name, _kind, payload, _family, label in members:
                if kind == "histogram":
                    suffix = f",{label}" if label else ""
                    cumulative = 0
                    for index, count in enumerate(payload.counts()):
                        cumulative += count
                        bound = payload.bucket_bounds(index)[1]
                        lines.append(
                            f'{family}_bucket{{le="{bound:.9g}"{suffix}}} '
                            f"{cumulative}"
                        )
                    lines.append(
                        f'{family}_bucket{{le="+Inf"{suffix}}} {cumulative}'
                    )
                    wrap = f"{{{label}}}" if label else ""
                    lines.append(f"{family}_sum{wrap} {payload.sum:.9g}")
                    lines.append(f"{family}_count{wrap} {payload.total}")
                else:
                    wrap = f"{{{label}}}" if label else ""
                    lines.append(f"{family}{wrap} {payload}")
        return "\n".join(lines) + "\n"


class ScopedRegistry:
    """A namespaced view over a :class:`MetricsRegistry`."""

    def __init__(self, registry: MetricsRegistry, scope: str) -> None:
        self.registry = registry
        self.scope = scope

    def _qualify(self, name: str) -> str:
        return f"{self.scope}.{name}"

    def counter(self, name: str) -> Counter:
        return self.registry.counter(self._qualify(name))

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(self._qualify(name))

    def gauge_fn(self, name: str, fn: Callable[[], Union[int, float]]) -> None:
        self.registry.gauge_fn(self._qualify(name), fn)

    def histogram(
        self, name: str, min_latency: float = 1e-6, buckets: int = 40
    ) -> Histogram:
        return self.registry.histogram(
            self._qualify(name), min_latency=min_latency, buckets=buckets
        )

    def describe(self, name: str, help_text: str) -> None:
        self.registry.describe(self._qualify(name), help_text)

    def value(self, name: str, default: Union[int, float] = 0) -> Union[int, float]:
        return self.registry.value(self._qualify(name), default)

    def snapshot(self) -> Dict[str, Union[int, float]]:
        return self.registry.snapshot(self.scope)
