"""A shared metrics registry: named counters, gauges and histograms.

Every long-running service in the pipeline (collectors, aggregator,
consumers, serverless workers, Ripple agents) registers its counters
here instead of keeping bare ``self.events_reported += 1`` instance
attributes.  One registry is shared across a supervision tree, so
pipeline-wide statistics — ``LustreMonitor.stats()``, the aggregator's
``{'op': 'stats'}`` API answer, operator dashboards — are *derived*
from the registry rather than hand-scraped from component attributes.

Four metric kinds:

* :class:`Counter` — a monotone, thread-safe count (events stored,
  batches received, crashes observed).
* :class:`Gauge` — a settable instantaneous value (queue depth).
* callback gauges (:meth:`MetricsRegistry.gauge_fn`) — values computed
  on read from existing state (store length, cache hit counts), which
  lets components expose derived numbers without double bookkeeping.
* :class:`Histogram` — a thread-safe latency distribution (wrapping
  :class:`~repro.metrics.histogram.LatencyHistogram`); ``snapshot()``
  flattens each histogram into ``<name>.count/mean/max/p50/p95/p99``
  so stage-latency percentiles travel with every stats answer.

Metric names are dotted: ``<scope>.<metric>``, where the scope is the
owning service's unique name within the registry (see
:meth:`MetricsRegistry.unique_scope`).  :meth:`render_prometheus`
renders everything in the Prometheus text exposition format for
operator tooling.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterator, Optional, Union

from repro.metrics.histogram import LatencyHistogram


class Counter:
    """A thread-safe monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up: {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A thread-safe instantaneous value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Union[int, float] = 0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> Union[int, float]:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """A thread-safe latency-distribution metric.

    Wraps a :class:`~repro.metrics.histogram.LatencyHistogram` (which
    owns the lock), exposing the same read API — ``total``, ``mean``,
    ``max_seen``, ``percentile()`` — plus :meth:`summary` for
    snapshots, so code written against the bare histogram (the
    consumer's ``track_latency``) migrates without call-site changes.
    """

    __slots__ = ("name", "_hist")

    def __init__(
        self, name: str, min_latency: float = 1e-6, buckets: int = 40
    ) -> None:
        self.name = name
        self._hist = LatencyHistogram(min_latency=min_latency, buckets=buckets)

    def record(self, value: float, count: int = 1) -> None:
        """Add *count* observations of *value* (one lock acquisition)."""
        self._hist.record(value, count)

    # -- read API (delegated) -----------------------------------------------

    @property
    def total(self) -> int:
        return self._hist.total

    @property
    def sum(self) -> float:
        return self._hist.sum

    @property
    def mean(self) -> float:
        return self._hist.mean

    @property
    def max_seen(self) -> float:
        return self._hist.max_seen

    @property
    def min_seen(self) -> Optional[float]:
        return self._hist.min_seen

    @property
    def lock_acquisitions(self) -> int:
        """Op counter: how often :meth:`record` took the histogram lock."""
        return self._hist.lock_acquisitions

    def percentile(self, fraction: float) -> float:
        return self._hist.percentile(fraction)

    def counts(self) -> list[int]:
        return self._hist.counts()

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        return self._hist.bucket_bounds(index)

    def summary(self) -> dict[str, float]:
        """Consistent ``count/mean/max/p50/p95/p99`` summary."""
        return self._hist.summary()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self._hist.total})"


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges and histograms.

    Thread-safe; shared by every service of one supervision tree so a
    single :meth:`snapshot` captures the whole pipeline.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._gauge_fns: Dict[str, Callable[[], Union[int, float]]] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._scopes: Dict[str, int] = {}

    # -- registration -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Return the counter *name*, creating it on first use."""
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        """Return the gauge *name*, creating it on first use."""
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def gauge_fn(self, name: str, fn: Callable[[], Union[int, float]]) -> None:
        """Register a gauge whose value is computed by *fn* on read."""
        with self._lock:
            self._gauge_fns[name] = fn

    def histogram(
        self, name: str, min_latency: float = 1e-6, buckets: int = 40
    ) -> Histogram:
        """Return the histogram *name*, creating it on first use."""
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(
                    name, min_latency=min_latency, buckets=buckets
                )
            return metric

    def histograms(self) -> Dict[str, Histogram]:
        """A point-in-time copy of the registered histograms by name."""
        with self._lock:
            return dict(self._histograms)

    def unique_scope(self, base: str) -> str:
        """Reserve a unique scope name derived from *base*.

        The first caller gets ``base`` itself, later callers get
        ``base#2``, ``base#3``, … — so two consumers both named
        ``"consumer"`` never share counters.
        """
        with self._lock:
            count = self._scopes.get(base, 0) + 1
            self._scopes[base] = count
            return base if count == 1 else f"{base}#{count}"

    # -- reading ------------------------------------------------------------

    def value(self, name: str, default: Union[int, float] = 0) -> Union[int, float]:
        """Current value of one metric (0/default when absent)."""
        with self._lock:
            if name in self._counters:
                return self._counters[name].value
            if name in self._gauges:
                return self._gauges[name].value
            fn = self._gauge_fns.get(name)
        if fn is not None:
            return fn()
        return default

    def names(self) -> list[str]:
        with self._lock:
            return sorted(
                set(self._counters)
                | set(self._gauges)
                | set(self._gauge_fns)
                | set(self._histograms)
            )

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, Union[int, float]]:
        """All metric values, optionally restricted to a dotted *prefix*.

        ``snapshot("collector.mds0")`` returns that scope's metrics with
        the prefix stripped (``{"events_reported": 3, ...}``);
        ``snapshot()`` returns everything fully qualified.
        """
        with self._lock:
            pairs: list[tuple[str, Union[int, float, Callable]]] = [
                *((name, c.value) for name, c in self._counters.items()),
                *((name, g.value) for name, g in self._gauges.items()),
                *(self._gauge_fns.items()),
            ]
            histograms = list(self._histograms.items())
        result: Dict[str, Union[int, float]] = {}
        for name, value in pairs:
            if prefix is not None:
                if not name.startswith(prefix + "."):
                    continue
                key = name[len(prefix) + 1:]
            else:
                key = name
            result[key] = value() if callable(value) else value
        # Histograms flatten into <name>.count/mean/max/p50/p95/p99, so
        # percentile visibility rides along with every stats answer.
        for name, histogram in histograms:
            if prefix is not None:
                if not name.startswith(prefix + "."):
                    continue
                key = name[len(prefix) + 1:]
            else:
                key = name
            for stat, value in histogram.summary().items():
                result[f"{key}.{stat}"] = value
        return result

    def scoped(self, scope: str) -> "ScopedRegistry":
        """A view that prefixes every metric name with ``scope.``."""
        return ScopedRegistry(self, scope)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    # -- exposition ----------------------------------------------------------

    def render_prometheus(self, namespace: str = "repro") -> str:
        """The registry in the Prometheus text exposition format.

        Dotted metric names are sanitised to the ``[a-zA-Z0-9_:]``
        alphabet (dots and ``#`` become underscores).  Histograms render
        the conventional cumulative ``_bucket{le="..."}`` series plus
        ``_sum`` and ``_count``; counters get ``_total`` appended per
        Prometheus naming convention.
        """
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            gauge_fns = list(self._gauge_fns.items())
            histograms = list(self._histograms.items())
        lines: list[str] = []

        def sanitize(name: str) -> str:
            cleaned = "".join(
                ch if (ch.isascii() and ch.isalnum()) or ch in "_:" else "_"
                for ch in name
            )
            if cleaned and cleaned[0].isdigit():
                cleaned = "_" + cleaned
            return f"{namespace}_{cleaned}" if namespace else cleaned

        for name, counter in counters:
            metric = sanitize(name) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {counter.value}")
        for name, gauge in gauges:
            metric = sanitize(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {gauge.value}")
        for name, fn in gauge_fns:
            metric = sanitize(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {fn()}")
        for name, histogram in histograms:
            metric = sanitize(name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for index, count in enumerate(histogram.counts()):
                cumulative += count
                bound = histogram.bucket_bounds(index)[1]
                lines.append(
                    f'{metric}_bucket{{le="{bound:.9g}"}} {cumulative}'
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {histogram.sum:.9g}")
            lines.append(f"{metric}_count {histogram.total}")
        return "\n".join(lines) + "\n"


class ScopedRegistry:
    """A namespaced view over a :class:`MetricsRegistry`."""

    def __init__(self, registry: MetricsRegistry, scope: str) -> None:
        self.registry = registry
        self.scope = scope

    def _qualify(self, name: str) -> str:
        return f"{self.scope}.{name}"

    def counter(self, name: str) -> Counter:
        return self.registry.counter(self._qualify(name))

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(self._qualify(name))

    def gauge_fn(self, name: str, fn: Callable[[], Union[int, float]]) -> None:
        self.registry.gauge_fn(self._qualify(name), fn)

    def histogram(
        self, name: str, min_latency: float = 1e-6, buckets: int = 40
    ) -> Histogram:
        return self.registry.histogram(
            self._qualify(name), min_latency=min_latency, buckets=buckets
        )

    def value(self, name: str, default: Union[int, float] = 0) -> Union[int, float]:
        return self.registry.value(self._qualify(name), default)

    def snapshot(self) -> Dict[str, Union[int, float]]:
        return self.registry.snapshot(self.scope)
