"""Adaptive flush control: tune batching from the pipeline's own signals.

PR 3 gave every stage a latency histogram (``pipeline.aggregate``,
``pipeline.publish``) and this PR gave every socket an observable
occupancy (queue depth against its high-water mark).  This module
closes the loop: an :class:`AdaptiveFlushController` periodically reads
those signals and retunes each shard's **flush batch size** — the
``batch_events`` ceiling on one published :class:`EventBatch` — and,
where the target supports it, the pump's idle interval:

* **Inbound pressure** (occupancy above ``pressure_ratio``) means the
  shard is falling behind: grow the batch ceiling so each pump
  amortises fabric work over more events, and pump more eagerly.
* **Pressure gone but publish latency high** (occupancy under
  ``relax_ratio`` while the ``publish`` stage p95 exceeds
  ``target_publish_p95``) means batches are oversized for the load:
  shrink the ceiling back toward the configured baseline so subscriber
  latency recovers.

Targets are duck-typed: anything exposing ``occupancy() -> (depth,
capacity)`` and a writable ``flush_batch_events`` qualifies — the
in-process :class:`~repro.core.aggregator.Aggregator` and the multiproc
:class:`~repro.msgq.multiproc.ProcessShardBridge` (which relays the
knob to its child over a ``tune`` frame) both do.  Growth is bounded by
``max_batch_events`` and shrink by ``min_batch_events``; a target whose
configured ceiling is 0 (unbounded) is treated as ``max_batch_events``
so growth is a no-op and shrink still engages.

Run it as a periodic service (``controller.start()``) or drive
:meth:`AdaptiveFlushController.tick` deterministically from a cluster
pump — the cluster monitor does the latter when ``autotune`` is on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.metrics.registry import MetricsRegistry
from repro.metrics.tracing import TRACE_SCOPE
from repro.runtime.service import Service, WorkerSpec


@dataclass(frozen=True)
class FlushTuning:
    """Bounds and thresholds for the adaptive flush controller."""

    #: Smallest batch ceiling the controller will shrink to.
    min_batch_events: int = 64
    #: Largest batch ceiling the controller will grow to.
    max_batch_events: int = 8192
    #: Multiplier applied when growing under pressure.
    grow_factor: float = 2.0
    #: Multiplier applied when shrinking after pressure clears.
    shrink_factor: float = 0.5
    #: Inbound occupancy (depth/hwm) at which a shard counts as
    #: pressured and its batch ceiling grows.
    pressure_ratio: float = 0.5
    #: Occupancy below which the shard counts as relaxed; shrink only
    #: happens here (never while the queue is still filling).
    relax_ratio: float = 0.05
    #: Publish-stage p95 (seconds) above which a relaxed shard's
    #: ceiling shrinks — latency is paid without pressure to justify it.
    target_publish_p95: float = 0.05
    #: Pump idle interval applied to pressured / relaxed shards when
    #: the target exposes ``flush_interval`` (the inproc Aggregator).
    pressured_interval: float = 0.0005
    relaxed_interval: float = 0.002

    def __post_init__(self) -> None:
        if self.min_batch_events < 1:
            raise ValueError(
                f"min_batch_events must be >= 1: {self.min_batch_events}"
            )
        if self.max_batch_events < self.min_batch_events:
            raise ValueError(
                "max_batch_events must be >= min_batch_events: "
                f"{self.max_batch_events} < {self.min_batch_events}"
            )
        if not 0.0 <= self.relax_ratio <= self.pressure_ratio <= 1.0:
            raise ValueError(
                "need 0 <= relax_ratio <= pressure_ratio <= 1: "
                f"{self.relax_ratio}, {self.pressure_ratio}"
            )
        if self.grow_factor <= 1.0:
            raise ValueError(f"grow_factor must be > 1: {self.grow_factor}")
        if not 0.0 < self.shrink_factor < 1.0:
            raise ValueError(
                f"shrink_factor must be in (0, 1): {self.shrink_factor}"
            )


class AdaptiveFlushController(Service):
    """Periodic controller retuning flush batching per shard."""

    def __init__(
        self,
        registry: MetricsRegistry,
        targets: Dict[str, Any],
        tuning: Optional[FlushTuning] = None,
        interval: float = 0.25,
        name: str = "flush-controller",
    ) -> None:
        super().__init__(name, registry)
        self._registry = registry
        self.targets = dict(targets)
        self.tuning = tuning or FlushTuning()
        self.interval = interval
        self._adjustments = self.metrics.counter("adjustments")
        for label, target in self.targets.items():
            self.metrics.gauge_fn(
                f"{label}.batch_events",
                lambda t=target: t.flush_batch_events,
            )
            self.metrics.gauge_fn(
                f"{label}.occupancy_ratio",
                lambda t=target: round(self._ratio(t), 4),
            )

    @staticmethod
    def _ratio(target: Any) -> float:
        depth, capacity = target.occupancy()
        return depth / capacity if capacity else 0.0

    def _publish_p95(self) -> float:
        histogram = self._registry.histograms().get(f"{TRACE_SCOPE}.publish")
        if histogram is None or histogram.total == 0:
            return 0.0
        return histogram.percentile(0.95)

    def tick(self) -> int:
        """One control step; returns the number of targets retuned."""
        tuning = self.tuning
        publish_p95 = self._publish_p95()
        adjusted = 0
        for target in self.targets.values():
            ratio = self._ratio(target)
            current = target.flush_batch_events
            # 0 means "unbounded" — for control purposes that is
            # already the maximum, so growth is a no-op and the first
            # shrink lands at max * shrink_factor.
            effective = current or tuning.max_batch_events
            new = current
            if ratio >= tuning.pressure_ratio:
                new = min(
                    tuning.max_batch_events,
                    int(effective * tuning.grow_factor),
                )
                self._set_interval(target, tuning.pressured_interval)
            elif (
                ratio <= tuning.relax_ratio
                and publish_p95 > tuning.target_publish_p95
            ):
                new = max(
                    tuning.min_batch_events,
                    int(effective * tuning.shrink_factor),
                )
                self._set_interval(target, tuning.relaxed_interval)
            if new != current:
                target.flush_batch_events = new
                self._adjustments.inc()
                adjusted += 1
        return adjusted

    @staticmethod
    def _set_interval(target: Any, value: float) -> None:
        if hasattr(type(target), "flush_interval"):
            target.flush_interval = value

    def worker_specs(self) -> list[WorkerSpec]:
        return [WorkerSpec("tick", self.tick, interval=self.interval)]
