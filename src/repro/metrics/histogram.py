"""A simple log-bucketed latency histogram."""

from __future__ import annotations

import math
import threading
from typing import Optional


class LatencyHistogram:
    """Log2-bucketed histogram of latencies (seconds).

    Buckets span from *min_latency* upward, doubling each bucket, which
    gives constant relative precision over many orders of magnitude —
    suitable for event pipeline latencies ranging from microseconds to
    seconds.

    :meth:`record` is thread-safe: observations from concurrent
    recorders (e.g. a live consumer's poll worker and a catch-up call)
    are never lost.  The ``lock_acquisitions`` operation counter makes
    the locking cost observable, so benchmarks can assert that a
    disabled tracing path performs no histogram work at all.
    """

    def __init__(self, min_latency: float = 1e-6, buckets: int = 40) -> None:
        if min_latency <= 0:
            raise ValueError(f"min_latency must be positive: {min_latency}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1: {buckets}")
        self.min_latency = min_latency
        self.bucket_count = buckets
        self._lock = threading.Lock()
        self._counts = [0] * buckets
        self.total = 0
        self.sum = 0.0
        self.max_seen = 0.0
        self.min_seen: Optional[float] = None
        #: How many times :meth:`record` took the lock (op counter).
        self.lock_acquisitions = 0

    def _bucket_for(self, latency: float) -> int:
        if latency <= self.min_latency:
            return 0
        index = int(math.log2(latency / self.min_latency)) + 1
        return min(index, self.bucket_count - 1)

    def record(self, latency: float, count: int = 1) -> None:
        """Add *count* observations of *latency* under one lock.

        The weighted form is what batch tracing uses: one lock
        acquisition per pipeline batch instead of one per event.
        """
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        if count < 1:
            raise ValueError(f"count must be >= 1: {count}")
        bucket = self._bucket_for(latency)
        with self._lock:
            self.lock_acquisitions += 1
            self._counts[bucket] += count
            self.total += count
            self.sum += latency * count
            if latency > self.max_seen:
                self.max_seen = latency
            if self.min_seen is None or latency < self.min_seen:
                self.min_seen = latency

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations."""
        return self.sum / self.total if self.total else 0.0

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        """(low, high) latency bounds of bucket *index*."""
        if index == 0:
            return (0.0, self.min_latency)
        low = self.min_latency * 2 ** (index - 1)
        return (low, low * 2)

    def percentile(self, fraction: float) -> float:
        """Approximate percentile (upper bound of the containing bucket)."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1]: {fraction}")
        if self.total == 0:
            return 0.0
        threshold = fraction * self.total
        cumulative = 0
        for index, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= threshold:
                return self.bucket_bounds(index)[1]
        return self.max_seen

    def counts(self) -> list[int]:
        """A copy of the raw bucket counts."""
        with self._lock:
            return list(self._counts)

    def summary(self) -> dict[str, float]:
        """A consistent p50/p95/p99/mean/max/count summary.

        The whole summary is derived from one atomic copy of the state,
        so its numbers are mutually consistent even while recorders run.
        """
        with self._lock:
            counts = list(self._counts)
            total = self.total
            total_sum = self.sum
            max_seen = self.max_seen
        if total == 0:
            return {
                "count": 0, "mean": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }

        def pct(fraction: float) -> float:
            threshold = fraction * total
            cumulative = 0
            for index, count in enumerate(counts):
                cumulative += count
                if cumulative >= threshold:
                    return self.bucket_bounds(index)[1]
            return max_seen

        return {
            "count": total,
            "mean": total_sum / total,
            "max": max_seen,
            "p50": pct(0.50),
            "p95": pct(0.95),
            "p99": pct(0.99),
        }
