"""A simple log-bucketed latency histogram."""

from __future__ import annotations

import math
from typing import Optional


class LatencyHistogram:
    """Log2-bucketed histogram of latencies (seconds).

    Buckets span from *min_latency* upward, doubling each bucket, which
    gives constant relative precision over many orders of magnitude —
    suitable for event pipeline latencies ranging from microseconds to
    seconds.
    """

    def __init__(self, min_latency: float = 1e-6, buckets: int = 40) -> None:
        if min_latency <= 0:
            raise ValueError(f"min_latency must be positive: {min_latency}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1: {buckets}")
        self.min_latency = min_latency
        self.bucket_count = buckets
        self._counts = [0] * buckets
        self.total = 0
        self.sum = 0.0
        self.max_seen = 0.0
        self.min_seen: Optional[float] = None

    def _bucket_for(self, latency: float) -> int:
        if latency <= self.min_latency:
            return 0
        index = int(math.log2(latency / self.min_latency)) + 1
        return min(index, self.bucket_count - 1)

    def record(self, latency: float) -> None:
        """Add one observation."""
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        self._counts[self._bucket_for(latency)] += 1
        self.total += 1
        self.sum += latency
        self.max_seen = max(self.max_seen, latency)
        self.min_seen = latency if self.min_seen is None else min(self.min_seen, latency)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations."""
        return self.sum / self.total if self.total else 0.0

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        """(low, high) latency bounds of bucket *index*."""
        if index == 0:
            return (0.0, self.min_latency)
        low = self.min_latency * 2 ** (index - 1)
        return (low, low * 2)

    def percentile(self, fraction: float) -> float:
        """Approximate percentile (upper bound of the containing bucket)."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1]: {fraction}")
        if self.total == 0:
            return 0.0
        threshold = fraction * self.total
        cumulative = 0
        for index, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= threshold:
                return self.bucket_bounds(index)[1]
        return self.max_seen

    def counts(self) -> list[int]:
        """A copy of the raw bucket counts."""
        return list(self._counts)
