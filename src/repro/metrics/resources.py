"""Resource utilisation accounting for monitor components (Table 3).

The paper instrumented its throughput runs with CPU and memory counters
and reported *peak* utilisation per component.  In our model, CPU cost
is accrued per unit of work (events handled × calibrated CPU-seconds per
event) and memory from a base footprint plus state that grows with the
stored/buffered event count — which reproduces the paper's observation
that the Aggregator's memory "is due to the use of a local store that
records a list of every event captured".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

MB = 1024 * 1024


@dataclass(frozen=True)
class ResourceSample:
    """One (component, cpu%, memory MB) observation."""

    component: str
    cpu_percent: float
    memory_mb: float


@dataclass(frozen=True)
class ComponentCostModel:
    """Calibrated per-component cost coefficients.

    cpu_seconds_per_event:
        CPU time consumed per event handled (busy CPU, not blocked I/O —
        the d2path wait is mostly not CPU, which is why the Collector's
        CPU stays modest while being the throughput bottleneck).
    base_memory_mb:
        Resident footprint before any events (interpreter + libraries).
    memory_bytes_per_event:
        State retained per event (store entries, buffers).
    retained_event_cap:
        Maximum events the component retains (the rotating store bound;
        None = unbounded growth over the run).
    """

    cpu_seconds_per_event: float
    base_memory_mb: float
    memory_bytes_per_event: float
    retained_event_cap: int | None = None


class ResourceUsageModel:
    """Tracks work and derives peak CPU% / memory MB per component."""

    def __init__(self, models: Dict[str, ComponentCostModel]) -> None:
        self.models = dict(models)
        self._events: Dict[str, int] = {name: 0 for name in models}
        self._busy: Dict[str, float] = {name: 0.0 for name in models}
        self._peak_cpu: Dict[str, float] = {name: 0.0 for name in models}
        self._window_events: Dict[str, int] = {name: 0 for name in models}

    def account(self, component: str, events: int) -> None:
        """Record *events* units of work for *component*."""
        if component not in self.models:
            raise KeyError(f"unknown component {component!r}")
        model = self.models[component]
        self._events[component] += events
        self._window_events[component] += events
        self._busy[component] += events * model.cpu_seconds_per_event

    def sample_window(self, component: str, window_seconds: float) -> float:
        """Close a sampling window: CPU% over the window, tracking peaks."""
        if window_seconds <= 0:
            raise ValueError(f"window must be positive: {window_seconds}")
        model = self.models[component]
        busy = self._window_events[component] * model.cpu_seconds_per_event
        self._window_events[component] = 0
        cpu_percent = 100.0 * busy / window_seconds
        self._peak_cpu[component] = max(self._peak_cpu[component], cpu_percent)
        return cpu_percent

    def memory_mb(self, component: str) -> float:
        """Current modelled resident memory for *component*."""
        model = self.models[component]
        retained = self._events[component]
        if model.retained_event_cap is not None:
            retained = min(retained, model.retained_event_cap)
        return model.base_memory_mb + retained * model.memory_bytes_per_event / MB

    def peak_sample(self, component: str) -> ResourceSample:
        """The component's peak CPU% and (monotone) memory."""
        return ResourceSample(
            component=component,
            cpu_percent=self._peak_cpu[component],
            memory_mb=self.memory_mb(component),
        )

    def cpu_percent_avg(self, component: str, elapsed: float) -> float:
        """Average CPU% over *elapsed* seconds of run."""
        if elapsed <= 0:
            return 0.0
        return 100.0 * self._busy[component] / elapsed

    def events_handled(self, component: str) -> int:
        return self._events[component]
