"""Pipeline-wide stage tracing: batch stamps → registry histograms.

The paper's headline results are latencies (capture → aggregation →
delivery; the Table 3 overhead and saturation figures), so the
reproduction needs per-stage latency visibility, the way Icicle exposes
per-stage monitoring latencies and MELT aggregates per-component
observations fleet-wide.  This module provides it without disturbing
the batched hot path:

* Every pipeline batch may carry **stage timestamps** — ``collected_ts``
  on the collector→aggregator wire (:class:`~repro.core.events.ReportBatch`)
  and ``collected_ts``/``aggregated_ts``/``published_ts`` on the PUB
  wire (:class:`~repro.core.events.EventBatch`).  Stamps are per batch,
  not per event, so tracing adds O(1) work per batch.
* A :class:`PipelineTracer` decides (by sample rate) which batches are
  stamped, and records stage-to-stage deltas into shared registry
  histograms named ``pipeline.<stage>``.  One histogram lock
  acquisition per stage per sampled batch.
* ``sample_rate=0.0`` returns the :data:`NULL_TRACER`, whose every
  method is a constant-return no-op: no histograms are registered, no
  clock is read, no locks are taken — the ingest micro-benchmarks
  assert this with operation counters.

Stages recorded by the live pipeline:

========== =====================================================
``collect``   ChangeLog record timestamp → collector report stamp
``aggregate`` collector report stamp → aggregator store stamp
``publish``   aggregator store stamp → PUB send stamp
``deliver``   PUB send stamp → consumer delivery stamp
``relay``     upstream PUB send stamp → relay re-ingest stamp
``action``    action request enqueue → agent execution complete
========== =====================================================

Clock domains: deltas between pipeline stamps use the tracer's clock
(the monitor passes its filesystem's clock so live wall-clock and
virtual ManualClock deployments both produce meaningful numbers).  The
``collect`` stage additionally spans the event's own ChangeLog
timestamp, so it is only meaningful when the filesystem and tracer
share a clock domain — the same caveat as ``Consumer.track_latency``.
"""

from __future__ import annotations

from itertools import count
from typing import Optional, Union

from repro.metrics.registry import Histogram, MetricsRegistry, ScopedRegistry
from repro.util.clock import Clock, WallClock

#: The stage names the live pipeline records, in flow order.
PIPELINE_STAGES = (
    "collect", "aggregate", "publish", "deliver", "relay", "action",
)

#: Registry namespace for pipeline stage histograms.
TRACE_SCOPE = "pipeline"


class PipelineTracer:
    """Samples pipeline batches and records stage latencies.

    One tracer is shared by every service of a monitor's supervision
    tree (they all see the same registry, so histograms converge on the
    same objects either way).  ``sample()`` is a cheap deterministic
    every-Nth decision derived from the sample rate — no RNG, no lock.
    """

    def __init__(
        self,
        registry: Union[MetricsRegistry, ScopedRegistry],
        sample_rate: float = 1.0,
        clock: Optional[Clock] = None,
        scope: str = TRACE_SCOPE,
    ) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in (0, 1] (use NULL_TRACER/make_tracer"
                f" for 0): {sample_rate}"
            )
        if isinstance(registry, ScopedRegistry):
            registry = registry.registry
        self.registry = registry
        self.sample_rate = sample_rate
        self.clock = clock or WallClock()
        self.scope = scope
        self._every = max(1, round(1.0 / sample_rate))
        self._ticket = count()  # itertools.count: atomic under CPython
        self._stage_histograms: dict[str, Histogram] = {}

    #: Real tracers trace; the NullTracer overrides this to False.
    enabled: bool = True

    def sample(self) -> bool:
        """Decide whether the current batch is traced (every Nth)."""
        return next(self._ticket) % self._every == 0

    def now(self) -> float:
        """A stage timestamp from the tracer's clock."""
        return self.clock.now()

    def record(self, stage: str, delta: float, count: int = 1) -> None:
        """Record a stage latency delta (clamped at zero).

        Negative deltas appear when stamps cross clock domains (e.g. a
        ManualClock filesystem feeding a wall-clock consumer); clamping
        keeps the histogram valid rather than crashing the pipeline.
        """
        histogram = self._stage_histograms.get(stage)
        if histogram is None:
            # Get-or-create races are benign: the registry returns one
            # canonical Histogram per name.
            histogram = self.registry.histogram(f"{self.scope}.{stage}")
            self._stage_histograms[stage] = histogram
        histogram.record(max(0.0, delta), count)

    def stage_summaries(self) -> dict[str, dict[str, float]]:
        """``{stage: {count, mean, max, p50, p95, p99}}`` for recorded stages."""
        prefix = self.scope + "."
        return {
            name[len(prefix):]: histogram.summary()
            for name, histogram in self.registry.histograms().items()
            if name.startswith(prefix)
        }


class NullTracer:
    """The disabled tracer: every operation is a constant-return no-op.

    ``sample()`` is always False, so stamping code never reads the
    clock, never allocates a stamped batch, and never touches a
    histogram — the sample-rate-0 hot path performs zero tracing work,
    which the micro-benchmarks assert via lock-acquisition counters.
    """

    enabled: bool = False

    def sample(self) -> bool:
        return False

    def now(self) -> float:  # pragma: no cover - never reached when gated
        return 0.0

    def record(self, stage: str, delta: float, count: int = 1) -> None:
        pass

    def stage_summaries(self) -> dict[str, dict[str, float]]:
        return {}


#: The process-wide disabled tracer (stateless, shareable).
NULL_TRACER = NullTracer()

Tracer = Union[PipelineTracer, NullTracer]


def make_tracer(
    registry: Union[MetricsRegistry, ScopedRegistry, None],
    sample_rate: float = 1.0,
    clock: Optional[Clock] = None,
    scope: str = TRACE_SCOPE,
) -> Tracer:
    """Build a tracer for *sample_rate* (0 → the shared no-op tracer)."""
    if sample_rate < 0.0 or sample_rate > 1.0:
        raise ValueError(f"sample_rate must be in [0, 1]: {sample_rate}")
    if sample_rate == 0.0 or registry is None:
        return NULL_TRACER
    return PipelineTracer(registry, sample_rate, clock=clock, scope=scope)
