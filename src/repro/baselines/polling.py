"""The polling/crawling baseline: snapshot the namespace and diff.

Ripple "explored an alternative approach using a polling technique to
detect file system changes.  However, crawling and recording file system
data is prohibitively expensive over large storage systems."  This
module implements that rejected approach so experiments can quantify
both costs (stat operations per poll grow with namespace size, not with
activity) and blindspots (files created *and* deleted between polls are
never seen; multiple modifications collapse into one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Union

from repro.core.events import EventType, FileEvent
from repro.fs.memfs import MemoryFilesystem
from repro.lustre.filesystem import LustreFilesystem
from repro.util.clock import Clock, WallClock

AnyFilesystem = Union[MemoryFilesystem, LustreFilesystem]


@dataclass(frozen=True)
class _Snapshot:
    """What one crawl saw: path -> (is_dir, mtime, size_or_ino)."""

    entries: Dict[str, tuple[bool, float, int]]
    stat_calls: int


@dataclass
class SnapshotDiff:
    """Events inferred from two consecutive snapshots, plus crawl cost."""

    events: list[FileEvent] = field(default_factory=list)
    created: int = 0
    deleted: int = 0
    modified: int = 0
    stat_calls: int = 0


class PollingMonitor:
    """Detect events by walking the tree and diffing against last poll."""

    def __init__(
        self,
        filesystem: AnyFilesystem,
        root: str = "/",
        clock: Clock | None = None,
    ) -> None:
        self.fs = filesystem
        self.root = root
        self.clock = clock or WallClock()
        self._previous: _Snapshot | None = None
        # Cumulative cost counters.
        self.total_stat_calls = 0
        self.total_polls = 0

    def _crawl(self) -> _Snapshot:
        entries: Dict[str, tuple[bool, float, int]] = {}
        stat_calls = 0
        for dirpath, dirnames, filenames in self.fs.walk(self.root):
            for name in dirnames:
                path = dirpath.rstrip("/") + "/" + name
                stat = self.fs.stat(path)
                stat_calls += 1
                entries[path] = (True, stat.mtime, 0)
            for name in filenames:
                path = dirpath.rstrip("/") + "/" + name
                stat = self.fs.stat(path)
                stat_calls += 1
                entries[path] = (False, stat.mtime, stat.size)
        return _Snapshot(entries, stat_calls)

    def poll(self) -> SnapshotDiff:
        """Crawl now and return the inferred events since the last poll.

        The first poll establishes the baseline and reports no events
        (everything already existed as far as the poller knows).
        """
        snapshot = self._crawl()
        self.total_polls += 1
        self.total_stat_calls += snapshot.stat_calls
        diff = SnapshotDiff(stat_calls=snapshot.stat_calls)
        now = self.clock.now()
        previous = self._previous
        self._previous = snapshot
        if previous is None:
            return diff
        for path, (is_dir, mtime, size) in snapshot.entries.items():
            old = previous.entries.get(path)
            if old is None:
                diff.created += 1
                diff.events.append(
                    FileEvent(
                        event_type=EventType.CREATED,
                        path=path,
                        is_dir=is_dir,
                        timestamp=now,
                        name=path.rsplit("/", 1)[-1],
                        source="polling",
                    )
                )
            elif not is_dir and (old[1] != mtime or old[2] != size):
                diff.modified += 1
                diff.events.append(
                    FileEvent(
                        event_type=EventType.MODIFIED,
                        path=path,
                        is_dir=False,
                        timestamp=now,
                        name=path.rsplit("/", 1)[-1],
                        source="polling",
                    )
                )
        for path, (is_dir, _mtime, _size) in previous.entries.items():
            if path not in snapshot.entries:
                diff.deleted += 1
                diff.events.append(
                    FileEvent(
                        event_type=EventType.DELETED,
                        path=path,
                        is_dir=is_dir,
                        timestamp=now,
                        name=path.rsplit("/", 1)[-1],
                        source="polling",
                    )
                )
        return diff
