"""Baseline event-detection approaches the paper compares against.

* :class:`RobinhoodCollector` — a Robinhood-style *centralized* policy
  engine: a single client sequentially extracts metadata from each MDS
  ChangeLog into a database, over which policy queries run (paper §2).
  Contrast with the monitor's distributed per-MDS collectors.
* :class:`PollingMonitor` — the crawl-and-diff approach Ripple explored
  and rejected: periodically walk the namespace, stat everything, and
  diff against the previous snapshot ("prohibitively expensive over
  large storage systems"; it also misses short-lived files, the same
  limitation §5.3 notes for dump differencing).
* :class:`InotifyMonitor` — the Watchdog-based agent detection from the
  original Ripple, with its crawl-to-place-watchers setup cost and
  per-watch kernel memory (unavailable on Lustre; included for the
  comparison experiments on local filesystems).
"""

from repro.baselines.robinhood import PolicyRun, RobinhoodCollector, RobinhoodPolicy
from repro.baselines.polling import PollingMonitor, SnapshotDiff
from repro.baselines.inotify_monitor import InotifyMonitor
from repro.baselines.irods_gateway import IngestGateway

__all__ = [
    "RobinhoodCollector",
    "RobinhoodPolicy",
    "PolicyRun",
    "PollingMonitor",
    "SnapshotDiff",
    "InotifyMonitor",
    "IngestGateway",
]
