"""A Robinhood-style centralized policy engine over Lustre ChangeLogs.

Robinhood (Leibovici, 2015) maintains a database of filesystem entries
fed by a **single client** that reads each MDS ChangeLog **sequentially**
and applies bulk policies (migrate/purge stale data, usage reports).
Two structural differences from the paper's monitor:

* collection is centralized — one reader drains MDT after MDT, so with
  N MDTs the per-MDT service rate is ~1/N of a dedicated collector's
  (the A3 ablation measures this);
* events feed a *database* for batch policy runs rather than being
  published to live subscribers.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.lustre.changelog import RecordType
from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.fid import Fid
from repro.lustre.fid2path import FidResolver
from repro.util.clock import Clock, WallClock


@dataclass
class EntryRow:
    """One row of the Robinhood entry database."""

    fid: str
    path: Optional[str]
    is_dir: bool
    last_event: str
    last_event_time: float
    size_events: int = 0


@dataclass(frozen=True)
class RobinhoodPolicy:
    """A bulk policy: act on entries matching age + name conditions.

    ``older_than`` compares against the entry's last event time (a stand-
    in for Robinhood's atime/mtime conditions, which our event-sourced
    database tracks as last activity).
    """

    name: str
    name_pattern: str = "*"
    older_than: float = 0.0
    action: Optional[Callable[[EntryRow], None]] = None


@dataclass
class PolicyRun:
    """Outcome of one policy sweep."""

    policy: str
    scanned: int
    matched: int
    acted: int


class RobinhoodCollector:
    """Centralized changelog reader + entry database + policy runner."""

    def __init__(
        self,
        filesystem: LustreFilesystem,
        clock: Clock | None = None,
        read_batch: int = 256,
    ) -> None:
        self.fs = filesystem
        self.clock = clock or WallClock()
        self.read_batch = read_batch
        self.resolver = FidResolver(filesystem)
        # One registered user per MDT, all drained by this single client.
        self._users: Dict[int, str] = {
            mdt.index: mdt.changelog.register_user()
            for mdt in filesystem.cluster.all_mdts()
        }
        self.database: Dict[str, EntryRow] = {}
        self.records_ingested = 0

    # -- collection (sequential, single reader) ----------------------------

    def scan_once(self) -> int:
        """One sequential pass over every MDT ChangeLog.

        Unlike the monitor's concurrent per-MDS collectors, this drains
        MDT 0 fully, then MDT 1, and so on — the centralized pattern.
        Returns records ingested.
        """
        ingested = 0
        for mdt in self.fs.cluster.all_mdts():
            user = self._users[mdt.index]
            while True:
                records = mdt.changelog.read(user, max_records=self.read_batch)
                if not records:
                    break
                for record in records:
                    self._apply(record)
                    ingested += 1
                mdt.changelog.clear(user, records[-1].index)
        self.records_ingested += ingested
        return ingested

    def _apply(self, record) -> None:
        fid_key = record.target_fid.short()
        if record.rec_type in (RecordType.UNLNK, RecordType.RMDIR):
            self.database.pop(fid_key, None)
            return
        try:
            path = self.resolver.resolve(record.target_fid)
        except Exception:
            path = None
        row = self.database.get(fid_key)
        if row is None:
            row = EntryRow(
                fid=fid_key,
                path=path,
                is_dir=record.rec_type is RecordType.MKDIR,
                last_event=record.rec_type.mnemonic,
                last_event_time=record.timestamp,
            )
            self.database[fid_key] = row
        else:
            row.path = path or row.path
            row.last_event = record.rec_type.mnemonic
            row.last_event_time = record.timestamp
        if record.rec_type in (RecordType.CLOSE, RecordType.TRUNC):
            row.size_events += 1

    # -- policy runs ---------------------------------------------------------

    def run_policy(self, policy: RobinhoodPolicy) -> PolicyRun:
        """Sweep the database and apply *policy* to matching entries."""
        now = self.clock.now()
        scanned = matched = acted = 0
        for row in list(self.database.values()):
            scanned += 1
            if row.is_dir:
                continue
            name = (row.path or "").rsplit("/", 1)[-1]
            if not fnmatch.fnmatch(name, policy.name_pattern):
                continue
            if now - row.last_event_time < policy.older_than:
                continue
            matched += 1
            if policy.action is not None:
                policy.action(row)
                acted += 1
        return PolicyRun(policy.name, scanned, matched, acted)

    # -- reports ----------------------------------------------------------------

    def usage_report(self) -> dict[str, int]:
        """Counts by top-level directory (Robinhood-style usage report)."""
        report: dict[str, int] = {}
        for row in self.database.values():
            if row.is_dir or not row.path:
                continue
            top = "/" + (row.path.split("/", 2)[1] if row.path.count("/") > 1 else "")
            report[top] = report.get(top, 0) + 1
        return report

    def find(self, pattern: str) -> list[str]:
        """Paths of database entries whose name matches *pattern*."""
        out = []
        for row in self.database.values():
            if row.path is None:
                continue
            if fnmatch.fnmatch(row.path.rsplit("/", 1)[-1], pattern):
                out.append(row.path)
        return sorted(out)
