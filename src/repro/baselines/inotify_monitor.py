"""The inotify/Watchdog baseline: original Ripple event detection.

Wraps :class:`~repro.fs.watchdog.Observer` into the same "stream of
:class:`FileEvent`" interface the Lustre monitor provides, while
exposing the costs the paper attributes to the approach:

* ``setup_directories_crawled`` — watchers require a full crawl of the
  monitored tree at schedule time;
* ``kernel_memory_bytes`` — ~1 KiB of unswappable kernel memory per
  watched directory (512 MiB at the 524,288 default watch limit);
* bounded queue → overflow drops under burst load (``events_lost``).
"""

from __future__ import annotations

from typing import Callable

from repro.core.events import FileEvent
from repro.fs.inotify import WATCH_MEMORY_BYTES
from repro.fs.memfs import MemoryFilesystem
from repro.fs.watchdog import FileSystemEvent, FileSystemEventHandler, Observer


class _Forwarder(FileSystemEventHandler):
    def __init__(self, monitor: "InotifyMonitor") -> None:
        self.monitor = monitor

    def on_any_event(self, event: FileSystemEvent) -> None:
        if event.event_type == "overflow":
            self.monitor.events_lost += 1
            return
        self.monitor._emit(FileEvent.from_watchdog(event))


class InotifyMonitor:
    """Watchdog-based monitoring of a local (in-memory) filesystem."""

    def __init__(
        self,
        filesystem: MemoryFilesystem,
        callback: Callable[[FileEvent], None],
    ) -> None:
        self.fs = filesystem
        self.callback = callback
        self.observer = Observer(filesystem)
        self._handler = _Forwarder(self)
        self.events_delivered = 0
        self.events_lost = 0

    def watch(self, path: str, recursive: bool = True) -> None:
        """Monitor *path*; crawls the subtree to place per-dir watches."""
        self.observer.schedule(self._handler, path, recursive=recursive)

    def _emit(self, event: FileEvent) -> None:
        self.events_delivered += 1
        self.callback(event)

    def drain(self) -> int:
        """Deliver pending events; returns the number dispatched."""
        return self.observer.drain()

    # -- cost accounting ------------------------------------------------------

    @property
    def setup_directories_crawled(self) -> int:
        """Directories visited to place watches (startup cost)."""
        return self.observer.directories_watched

    @property
    def watch_count(self) -> int:
        """Active inotify watches."""
        return self.observer.inotify.watch_count

    @property
    def kernel_memory_bytes(self) -> int:
        """Unswappable kernel memory held by the watches (1 KiB each)."""
        return self.observer.inotify.kernel_memory_bytes

    @property
    def queue_drops(self) -> int:
        """Events dropped by the bounded kernel queue."""
        return self.observer.inotify.dropped_events

    @staticmethod
    def memory_for_directories(n_directories: int) -> int:
        """Kernel memory needed to watch *n_directories* (paper's 512 MB
        for the 524,288 default maximum)."""
        return n_directories * WATCH_MEMORY_BYTES

    def close(self) -> None:
        self.observer.close()
