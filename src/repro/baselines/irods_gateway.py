"""An iRODS-style closed-ingest baseline (paper §2).

"The integrated Rule-Oriented Data System works by ingesting data into
a closed data grid such that it can manage the data and monitor events
throughout the data lifecycle."  The approach sees every event for data
that flows *through its API* — and nothing for data that does not.

:class:`IngestGateway` wraps a filesystem: operations performed through
the gateway are recorded and raise events; operations performed
directly on the underlying filesystem are invisible to it.  The tests
and comparison experiments use it to demonstrate the coverage gap the
ChangeLog monitor closes (which sees *all* mutations, however they were
made).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.core.events import EventType, FileEvent
from repro.fs.memfs import MemoryFilesystem
from repro.lustre.filesystem import LustreFilesystem

AnyFilesystem = Union[MemoryFilesystem, LustreFilesystem]
EventCallback = Callable[[FileEvent], None]


class IngestGateway:
    """Event detection limited to API-mediated operations."""

    def __init__(self, filesystem: AnyFilesystem) -> None:
        self.fs = filesystem
        self._callbacks: list[EventCallback] = []
        #: Paths registered in the grid's catalog (ingested through us).
        self.catalog: set[str] = set()
        self.events_raised = 0

    def subscribe(self, callback: EventCallback) -> None:
        """Deliver gateway-visible events to *callback*."""
        self._callbacks.append(callback)

    def _emit(self, event_type: EventType, path: str,
              old_path: Optional[str] = None) -> None:
        event = FileEvent(
            event_type=event_type,
            path=path,
            is_dir=False,
            timestamp=self.fs.clock.now()
            if isinstance(self.fs, LustreFilesystem)
            else 0.0,
            name=path.rsplit("/", 1)[-1],
            source="gateway",
            old_path=old_path,
        )
        self.events_raised += 1
        for callback in list(self._callbacks):
            callback(event)

    # -- mediated operations ------------------------------------------------

    def _write(self, path: str, data: bytes) -> None:
        if isinstance(self.fs, MemoryFilesystem):
            self.fs.write(path, data)
        else:
            if not self.fs.exists(path):
                self.fs.create(path, size=len(data))
            else:
                self.fs.write(path, len(data))

    def ingest(self, path: str, data: bytes = b"") -> None:
        """Put *path* into the grid: writes the file and catalogs it."""
        directory = path.rsplit("/", 1)[0] or "/"
        if directory != "/":
            if isinstance(self.fs, MemoryFilesystem):
                self.fs.makedirs(directory, exist_ok=True)
            else:
                self.fs.makedirs(directory)
        self._write(path, data)
        self.catalog.add(path)
        self._emit(EventType.CREATED, path)

    def update(self, path: str, data: bytes) -> None:
        """Rewrite a cataloged object."""
        self._require_cataloged(path)
        self._write(path, data)
        self._emit(EventType.MODIFIED, path)

    def remove(self, path: str) -> None:
        """Delete a cataloged object."""
        self._require_cataloged(path)
        self.fs.unlink(path)
        self.catalog.discard(path)
        self._emit(EventType.DELETED, path)

    def rename(self, src: str, dst: str) -> None:
        """Move a cataloged object."""
        self._require_cataloged(src)
        self.fs.rename(src, dst)
        self.catalog.discard(src)
        self.catalog.add(dst)
        self._emit(EventType.MOVED, dst, old_path=src)

    def _require_cataloged(self, path: str) -> None:
        if path not in self.catalog:
            raise KeyError(
                f"{path!r} is not in the grid catalog (was it created "
                "outside the gateway?)"
            )

    # -- the coverage gap ---------------------------------------------------

    def uncataloged_files(self, root: str = "/") -> list[str]:
        """Files on disk the grid knows nothing about (out-of-band I/O).

        Real deployments need periodic reconciliation scans exactly
        because this set is invisible to the event stream.
        """
        missing = []
        for dirpath, _dirs, files in self.fs.walk(root):
            for name in files:
                path = dirpath.rstrip("/") + "/" + name
                if path not in self.catalog:
                    missing.append(path)
        return sorted(missing)
