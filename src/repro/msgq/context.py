"""The messaging context: endpoint registry and socket factory."""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict

from repro.errors import AddressInUse, AddressNotFound, MessagingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.msgq.sockets import Socket


class Context:
    """Owns the endpoint namespace for one messaging domain.

    Endpoints are plain strings (conventionally ``inproc://collector0``).
    A bind claims the endpoint; connects resolve it.  The context is
    thread-safe: sockets are created and wired from any thread.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._bindings: Dict[str, "Socket"] = {}
        self._closed = False

    # -- socket factory -----------------------------------------------------

    def pub(self, hwm: int = 10_000) -> "PubSocket":
        """Create a PUB socket (see :class:`~repro.msgq.sockets.PubSocket`)."""
        from repro.msgq.sockets import PubSocket

        return PubSocket(self, hwm=hwm)

    def sub(self, hwm: int = 10_000) -> "SubSocket":
        """Create a SUB socket."""
        from repro.msgq.sockets import SubSocket

        return SubSocket(self, hwm=hwm)

    def push(self, hwm: int = 10_000) -> "PushSocket":
        """Create a PUSH socket."""
        from repro.msgq.sockets import PushSocket

        return PushSocket(self, hwm=hwm)

    def pull(self, hwm: int = 10_000) -> "PullSocket":
        """Create a PULL socket."""
        from repro.msgq.sockets import PullSocket

        return PullSocket(self, hwm=hwm)

    def req(self, timeout: float | None = None) -> "ReqSocket":
        """Create a REQ socket."""
        from repro.msgq.sockets import ReqSocket

        return ReqSocket(self, timeout=timeout)

    def rep(self) -> "RepSocket":
        """Create a REP socket."""
        from repro.msgq.sockets import RepSocket

        return RepSocket(self)

    # -- endpoint registry -----------------------------------------------------

    def _bind(self, endpoint: str, socket: "Socket") -> None:
        with self._lock:
            if self._closed:
                raise MessagingError("context is closed")
            if endpoint in self._bindings:
                raise AddressInUse(f"endpoint already bound: {endpoint!r}")
            self._bindings[endpoint] = socket

    def _unbind(self, endpoint: str) -> None:
        with self._lock:
            self._bindings.pop(endpoint, None)

    def _lookup(self, endpoint: str) -> "Socket":
        with self._lock:
            socket = self._bindings.get(endpoint)
            if socket is None:
                raise AddressNotFound(f"nothing bound at {endpoint!r}")
            return socket

    def endpoints(self) -> list[str]:
        """Currently bound endpoints (diagnostics)."""
        with self._lock:
            return sorted(self._bindings)

    def close(self) -> None:
        """Close every bound socket and refuse further binds."""
        with self._lock:
            sockets = list(self._bindings.values())
            self._closed = True
        for socket in sockets:
            socket.close()
