"""The messaging context: endpoint registry and socket factory.

This is the ``inproc`` :class:`~repro.msgq.transport.Transport` backend
(also exported as ``InprocTransport``) — the thread-queue
implementation the rest of the pipeline defaults to.
"""

from __future__ import annotations

import threading
import weakref
from typing import TYPE_CHECKING, Dict

from repro.errors import AddressInUse, AddressNotFound, MessagingError
from repro.msgq.transport import DEFAULT_HWM, Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.msgq.sockets import Socket


class Context(Transport):
    """Owns the endpoint namespace for one messaging domain.

    Endpoints are plain strings (conventionally ``inproc://collector0``).
    A bind claims the endpoint; connects resolve it.  The context is
    thread-safe: sockets are created and wired from any thread.

    Every socket created through the factory registers itself here, so
    :meth:`close` tears down the *whole* socket population — bound and
    unbound alike — idempotently.
    """

    scheme = "inproc"

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._bindings: Dict[str, "Socket"] = {}
        # Every socket ever created on this context (bound or not), so
        # close() can tear all of them down.  Weak references: a socket
        # the caller dropped is garbage-collected, not kept alive by
        # its context.
        self._sockets: "weakref.WeakSet[Socket]" = weakref.WeakSet()
        self._closed = False

    # -- socket factory -----------------------------------------------------

    def pub(self, hwm: int = DEFAULT_HWM) -> "PubSocket":
        """Create a PUB socket (see :class:`~repro.msgq.sockets.PubSocket`)."""
        from repro.msgq.sockets import PubSocket

        self._check_open()
        return PubSocket(self, hwm=hwm)

    def sub(self, hwm: int = DEFAULT_HWM) -> "SubSocket":
        """Create a SUB socket."""
        from repro.msgq.sockets import SubSocket

        self._check_open()
        return SubSocket(self, hwm=hwm)

    def push(self, hwm: int = DEFAULT_HWM) -> "PushSocket":
        """Create a PUSH socket."""
        from repro.msgq.sockets import PushSocket

        self._check_open()
        return PushSocket(self, hwm=hwm)

    def pull(self, hwm: int = DEFAULT_HWM) -> "PullSocket":
        """Create a PULL socket."""
        from repro.msgq.sockets import PullSocket

        self._check_open()
        return PullSocket(self, hwm=hwm)

    def req(self, timeout: float | None = None) -> "ReqSocket":
        """Create a REQ socket."""
        from repro.msgq.sockets import ReqSocket

        self._check_open()
        return ReqSocket(self, timeout=timeout)

    def rep(self, hwm: int = DEFAULT_HWM) -> "RepSocket":
        """Create a REP socket; *hwm* bounds its pending-request queue."""
        from repro.msgq.sockets import RepSocket

        self._check_open()
        return RepSocket(self, hwm=hwm)

    # -- endpoint registry -----------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise MessagingError("context is closed")

    def _register(self, socket: "Socket") -> None:
        with self._lock:
            self._sockets.add(socket)

    def _bind(self, endpoint: str, socket: "Socket") -> None:
        with self._lock:
            if self._closed:
                raise MessagingError("context is closed")
            if endpoint in self._bindings:
                raise AddressInUse(f"endpoint already bound: {endpoint!r}")
            self._bindings[endpoint] = socket

    def _unbind(self, endpoint: str) -> None:
        with self._lock:
            self._bindings.pop(endpoint, None)

    def _lookup(self, endpoint: str) -> "Socket":
        with self._lock:
            socket = self._bindings.get(endpoint)
            if socket is None:
                raise AddressNotFound(f"nothing bound at {endpoint!r}")
            return socket

    def endpoints(self) -> list[str]:
        """Currently bound endpoints (diagnostics)."""
        with self._lock:
            return sorted(self._bindings)

    def close(self) -> None:
        """Close every registered socket and refuse further binds.

        Idempotent: every socket's own ``close`` is a no-op the second
        time, and a second context close finds nothing left to do.
        Covers *all* sockets created on this context — connected-only
        SUB/PUSH/REQ sockets included, not just the bound ones.
        """
        with self._lock:
            sockets = list(self._sockets)
            self._closed = True
        for socket in sockets:
            socket.close()


#: The default Transport backend under its contract name.
InprocTransport = Context
