"""The Transport abstraction: one socket contract, pluggable backends.

Every layer of the pipeline that touches sockets — collectors pushing
report batches, aggregators binding their PULL/PUB/REP trio, consumers
subscribing, clients querying — speaks the contract defined here, not a
concrete backend:

* ``pub``/``sub`` — fan-out with topic prefix filtering and slow-joiner
  semantics; full subscribers drop (counted), publishers never block.
* ``push``/``pull`` — fair-queued pipelines with blocking ``send``,
  batched ``send_many``/``recv_many``, and the ``requeue`` crash-safety
  primitive (drained-but-unprocessed messages go back to the front).
* ``req``/``rep`` — lock-step request/reply with one-shot reply
  channels.
* high-water marks and credit-based flow control on every receiving
  socket (see :class:`~repro.msgq.sockets._Mailbox`).

Backends:

* ``inproc`` — :class:`~repro.msgq.context.Context`, the thread-queue
  implementation (also exported as ``InprocTransport``).  Byte-identical
  to the pre-refactor ``msgq`` behaviour; the existing fabric tests are
  its oracle.
* ``multiproc`` — :class:`~repro.msgq.multiproc.MultiprocTransport`, an
  inproc context extended with a process-per-shard factory: parent-side
  sockets stay inproc (so collectors/consumers/clients are unchanged)
  while each shard's store+publish work runs in a child process bridged
  over multiprocessing queues with marshal framing (pickle-free data
  plane) and at-least-once redelivery.

:func:`make_transport` resolves a transport URL/name (``"inproc"``,
``"multiproc"``, or the ``scheme://`` form) to a backend instance —
the config-field hook ``MonitorConfig.transport`` /
``ClusterConfig.transport`` use.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.errors import MessagingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.msgq.sockets import (
        PubSocket,
        PullSocket,
        PushSocket,
        RepSocket,
        ReqSocket,
        SubSocket,
    )

#: Default per-socket high-water mark shared by every factory.
DEFAULT_HWM = 10_000


class Transport(ABC):
    """The socket contract every messaging backend implements.

    A transport owns one endpoint namespace (bind claims a name,
    connect resolves it) and manufactures the six socket types.  All
    factories take a high-water mark: the bounded-queue capacity that
    drives the credit-based flow control receivers grant to senders.
    """

    #: URL scheme this backend answers to (``inproc``, ``multiproc``).
    scheme: str = "abstract"

    # -- socket factory -----------------------------------------------------

    @abstractmethod
    def pub(self, hwm: int = DEFAULT_HWM) -> "PubSocket":
        """Create a PUB socket (fan-out, never blocks, drops on full)."""

    @abstractmethod
    def sub(self, hwm: int = DEFAULT_HWM) -> "SubSocket":
        """Create a SUB socket (prefix-filtered, bounded mailbox)."""

    @abstractmethod
    def push(self, hwm: int = DEFAULT_HWM) -> "PushSocket":
        """Create a PUSH socket (round-robin pipeline source)."""

    @abstractmethod
    def pull(self, hwm: int = DEFAULT_HWM) -> "PullSocket":
        """Create a PULL socket (fair-queued sink with ``requeue``)."""

    @abstractmethod
    def req(self, timeout: float | None = None) -> "ReqSocket":
        """Create a REQ socket (lock-step request side)."""

    @abstractmethod
    def rep(self, hwm: int = DEFAULT_HWM) -> "RepSocket":
        """Create a REP socket (lock-step reply side)."""

    # -- namespace ----------------------------------------------------------

    @abstractmethod
    def endpoints(self) -> list[str]:
        """Currently bound endpoints (diagnostics)."""

    @abstractmethod
    def close(self) -> None:
        """Close every registered socket and refuse further binds."""


def make_transport(url: str = "inproc") -> Transport:
    """Resolve a transport URL or bare scheme name to a backend.

    Accepts ``"inproc"``, ``"multiproc"``, or any ``scheme://...`` URL
    whose scheme names a backend (the path part is ignored — inproc
    endpoint names carry the namespace).  Backends are imported lazily
    so the multiproc machinery costs nothing unless selected.
    """
    scheme = url.split("://", 1)[0].strip()
    if scheme == "inproc":
        from repro.msgq.context import Context

        return Context()
    if scheme == "multiproc":
        from repro.msgq.multiproc import MultiprocTransport

        return MultiprocTransport()
    raise MessagingError(
        f"unknown transport scheme {scheme!r}; known: ['inproc', 'multiproc']"
    )
