"""Socket implementations for the in-process message fabric.

Messages are arbitrary Python objects plus a topic string (PUB/SUB only).
Delivery is push-based into per-receiver bounded queues guarded by
condition variables, giving the same backpressure/drop behaviour as
ZeroMQ's high-water marks:

* PUSH blocks when every connected PULL queue is full (ZeroMQ blocks or
  drops depending on socket type; pipelines block).
* PUB never blocks: messages to a full SUB queue are dropped and counted
  on the subscriber (``dropped`` attribute) — ZeroMQ's documented PUB
  behaviour.

Flow control is credit-based: a mailbox's free capacity (``hwm`` minus
queue depth) is the *credit* the receiver grants senders.  A blocking
send waits for enough credits; batched sends progress wave-by-wave as
credits free up; and a sender may mark messages sheddable
(``shed_priority``) so that under HWM pressure expendable traffic is
dropped — counted, highest priority first — instead of blocking the
pipeline behind it.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.errors import MessagingError, SocketClosed, WouldBlock
from repro.msgq.context import Context


class Socket:
    """Common socket machinery: lifecycle and identity."""

    _ids = itertools.count(1)

    def __init__(self, context: Context) -> None:
        self.context = context
        self.socket_id = next(self._ids)
        self.closed = False
        self._bound_endpoints: list[str] = []
        # Registration lets Context.close() tear down every socket,
        # not just the bound ones.
        register = getattr(context, "_register", None)
        if register is not None:
            register(self)

    def _check_open(self) -> None:
        if self.closed:
            raise SocketClosed(f"socket {self.socket_id} is closed")

    def close(self) -> None:
        """Close the socket and release its endpoints."""
        if self.closed:
            return
        self.closed = True
        for endpoint in self._bound_endpoints:
            self.context._unbind(endpoint)
        self._bound_endpoints.clear()
        self._on_close()

    def _on_close(self) -> None:
        """Subclass hook for close-time cleanup."""

    def __enter__(self) -> "Socket":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class _Mailbox:
    """A bounded thread-safe FIFO with blocking receive.

    The free capacity (``hwm`` minus queue depth) is the *credit* this
    receiver currently grants senders — :attr:`credits` exposes it so
    backpressure is observable before the mark is hit (the services
    export it as a registry gauge).  ``requeue`` deliberately bypasses
    the mark, so credits floor at zero rather than going negative.
    """

    def __init__(self, hwm: int) -> None:
        if hwm < 1:
            raise MessagingError(f"hwm must be >= 1: {hwm}")
        self.hwm = hwm
        self._queue: Deque[Any] = deque()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self.dropped = 0
        self.delivered = 0
        #: Messages dropped by sender-requested shedding (distinct from
        #: ``dropped``, the receiver-side overflow counter).
        self.shed = 0

    @property
    def credits(self) -> int:
        """Free slots the receiver currently grants (never negative)."""
        with self._lock:
            return max(self.hwm - len(self._queue), 0)

    def _credits_locked(self) -> int:
        return max(self.hwm - len(self._queue), 0)

    def offer(self, item: Any) -> bool:
        """Non-blocking put; returns False (counting a drop) when full."""
        with self._lock:
            if len(self._queue) >= self.hwm:
                self.dropped += 1
                return False
            self._queue.append(item)
            self.delivered += 1
            self._ready.notify()
            return True

    def put(self, item: Any, timeout: Optional[float] = None) -> bool:
        """Blocking put; waits for space up to *timeout* seconds."""
        with self._lock:
            if len(self._queue) >= self.hwm:
                if not self._space.wait_for(
                    lambda: len(self._queue) < self.hwm, timeout=timeout
                ):
                    return False
            self._queue.append(item)
            self.delivered += 1
            self._ready.notify()
            return True

    def _shed_locked(
        self,
        pending: list,
        priorities: list[int],
        cursor: int,
        all_remaining: bool = False,
    ) -> int:
        """Drop sheddable items (priority > 0, highest first) in place.

        Removes items from ``pending[cursor:]`` (and their priorities)
        until the remainder fits the credits currently available — or,
        with *all_remaining*, drops every sheddable item left (the
        deadline-expiry path).  Returns the number shed.
        """
        candidates = sorted(
            (i for i in range(cursor, len(pending)) if priorities[i] > 0),
            key=lambda i: -priorities[i],
        )
        if not candidates:
            return 0
        if all_remaining:
            target = len(candidates)
        else:
            excess = (len(pending) - cursor) - self._credits_locked()
            target = min(len(candidates), max(excess, 0))
        if target <= 0:
            return 0
        for index in sorted(candidates[:target], reverse=True):
            del pending[index]
            del priorities[index]
        self.shed += target
        return target

    def put_many(
        self,
        items: list,
        timeout: Optional[float] = None,
        shed_priorities: Optional[list[int]] = None,
    ):
        """Enqueue a whole batch under one lock acquisition.

        Admission is credit-driven: a batch that fits within the
        high-water mark waits for credits covering the *entire* batch
        before admitting anything (all-or-nothing, so a timed-out group
        is never torn); a batch larger than the mark cannot fit at once
        and moves in credit-sized waves — each wave admits exactly the
        credits the receiver has granted, progressing as soon as any
        slot frees instead of waiting for a whole hwm-sized window.
        *timeout* is a deadline across the whole call, not per wave.

        *shed_priorities* (aligned with *items*; 0 = must deliver,
        higher = shed first) enables load shedding.  Shedding is
        deadline-honouring for groups that fit the mark: a within-hwm
        group blocks for credits exactly like the non-shedding path and
        sheds only once the deadline expires — an instantaneous credit
        shortfall that would have resolved in time never drops
        anything.  Oversized groups (which can never be admitted
        atomically) still shed eagerly down to the available credits —
        highest priority first, counted in :attr:`shed`.  At deadline
        expiry every sheddable item left is dropped, and the surviving
        must-deliver remainder is admitted if it now fits the credits
        freed by the shed.

        Returns the number of items admitted — or an
        ``(admitted, shed)`` pair when *shed_priorities* was given —
        so callers can account for partial deliveries instead of
        assuming all-or-nothing.
        """
        if not items:
            return 0 if shed_priorities is None else (0, 0)
        pending = list(items)
        priorities = (
            None if shed_priorities is None else list(shed_priorities)
        )
        if priorities is not None and len(priorities) != len(pending):
            raise MessagingError(
                "shed_priorities must align with items: "
                f"{len(priorities)} != {len(pending)}"
            )
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._lock:
            admitted = 0
            shed = 0
            cursor = 0
            while cursor < len(pending):
                remaining = len(pending) - cursor
                if (
                    priorities is not None
                    and remaining > self.hwm
                    and self._credits_locked() < remaining
                ):
                    # Only oversized groups shed on an instantaneous
                    # shortfall — a within-hwm group would have blocked
                    # and delivered, so it keeps blocking and sheds at
                    # the deadline instead.
                    shed += self._shed_locked(pending, priorities, cursor)
                    remaining = len(pending) - cursor
                    if remaining == 0:
                        break
                # Within-hwm groups need credits for the whole group
                # (atomic admission); oversized groups progress one
                # credit at a time.
                needed = remaining if remaining <= self.hwm else 1
                wait = (
                    None if deadline is None
                    else max(deadline - time.monotonic(), 0.0)
                )
                if not self._space.wait_for(
                    lambda: len(self._queue) + needed <= self.hwm,
                    timeout=wait,
                ):
                    if priorities is not None:
                        shed += self._shed_locked(
                            pending, priorities, cursor, all_remaining=True
                        )
                        leftover = len(pending) - cursor
                        if 0 < leftover <= self._credits_locked():
                            # The shed freed enough room: deliver the
                            # surviving must-delivers instead of
                            # failing them at the deadline.
                            self._queue.extend(pending[cursor:])
                            self.delivered += leftover
                            self._ready.notify_all()
                            admitted += leftover
                            cursor += leftover
                    break
                wave = (
                    remaining
                    if remaining <= self.hwm
                    else min(self._credits_locked(), remaining)
                )
                self._queue.extend(pending[cursor:cursor + wave])
                self.delivered += wave
                self._ready.notify_all()
                admitted += wave
                cursor += wave
            return admitted if shed_priorities is None else (admitted, shed)

    def requeue(self, items: list) -> None:
        """Put already-admitted *items* back at the FRONT of the queue.

        The crash-recovery primitive: a receiver that drained a group
        with :meth:`get_many` but failed before processing all of it
        returns the unprocessed tail here, so the next receive sees the
        items again in their original order, ahead of anything that
        arrived in the meantime.  The items were admitted (and counted
        delivered) once already, so the high-water mark is deliberately
        not re-checked and ``delivered`` is not re-counted.
        """
        if not items:
            return
        with self._lock:
            self._queue.extendleft(reversed(items))
            self._ready.notify_all()

    def get_many(
        self,
        max_items: Optional[int] = None,
        timeout: Optional[float] = None,
        block: bool = True,
    ) -> list:
        """Drain up to *max_items* pending items in one lock acquisition.

        Raises WouldBlock exactly like :meth:`get` when nothing arrives
        in time; otherwise returns at least one item.
        """
        with self._lock:
            if not block:
                if not self._queue:
                    raise WouldBlock("no message available")
            else:
                if not self._ready.wait_for(
                    lambda: bool(self._queue), timeout=timeout
                ):
                    raise WouldBlock("receive timed out")
            count = len(self._queue)
            if max_items is not None:
                count = min(count, max(max_items, 1))
            items = [self._queue.popleft() for _ in range(count)]
            self._space.notify_all()
            return items

    def get(self, timeout: Optional[float] = None, block: bool = True) -> Any:
        """Receive the next item; raises WouldBlock on timeout/empty."""
        with self._lock:
            if not block:
                if not self._queue:
                    raise WouldBlock("no message available")
            else:
                if not self._ready.wait_for(
                    lambda: bool(self._queue), timeout=timeout
                ):
                    raise WouldBlock("receive timed out")
            item = self._queue.popleft()
            self._space.notify()
            return item

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)


# ---------------------------------------------------------------------------
# PUB / SUB
# ---------------------------------------------------------------------------


class PubSocket(Socket):
    """Publisher: fan-out with topic prefix filtering, never blocks."""

    def __init__(self, context: Context, hwm: int = 10_000) -> None:
        super().__init__(context)
        self.hwm = hwm
        self._lock = threading.Lock()
        self._subscribers: list["SubSocket"] = []
        self.published = 0

    def bind(self, endpoint: str) -> "PubSocket":
        """Claim *endpoint* so SUB sockets can connect to it."""
        self._check_open()
        self.context._bind(endpoint, self)
        self._bound_endpoints.append(endpoint)
        return self

    def _attach(self, subscriber: "SubSocket") -> None:
        with self._lock:
            self._subscribers.append(subscriber)

    def _detach(self, subscriber: "SubSocket") -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

    @property
    def subscriber_count(self) -> int:
        """Currently attached subscribers (the multiproc bridge uses
        this to suppress decode work when nobody is listening)."""
        with self._lock:
            return len(self._subscribers)

    def send(self, topic: str, payload: Any) -> int:
        """Publish *payload* under *topic*; returns matched subscribers.

        Subscribers whose queues are full drop the message (counted on
        the subscriber), matching ZeroMQ PUB semantics.
        """
        self._check_open()
        self.published += 1
        with self._lock:
            subscribers = list(self._subscribers)
        matched = 0
        for subscriber in subscribers:
            if subscriber._matches(topic):
                matched += 1
                subscriber._mailbox.offer((topic, payload))
        return matched

    def _on_close(self) -> None:
        with self._lock:
            self._subscribers.clear()


class SubSocket(Socket):
    """Subscriber: receives (topic, payload) pairs matching its prefixes."""

    def __init__(self, context: Context, hwm: int = 10_000) -> None:
        super().__init__(context)
        self._mailbox = _Mailbox(hwm)
        self._topics: list[str] = []
        self._publishers: list[PubSocket] = []

    def connect(self, endpoint: str) -> "SubSocket":
        """Attach to the PUB socket bound at *endpoint*."""
        self._check_open()
        publisher = self.context._lookup(endpoint)
        if not isinstance(publisher, PubSocket):
            raise MessagingError(f"{endpoint!r} is not a PUB endpoint")
        publisher._attach(self)
        self._publishers.append(publisher)
        return self

    def subscribe(self, prefix: str = "") -> "SubSocket":
        """Add a topic prefix filter ('' matches everything)."""
        self._check_open()
        if prefix not in self._topics:
            self._topics.append(prefix)
        return self

    def unsubscribe(self, prefix: str) -> None:
        """Remove a previously added prefix."""
        try:
            self._topics.remove(prefix)
        except ValueError:
            pass

    def _matches(self, topic: str) -> bool:
        return any(topic.startswith(prefix) for prefix in self._topics)

    def recv(
        self, timeout: Optional[float] = None, block: bool = True
    ) -> tuple[str, Any]:
        """Receive the next (topic, payload); raises WouldBlock if none."""
        self._check_open()
        return self._mailbox.get(timeout=timeout, block=block)

    def recv_many(
        self,
        max_messages: Optional[int] = None,
        timeout: Optional[float] = None,
        block: bool = True,
    ) -> list[tuple[str, Any]]:
        """Drain pending (topic, payload) pairs in one fabric operation;
        raises WouldBlock exactly like :meth:`recv`."""
        self._check_open()
        return self._mailbox.get_many(
            max_items=max_messages, timeout=timeout, block=block
        )

    @property
    def pending(self) -> int:
        """Messages buffered and not yet received."""
        return len(self._mailbox)

    @property
    def hwm(self) -> int:
        """This subscriber's queue capacity."""
        return self._mailbox.hwm

    @property
    def credits(self) -> int:
        """Free queue slots (occupancy gauge: ``hwm - pending``)."""
        return self._mailbox.credits

    @property
    def dropped(self) -> int:
        """Messages dropped because this subscriber's queue was full."""
        return self._mailbox.dropped

    def _on_close(self) -> None:
        for publisher in self._publishers:
            publisher._detach(self)
        self._publishers.clear()


# ---------------------------------------------------------------------------
# PUSH / PULL
# ---------------------------------------------------------------------------


class PullSocket(Socket):
    """Pipeline sink: fair-queued fan-in from any number of pushers."""

    def __init__(self, context: Context, hwm: int = 10_000) -> None:
        super().__init__(context)
        self._mailbox = _Mailbox(hwm)

    def bind(self, endpoint: str) -> "PullSocket":
        """Claim *endpoint* so PUSH sockets can connect."""
        self._check_open()
        self.context._bind(endpoint, self)
        self._bound_endpoints.append(endpoint)
        return self

    def recv(self, timeout: Optional[float] = None, block: bool = True) -> Any:
        """Receive the next message; raises WouldBlock if none in time."""
        self._check_open()
        return self._mailbox.get(timeout=timeout, block=block)

    def recv_many(
        self,
        max_messages: Optional[int] = None,
        timeout: Optional[float] = None,
        block: bool = True,
    ) -> list:
        """Drain every pending message (up to *max_messages*) in one
        fabric operation; raises WouldBlock exactly like :meth:`recv`."""
        self._check_open()
        return self._mailbox.get_many(
            max_items=max_messages, timeout=timeout, block=block
        )

    def requeue(self, messages: list) -> None:
        """Return already-received *messages* to the front of the queue.

        Used by crash-safe receivers: messages drained with
        :meth:`recv_many` but not yet processed when the worker died are
        put back so the restarted worker re-receives them first, in
        order.  Bypasses the high-water mark (the messages were admitted
        once) and does not bump :attr:`received`.
        """
        self._check_open()
        self._mailbox.requeue(messages)

    @property
    def pending(self) -> int:
        return len(self._mailbox)

    @property
    def hwm(self) -> int:
        """This sink's queue capacity."""
        return self._mailbox.hwm

    @property
    def credits(self) -> int:
        """Free queue slots — the credits currently granted to pushers."""
        return self._mailbox.credits

    @property
    def received(self) -> int:
        """Total messages accepted into the mailbox."""
        return self._mailbox.delivered

    @property
    def shed(self) -> int:
        """Messages senders shed at this sink under HWM pressure."""
        return self._mailbox.shed


class PushSocket(Socket):
    """Pipeline source: round-robins messages across connected sinks."""

    def __init__(self, context: Context, hwm: int = 10_000) -> None:
        super().__init__(context)
        self.hwm = hwm
        self._sinks: list[PullSocket] = []
        self._rr = 0
        self.sent = 0
        #: Messages this socket shed under HWM pressure (``send_many``
        #: with a ``shed_priority``).
        self.shed = 0
        #: Fabric round-trips performed (one per send/send_many call) —
        #: the operation counter the ingest micro-benchmark asserts on.
        self.send_ops = 0

    def connect(self, endpoint: str) -> "PushSocket":
        """Attach to the PULL socket bound at *endpoint*."""
        self._check_open()
        sink = self.context._lookup(endpoint)
        if not isinstance(sink, PullSocket):
            raise MessagingError(f"{endpoint!r} is not a PULL endpoint")
        self._sinks.append(sink)
        return self

    def _next_sink(self) -> PullSocket:
        if not self._sinks:
            raise MessagingError("PUSH socket has no connected sinks")
        sink = self._sinks[self._rr % len(self._sinks)]
        self._rr += 1
        return sink

    def send(self, payload: Any, timeout: Optional[float] = None) -> None:
        """Send to the next sink round-robin, blocking while it is full."""
        self._check_open()
        sink = self._next_sink()
        self.send_ops += 1
        if not sink._mailbox.put(payload, timeout=timeout):
            raise WouldBlock("downstream queue full (send timed out)")
        self.sent += 1

    def send_many(
        self,
        payloads: list,
        timeout: Optional[float] = None,
        shed_priority: Optional[Callable[[Any], int]] = None,
    ) -> None:
        """Move several messages to ONE sink in one fabric round-trip.

        The whole group lands on the same PULL socket (one mailbox lock
        acquisition), preserving intra-group order — which is why a
        collector flushing one poll's chunks uses this instead of N
        round-robined :meth:`send` calls.

        Admission is credit-based and all-or-nothing for groups within
        the sink's high-water mark.  A larger group moves in
        credit-sized waves under one *timeout* deadline; if a later
        wave times out, ``sent`` still reflects the messages the sink
        already admitted and the raised WouldBlock reports the partial
        count, so retrying callers know the delivery was partial
        rather than absent.

        *shed_priority* maps a payload to its shed priority (0 = must
        deliver; higher sheds first).  Under HWM pressure, sheddable
        payloads are dropped (counted in :attr:`shed` and on the sink)
        instead of blocking the group — WouldBlock is then raised only
        when *must-deliver* payloads went unadmitted.  Best-effort
        feeds (metric mirrors, sampled traces) use this so they can
        never stall the event pipeline behind them.
        """
        self._check_open()
        if not payloads:
            return
        payloads = list(payloads)
        sink = self._next_sink()
        self.send_ops += 1
        if shed_priority is None:
            admitted = sink._mailbox.put_many(payloads, timeout=timeout)
            shed = 0
        else:
            priorities = [int(shed_priority(p)) for p in payloads]
            admitted, shed = sink._mailbox.put_many(
                payloads, timeout=timeout, shed_priorities=priorities
            )
            self.shed += shed
        self.sent += admitted
        if admitted + shed < len(payloads):
            raise WouldBlock(
                "downstream queue full (send timed out after admitting "
                f"{admitted}/{len(payloads)} messages)"
            )


# ---------------------------------------------------------------------------
# REQ / REP
# ---------------------------------------------------------------------------


class RepSocket(Socket):
    """Reply side of a lock-step request/reply channel.

    *hwm* bounds the pending-request queue like every other socket —
    plumbed from config (the aggregator passes its ``hwm``), no longer
    hardcoded.
    """

    def __init__(self, context: Context, hwm: int = 10_000) -> None:
        super().__init__(context)
        self._requests = _Mailbox(hwm=hwm)

    @property
    def hwm(self) -> int:
        """Capacity of the pending-request queue."""
        return self._requests.hwm

    @property
    def pending(self) -> int:
        """Requests waiting to be served."""
        return len(self._requests)

    @property
    def credits(self) -> int:
        """Free request slots (occupancy gauge: ``hwm - pending``)."""
        return self._requests.credits

    def bind(self, endpoint: str) -> "RepSocket":
        """Claim *endpoint* so REQ sockets can connect."""
        self._check_open()
        self.context._bind(endpoint, self)
        self._bound_endpoints.append(endpoint)
        return self

    def recv(self, timeout: Optional[float] = None) -> tuple[Any, "_ReplyChannel"]:
        """Receive ``(request, reply_channel)``; call channel.send(reply)."""
        self._check_open()
        return self._requests.get(timeout=timeout)

    def serve_once(self, handler, timeout: Optional[float] = None) -> bool:
        """Receive one request and reply with ``handler(request)``.

        Returns False if the wait timed out.  Handler exceptions are sent
        to the requester as the reply (and re-raised there).  The answer
        is computed *before* the reply is sent so a failure inside the
        send itself can never trigger a second send on the one-shot
        reply channel.
        """
        try:
            request, channel = self.recv(timeout=timeout)
        except WouldBlock:
            return False
        try:
            reply = handler(request)
        except Exception as exc:  # deliver failures to the caller
            reply = exc
        channel.send(reply)
        return True


class _ReplyChannel:
    """One-shot reply slot handed to REP handlers.

    REQ/REP is lock-step: exactly one reply per request.  A second send
    raises instead of silently overwriting the reply the requester may
    already have observed.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None

    def send(self, value: Any) -> None:
        if self._event.is_set():
            raise MessagingError("reply channel already used")
        self._value = value
        self._event.set()

    def wait(self, timeout: Optional[float]) -> Any:
        if not self._event.wait(timeout=timeout):
            raise WouldBlock("request timed out waiting for reply")
        return self._value


class ReqSocket(Socket):
    """Request side: ``request()`` sends and waits for the reply."""

    def __init__(self, context: Context, timeout: float | None = None) -> None:
        super().__init__(context)
        self.timeout = timeout
        self._server: Optional[RepSocket] = None

    def connect(self, endpoint: str) -> "ReqSocket":
        """Attach to the REP socket bound at *endpoint*."""
        self._check_open()
        server = self.context._lookup(endpoint)
        if not isinstance(server, RepSocket):
            raise MessagingError(f"{endpoint!r} is not a REP endpoint")
        self._server = server
        return self

    def request(self, payload: Any, timeout: Optional[float] = None) -> Any:
        """Send *payload* and block for the reply.

        Raises the reply if the server handler raised an exception,
        :class:`SocketClosed` if the server socket was closed, and
        :class:`WouldBlock` if the server's request queue stays full
        past the timeout (instead of blocking forever against a wedged
        server).
        """
        self._check_open()
        if self._server is None:
            raise MessagingError("REQ socket is not connected")
        if self._server.closed:
            raise SocketClosed("REP server socket is closed")
        effective = timeout if timeout is not None else self.timeout
        channel = _ReplyChannel()
        if not self._server._requests.put((payload, channel), timeout=effective):
            raise WouldBlock("server request queue full (send timed out)")
        reply = channel.wait(effective)
        if isinstance(reply, Exception):
            raise reply
        return reply
