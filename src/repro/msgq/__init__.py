"""An in-process message fabric with ZeroMQ-style socket semantics.

The paper's monitor moves events from Collectors to the Aggregator and
from the Aggregator to subscribed consumers over ZeroMQ.  This package
reproduces the messaging *semantics* the design depends on, in-process:

* :class:`Context` — owns named endpoints; sockets bind/connect to
  ``inproc://name`` style addresses.
* ``PUB``/``SUB`` — fan-out with topic prefix filtering; subscribers
  that have not connected yet miss messages (the "slow joiner" property
  real deployments must design around); a bounded high-water mark drops
  messages to slow subscribers (observable, so tests can assert on it).
* ``PUSH``/``PULL`` — fair-queued fan-in/fan-out pipelines with blocking
  or non-blocking receive; used Collector→Aggregator.
* ``REQ``/``REP`` — lock-step request/reply, used for the Aggregator's
  historic-event retrieval API.

The ablation A4 (DESIGN.md) compares these transports for the
collection path, per the paper's future work.
"""

from repro.msgq.context import Context, InprocTransport
from repro.msgq.sockets import (
    PubSocket,
    PullSocket,
    PushSocket,
    RepSocket,
    ReqSocket,
    SubSocket,
)
from repro.msgq.transport import Transport, make_transport

__all__ = [
    "Context",
    "InprocTransport",
    "Transport",
    "make_transport",
    "PubSocket",
    "SubSocket",
    "PushSocket",
    "PullSocket",
    "ReqSocket",
    "RepSocket",
]
