"""The multiproc transport backend: process-per-shard aggregation.

The inproc fabric shares one GIL, so shard count buys concurrency but
not CPU — the sharded-ingest bench plateaus regardless of shards.  This
module moves each shard's store+publish work into its own **child
process** while keeping every other component untouched:

* The parent side of a shard is a :class:`ProcessShardBridge` — a
  :class:`~repro.runtime.Service` that binds the shard's *real* inproc
  endpoints (PULL for reports, PUB for events, REP for the API) on the
  parent context.  Collectors, consumers, and clients connect to those
  endpoints exactly as they would to an in-process
  :class:`~repro.core.aggregator.Aggregator`; none of them can tell
  the difference.
* The child process runs a stock ``Aggregator`` driven synchronously.
  Report batches travel parent→child as marshal-framed bytes
  (:mod:`repro.msgq.framing` — pickle-free data plane); published
  batches and acknowledgements travel child→parent the same way.

**At-least-once across the process boundary.**  The bridge keeps every
forwarded batch in an in-flight map until the child acknowledges it
(acks are sent *after* the batch's publications, so an acked batch's
events are already on their way to subscribers).  When the child dies —
crash or :meth:`ProcessShardBridge.kill_child` — the bridge respawns it
seeded with ``start_seq = last acked seq + 1`` and replays the
in-flight batches in order.  The replayed batches receive the *same*
sequence numbers they would have had, so consumers' per-shard
watermarks dedup any double-published events exactly; nothing is lost
and nothing is delivered twice.  (The child's in-memory historic
window does not survive the restart — the live stream is the
loss-free path, as for a PUB message missed by a slow joiner.)

Children are started with the ``spawn`` method by default: forking a
multi-threaded parent (supervisor sweeps, worker loops, queue feeder
threads) risks cloning held locks; a fresh interpreter does not.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from itertools import count
from typing import Any, Optional

from repro.errors import WouldBlock
from repro.msgq.context import Context
from repro.msgq.framing import (
    decode_entries,
    decode_report,
    encode_entries,
    encode_report,
)
from repro.runtime.service import Service, ServiceCrash, WorkerSpec
from repro.telemetry.relay import RegistryRelay, decode_state

__all__ = ["MultiprocTransport", "ProcessShardBridge", "ShardChildSpec"]

#: Default child start method (see module docstring).
DEFAULT_START_METHOD = "spawn"

#: How often (seconds) the child ships its registry snapshot to the
#: parent; 0 disables the relay.  Snapshots ride the ordinary child
#: output queue, so they are strictly ordered with pubs and acks.
DEFAULT_RELAY_INTERVAL = 0.25

#: Frames the parent→child queue holds before the bridge stops
#: draining its PULL socket (backpressure propagates to collectors
#: through the socket's own credits).
DEFAULT_INBOX_FRAMES = 64

#: The child's capture subscription must never drop a publication —
#: it is drained after every batch, so depth stays one batch deep.
_CAPTURE_HWM = 1 << 30


@dataclass(frozen=True)
class ShardChildSpec:
    """Everything a spawned shard process needs (must stay picklable)."""

    shard_id: str
    config: Any  # AggregatorConfig; typed loosely to avoid a core import
    start_seq: int = 1
    want_pubs: bool = False
    flush_batch_events: Optional[int] = None
    relay_interval: float = DEFAULT_RELAY_INTERVAL


def _forward_pubs(capture, events_q, want_pubs: bool) -> None:
    """Ship the publications of the batch just handled to the parent.

    With no parent-side subscribers the frames are skipped entirely
    (the capture queue is still drained so it never grows).
    """
    try:
        messages = capture.recv_many(block=False)
    except WouldBlock:
        return
    if not want_pubs:
        return
    for topic, payload in messages:
        events_q.put(("pub", topic, encode_entries(payload)))


def _shard_main(spec: ShardChildSpec, inbox_q, events_q) -> None:
    """Child process entry point: a synchronously driven Aggregator.

    Frames in: ``("batch", bid, bytes)``, ``("req", rid, bytes)``,
    ``("want", bool)``, ``("tune", {...})``, ``("relay",)``,
    ``("stop",)``.
    Frames out: ``("pub", topic, bytes)``, ``("ack", bid, last_seq)``,
    ``("reply", rid, bytes)``, ``("metrics", bytes)``,
    ``("crashed", reason)``.

    Publications are forwarded *before* the batch's ack, so an acked
    batch's events are always ahead of the ack in the FIFO — the
    ordering the bridge's at-least-once accounting relies on.
    """
    from repro.core.aggregator import Aggregator
    from repro.metrics.registry import MetricsRegistry
    from repro.telemetry.relay import encode_state

    transport = Context()
    aggregator = Aggregator(
        transport, spec.config, registry=MetricsRegistry(),
        name=spec.shard_id,
    )
    if aggregator.store.last_seq >= spec.start_seq:
        # A durable store recovered *past* the parent's ack watermark
        # (it logged batches whose acks never arrived).  Trim back to
        # the watermark: the parent replays every unacked batch, so the
        # replayed events regenerate their original sequence numbers
        # and downstream watermark dedup works unchanged.  The acked
        # history below the watermark survives the restart.
        aggregator.store.discard_after(spec.start_seq - 1)
    elif spec.start_seq > 1:
        # Resume the sequence space where the acked history ended, so
        # replayed in-flight batches get their original numbers.
        aggregator.store._next_seq = max(
            aggregator.store._next_seq, spec.start_seq
        )
    if spec.flush_batch_events is not None:
        aggregator.flush_batch_events = spec.flush_batch_events
    capture = (
        transport.sub(hwm=_CAPTURE_HWM)
        .connect(spec.config.publish_endpoint)
        .subscribe("")
    )
    want_pubs = spec.want_pubs
    parent = multiprocessing.parent_process()

    def _ship_metrics() -> None:
        # Best-effort: a full output queue means the parent is behind on
        # real work; dropping a snapshot only delays one relay tick.
        state = aggregator.metrics.registry.export_state()
        try:
            events_q.put_nowait(("metrics", encode_state(state)))
        except Exception:
            pass

    last_relay = time.monotonic()

    def _maybe_relay() -> None:
        nonlocal last_relay
        if spec.relay_interval <= 0:
            return
        now = time.monotonic()
        if now - last_relay >= spec.relay_interval:
            _ship_metrics()
            last_relay = now

    while True:
        try:
            frame = inbox_q.get(timeout=0.1)
        except queue.Empty:
            if parent is not None and not parent.is_alive():
                break
            _maybe_relay()
            continue
        kind = frame[0]
        if kind == "stop":
            break
        try:
            if kind == "batch":
                bid, data = frame[1], frame[2]
                aggregator._handle_batch(decode_report(data))
                _forward_pubs(capture, events_q, want_pubs)
                events_q.put(("ack", bid, aggregator.store.last_seq))
            elif kind == "req":
                rid, data = frame[1], frame[2]
                request = pickle.loads(data)
                try:
                    answer = aggregator._answer(request)
                except Exception as exc:  # delivered to the requester
                    answer = exc
                events_q.put(("reply", rid, pickle.dumps(answer)))
            elif kind == "want":
                want_pubs = bool(frame[1])
            elif kind == "tune":
                knobs = frame[1]
                if "batch_events" in knobs:
                    aggregator.flush_batch_events = int(
                        knobs["batch_events"]
                    )
            elif kind == "relay":
                _ship_metrics()
                last_relay = time.monotonic()
            _maybe_relay()
        except Exception as exc:
            try:
                events_q.put_nowait(
                    ("crashed", f"{type(exc).__name__}: {exc}")
                )
            except Exception:
                pass
            raise
    # Graceful exit: a last snapshot (so the parent's merged series end
    # at the child's final truth), then flush the durable backend
    # (no-op for memory) so a clean stop leaves no torn tail for the
    # next incarnation.
    if spec.relay_interval > 0:
        _ship_metrics()
    aggregator.store.close()


@contextmanager
def _spawn_import_path():
    """Make sure spawned children can import this package.

    ``spawn`` re-imports the target module in a fresh interpreter; when
    the parent found the package through ``sys.path`` manipulation
    rather than ``PYTHONPATH``, the child would not.  Temporarily pin
    the package root into the environment around ``Process.start()``.
    """
    root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    existing = os.environ.get("PYTHONPATH")
    parts = existing.split(os.pathsep) if existing else []
    if root in parts:
        yield
        return
    os.environ["PYTHONPATH"] = os.pathsep.join([root, *parts])
    try:
        yield
    finally:
        if existing is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = existing


class ProcessShardBridge(Service):
    """Parent-side stand-in for one aggregator shard running out-of-proc.

    Duck-types the slice of :class:`~repro.core.aggregator.Aggregator`
    the rest of the system touches — ``config``, ``pump_once``,
    ``serve_api_once``, ``worker_specs``, the occupancy/flush-tuning
    hooks — so `ClusterMonitor`/`LustreMonitor` swap it in per shard
    based on the transport config and nothing downstream changes.
    """

    def __init__(
        self,
        shard_id: str,
        config,
        context: Context,
        registry=None,
        start_method: str = DEFAULT_START_METHOD,
        inbox_frames: int = DEFAULT_INBOX_FRAMES,
        relay_interval: float = DEFAULT_RELAY_INTERVAL,
    ) -> None:
        super().__init__(shard_id, registry)
        self.config = config
        self.context = context
        self.inbound = context.pull(hwm=config.hwm).bind(
            config.inbound_endpoint
        )
        self.publisher = context.pub(hwm=config.hwm).bind(
            config.publish_endpoint
        )
        self.api = context.rep(hwm=config.hwm).bind(config.api_endpoint)
        self._mp = multiprocessing.get_context(start_method)
        self._inbox_frames = inbox_frames
        self._inbox_q = None
        self._events_q = None
        self._proc = None
        self._pump_lock = threading.RLock()
        self._bid_counter = count(1)
        self._rid_counter = count(1)
        #: Forwarded-but-unacked batches, by batch id, in send order.
        self._inflight: dict[int, bytes] = {}
        self._pending_replies: dict[int, Any] = {}
        self._pending_requests: dict[int, bytes] = {}
        self._last_acked_seq = 0
        self._want_pubs = False
        self._flush_batch_events = config.batch_events
        self._tuning_dirty = False
        self._child_error: Optional[str] = None
        #: Consecutive child deaths without a single new ack — a child
        #: that cannot even start must not turn the pump into a fork
        #: storm; after a few fruitless respawns the bridge crashes
        #: itself and the supervisor's restart policy takes over.
        self._fruitless_respawns = 0
        self._spawn_acked = 0
        # Counters mirror the Aggregator's names so cluster stats read
        # uniformly across backends.
        self._batches_received = self.metrics.counter("batches_received")
        self._events_forwarded = self.metrics.counter("events_forwarded")
        self._batches_acked = self.metrics.counter("batches_acked")
        self._events_published = self.metrics.counter("events_published")
        self._batches_published = self.metrics.counter("batches_published")
        self._child_restarts = self.metrics.counter("child_restarts")
        self.metrics.gauge_fn("events_stored", lambda: self._last_acked_seq)
        self.metrics.gauge_fn(
            "store_len",
            lambda: min(self._last_acked_seq, config.store_max_events),
        )
        self.metrics.gauge_fn("inflight_batches", lambda: len(self._inflight))
        self.metrics.gauge_fn("inbound_depth", lambda: self.inbound.pending)
        self.metrics.gauge_fn("inbound_hwm", lambda: self.inbound.hwm)
        self.metrics.gauge_fn("inbound_credits", lambda: self.inbound.credits)
        self.metrics.gauge_fn("api_depth", lambda: self.api.pending)
        # Child→parent metrics relay: child registry snapshots merge
        # into the parent registry under this bridge's scope.  The epoch
        # bumps on every (re)spawn so relayed counters resume monotone
        # across child incarnations; parent-local series (the mirrors
        # above) always win over relayed ones.
        self.relay_interval = relay_interval
        self._relay_epoch = 0
        self._relay = RegistryRelay(
            self.metrics.registry,
            scope=self.metrics.scope,
            strip_scopes=(shard_id,),
        )
        self._relay_frames = self.metrics.counter("relay_frames")
        self._spawn()

    # -- tuning / observability hooks (Aggregator-compatible) ---------------

    def occupancy(self) -> tuple[int, int]:
        """(depth, capacity) for the adaptive flush controller — parent
        backlog plus batches already committed to the child."""
        return (self.inbound.pending + len(self._inflight), self.config.hwm)

    @property
    def flush_batch_events(self) -> int:
        return self._flush_batch_events

    @flush_batch_events.setter
    def flush_batch_events(self, value: int) -> None:
        with self._pump_lock:
            self._flush_batch_events = int(value)
            self._tuning_dirty = True

    @property
    def busy(self) -> bool:
        """True while any batch or request is still crossing the bridge."""
        return bool(
            self._inflight or self._pending_replies or self.inbound.pending
        )

    @property
    def events_stored(self) -> int:
        """Events the child has durably acked (same name as Aggregator)."""
        return self._last_acked_seq

    # -- child lifecycle ----------------------------------------------------

    def _spawn(self) -> None:
        self._inbox_q = self._mp.Queue(self._inbox_frames)
        self._events_q = self._mp.Queue(self._inbox_frames * 4 + 16)
        # New incarnation: relayed counters fold the dead child's final
        # values into their offsets.  Bumped before any frame from the
        # new child can arrive.
        self._relay_epoch += 1
        spec = ShardChildSpec(
            shard_id=self.name,
            config=self.config,
            start_seq=self._last_acked_seq + 1,
            want_pubs=self._want_pubs,
            flush_batch_events=(
                self._flush_batch_events
                if self._flush_batch_events != self.config.batch_events
                else None
            ),
            relay_interval=self.relay_interval,
        )
        self._proc = self._mp.Process(
            target=_shard_main,
            args=(spec, self._inbox_q, self._events_q),
            name=f"shard-{self.name}",
            daemon=True,
        )
        with _spawn_import_path():
            self._proc.start()
        self._spawn_acked = self._last_acked_seq
        # Replay: unacked batches in original order get their original
        # sequence numbers (the child was seeded past the acked ones).
        for bid, data in sorted(self._inflight.items()):
            self._inbox_q.put(("batch", bid, data))
        for rid, data in sorted(self._pending_requests.items()):
            self._inbox_q.put(("req", rid, data))
        self._tuning_dirty = self._flush_batch_events != self.config.batch_events

    def _discard_queues(self) -> None:
        for q in (self._inbox_q, self._events_q):
            if q is None:
                continue
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:
                pass
        self._inbox_q = self._events_q = None

    def _ensure_child(self) -> int:
        proc = self._proc
        if proc is not None and proc.is_alive():
            return 0
        if proc is not None:
            proc.join(timeout=0.5)
            # Whatever the dead child managed to emit is still real
            # work: acks clear in-flight, pubs reach subscribers.
            self._drain_child()
            self._discard_queues()
            self._child_restarts.inc()
            if self._last_acked_seq > self._spawn_acked:
                self._fruitless_respawns = 0
            else:
                self._fruitless_respawns += 1
                if self._fruitless_respawns >= 5:
                    raise ServiceCrash(
                        f"shard child {self.name!r} keeps dying without "
                        f"progress (last error: {self._child_error})"
                    )
        self._spawn()
        return 1

    def request_metrics(self) -> bool:
        """Ask the child for an immediate registry snapshot (the reply
        arrives as a ``metrics`` frame on a later pump).  Returns False
        when the control queue is full — retry on the next pump."""
        try:
            self._inbox_q.put_nowait(("relay",))
            return True
        except Exception:
            return False

    @property
    def relay_merges(self) -> int:
        """Relay snapshots merged into the parent registry so far."""
        return self._relay.merges

    def kill_child(self) -> None:
        """SIGKILL the shard process (failover testing).  The next pump
        respawns it and replays the in-flight batches."""
        proc = self._proc
        if proc is not None and proc.is_alive():
            proc.kill()
            proc.join(timeout=2.0)

    def _shutdown_child(self) -> None:
        proc = self._proc
        if proc is None:
            return
        if proc.is_alive():
            try:
                self._inbox_q.put(("stop",), timeout=0.2)
            except Exception:
                pass
            proc.join(timeout=1.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=1.0)
        self._discard_queues()
        self._proc = None

    # -- pumping ------------------------------------------------------------

    def _inbox_capacity(self) -> int:
        try:
            depth = self._inbox_q.qsize()
        except (NotImplementedError, OSError):
            depth = 0
        return max(self._inbox_frames - depth, 0)

    def _sync_want_pubs(self) -> int:
        # _want_pubs tracks what the child believes; it only advances
        # when the frame is actually queued (put_nowait, so a wedged or
        # dying child can never block the pump — the sync just retries).
        has_subs = self.publisher.subscriber_count > 0
        work = 0
        if has_subs != self._want_pubs:
            try:
                self._inbox_q.put_nowait(("want", has_subs))
                self._want_pubs = has_subs
                work += 1
            except queue.Full:
                pass
        if self._tuning_dirty:
            try:
                self._inbox_q.put_nowait(
                    ("tune", {"batch_events": self._flush_batch_events})
                )
                self._tuning_dirty = False
                work += 1
            except queue.Full:
                pass  # retried on the next pump
        return work

    def _forward_reports(self) -> int:
        work = 0
        capacity = self._inbox_capacity()
        while capacity > 0:
            try:
                payload = self.inbound.recv(block=False)
            except WouldBlock:
                break
            bid = next(self._bid_counter)
            data = encode_report(payload)
            self._inflight[bid] = data
            self._inbox_q.put(("batch", bid, data))
            self._batches_received.inc()
            try:
                self._events_forwarded.inc(len(payload))
            except TypeError:
                pass
            capacity -= 1
            work += 1
        return work

    def _forward_requests(self) -> int:
        work = 0
        while True:
            try:
                request, channel = self.api.recv(timeout=0)
            except WouldBlock:
                break
            rid = next(self._rid_counter)
            data = pickle.dumps(request)
            self._pending_replies[rid] = channel
            self._pending_requests[rid] = data
            try:
                self._inbox_q.put(("req", rid, data), timeout=1.0)
            except queue.Full:
                # Give the request back to the REP mailbox untouched.
                self._pending_replies.pop(rid, None)
                self._pending_requests.pop(rid, None)
                self.api._requests.requeue([(request, channel)])
                break
            work += 1
        return work

    def _handle_frame(self, frame) -> None:
        kind = frame[0]
        if kind == "pub":
            topic, data = frame[1], frame[2]
            if self.publisher.subscriber_count:
                batch = decode_entries(data)
                self.publisher.send(topic, batch)
                self._batches_published.inc()
                self._events_published.inc(len(batch))
        elif kind == "ack":
            bid, last_seq = frame[1], frame[2]
            self._inflight.pop(bid, None)
            self._last_acked_seq = max(self._last_acked_seq, last_seq)
            self._batches_acked.inc()
        elif kind == "reply":
            rid, data = frame[1], frame[2]
            channel = self._pending_replies.pop(rid, None)
            self._pending_requests.pop(rid, None)
            if channel is not None:
                channel.send(pickle.loads(data))
        elif kind == "metrics":
            self._relay.merge(decode_state(frame[1]), self._relay_epoch)
            self._relay_frames.inc()
        elif kind == "crashed":
            self._child_error = frame[1]
            self._service_log.warning(
                "shard child crashed: %s", self._child_error
            )

    def _drain_child(self) -> int:
        work = 0
        while True:
            try:
                frame = self._events_q.get_nowait()
            except (queue.Empty, OSError, ValueError):
                break
            self._handle_frame(frame)
            work += 1
        return work

    def pump_once(self, timeout: float = 0.0) -> int:
        """One bridge sweep; returns the number of frames moved.

        Order matters: child liveness first (respawn+replay), then the
        want-pubs/tuning sync (control frames precede data in the
        FIFO), then report/API forwarding, then the child's output.
        *timeout* is accepted for Aggregator signature compatibility;
        the bridge never blocks — the service worker's idle backoff
        provides the waiting.
        """
        with self._pump_lock:
            work = self._ensure_child()
            work += self._sync_want_pubs()
            work += self._forward_reports()
            work += self._forward_requests()
            work += self._drain_child()
            return work

    def serve_api_once(self, timeout: float = 0.0) -> bool:
        """Pump until the bridge settles one step (MonitorClient's
        deterministic ``call_with_pump`` driver calls this)."""
        work = self.pump_once()
        if work == 0 and timeout > 0:
            time.sleep(min(timeout, 0.005))
        return work > 0

    # -- service runtime ----------------------------------------------------

    def worker_specs(self) -> list[WorkerSpec]:
        return [
            WorkerSpec(
                "bridge", self.pump_once,
                idle_wait=0.0005, max_idle_wait=0.01,
            )
        ]

    def on_stop(self) -> None:
        # Final settle: collect outstanding acks/replies so a stop in
        # the middle of a burst does not leave batches unaccounted.
        deadline = time.monotonic() + 2.0
        while self.busy and time.monotonic() < deadline:
            if self.pump_once() == 0:
                time.sleep(0.002)

    def on_close(self) -> None:
        with self._pump_lock:
            self._shutdown_child()
        self.inbound.close()
        self.publisher.close()
        self.api.close()


class MultiprocTransport(Context):
    """An inproc context extended with the process-per-shard factory.

    Parent-side sockets are ordinary inproc sockets (collectors,
    consumers, and clients need no changes); :meth:`process_shard`
    manufactures the bridges that put each shard's aggregation work in
    its own process.  Closing the transport shuts the bridges (and
    their children) down first, then the socket population.
    """

    scheme = "multiproc"

    def __init__(self, start_method: str = DEFAULT_START_METHOD) -> None:
        super().__init__()
        self.start_method = start_method
        self._bridges: list[ProcessShardBridge] = []

    def process_shard(
        self, shard_id: str, config, registry=None,
        relay_interval: float = DEFAULT_RELAY_INTERVAL,
    ) -> ProcessShardBridge:
        """Spawn one shard's child process and return its bridge."""
        bridge = ProcessShardBridge(
            shard_id, config, self,
            registry=registry, start_method=self.start_method,
            relay_interval=relay_interval,
        )
        self._bridges.append(bridge)
        return bridge

    def close(self) -> None:
        for bridge in self._bridges:
            bridge.close()
        self._bridges.clear()
        super().close()
