"""Wire framing for the multiproc transport's data plane.

The process-per-shard bridge moves report batches and published event
batches across ``multiprocessing`` queues.  Putting the domain objects
on a queue directly would deep-pickle every :class:`FileEvent`
(per-object reduce calls, class lookups on load) — the slow path the
transport refactor exists to avoid.  Instead the data plane is framed
here: each event is flattened to a tuple of primitives and the whole
batch serialised with :mod:`marshal`, CPython's C-speed codec for
primitive containers.  The queue then carries one opaque ``bytes``
blob, and the receiving process rebuilds the dataclasses with plain
positional construction.

``marshal`` is interpreter-version-specific, which is exactly the
bridge's situation (parent and child are the same interpreter on the
same host) — this is *framing for a process boundary*, not a storage
format.  Payloads that are not event batches (injected test doubles,
future wire types) fall back to pickle, flagged by a one-byte prefix;
the control plane (API requests/replies, exceptions) always uses
pickle since it carries arbitrary objects and is off the hot path.
"""

from __future__ import annotations

import dataclasses
import marshal
import pickle
from typing import Any

from repro.core.events import EventBatch, EventType, FileEvent, ReportBatch

_MARSHAL = b"M"
_PICKLE = b"P"

#: EventType values round-trip as their strings; resolve via one dict
#: lookup instead of the Enum constructor on the decode hot path.
_EVENT_TYPES = {member.value: member for member in EventType}

#: Field names in dataclass order — the wire order of _event_tuple.
_EVENT_FIELDS = tuple(field.name for field in dataclasses.fields(FileEvent))


def _compile_event_builder():
    """Code-generate the decode-side event constructor.

    A frozen dataclass assigns every field through a guarded
    ``object.__setattr__`` — 13 per event, the dominant cost of the
    decode hot path.  FileEvent defines no ``__slots__`` and no
    ``__post_init__``, so an identical instance can be produced by
    swapping a fully-built ``__dict__`` into a bare instance.  The
    generated lambda builds that dict as a single literal (one
    ``BUILD_MAP`` with constant keys) instead of ``dict(zip(...))``,
    which measures ~35% faster end to end than positional
    construction.
    """
    entries = ", ".join(
        f"{name!r}: " + ("_types[d[0]]" if index == 0 else f"d[{index}]")
        for index, name in enumerate(_EVENT_FIELDS)
    )
    source = (
        "lambda d, _new=object.__new__, _set=object.__setattr__, "
        "_cls=_cls, _types=_types: "
        f"(e := _new(_cls), _set(e, '__dict__', {{{entries}}}))[0]"
    )
    return eval(source, {"_cls": FileEvent, "_types": _EVENT_TYPES})


_build_event = _compile_event_builder()


def _event_tuple(event: FileEvent) -> tuple:
    """Flatten one event to primitives, in dataclass field order."""
    return (
        event.event_type.value,
        event.path,
        event.is_dir,
        event.timestamp,
        event.name,
        event.source,
        event.fid,
        event.parent_fid,
        event.mdt_index,
        event.record_index,
        event.record_type,
        event.old_path,
        event.jobid,
    )


def _event_from(data: tuple) -> FileEvent:
    """Rebuild an event from :func:`_event_tuple` output."""
    return _build_event(data)


def encode_report(payload: Any) -> bytes:
    """Frame one collector→aggregator report (list or ReportBatch)."""
    if isinstance(payload, ReportBatch):
        events, collected_ts = payload.events, payload.collected_ts
    elif isinstance(payload, list):
        events, collected_ts = payload, None
    else:
        return _PICKLE + pickle.dumps(payload)
    try:
        return _MARSHAL + marshal.dumps(
            (collected_ts, [_event_tuple(event) for event in events])
        )
    except (AttributeError, TypeError, ValueError):
        # Not a pure FileEvent batch (test doubles etc.) — fall back.
        return _PICKLE + pickle.dumps(payload)


def decode_report(data: bytes) -> Any:
    """Inverse of :func:`encode_report` (ReportBatch iff it was traced)."""
    if data[:1] == _PICKLE:
        return pickle.loads(data[1:])
    collected_ts, tuples = marshal.loads(data[1:])
    events = [_event_from(item) for item in tuples]
    if collected_ts is not None:
        return ReportBatch(tuple(events), collected_ts)
    return events


def encode_entries(batch: EventBatch) -> bytes:
    """Frame one published EventBatch (stage stamps + shard preserved)."""
    try:
        return _MARSHAL + marshal.dumps(
            (
                batch.collected_ts,
                batch.aggregated_ts,
                batch.published_ts,
                batch.shard,
                [(seq, _event_tuple(event)) for seq, event in batch.entries],
            )
        )
    except (AttributeError, TypeError, ValueError):
        return _PICKLE + pickle.dumps(batch)


def decode_entries(data: bytes) -> EventBatch:
    """Inverse of :func:`encode_entries`."""
    if data[:1] == _PICKLE:
        return pickle.loads(data[1:])
    collected_ts, aggregated_ts, published_ts, shard, entries = marshal.loads(
        data[1:]
    )
    return EventBatch(
        tuple((seq, _event_from(item)) for seq, item in entries),
        collected_ts=collected_ts,
        aggregated_ts=aggregated_ts,
        published_ts=published_ts,
        shard=shard,
    )
