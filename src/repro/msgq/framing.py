"""Wire framing for the multiproc transport's data plane.

The process-per-shard bridge moves report batches and published event
batches across ``multiprocessing`` queues.  Putting the domain objects
on a queue directly would deep-pickle every :class:`FileEvent`
(per-object reduce calls, class lookups on load) — the slow path the
transport refactor exists to avoid.  Instead the data plane is framed
here: each event is flattened to a tuple of primitives and the whole
batch serialised with :mod:`marshal`, CPython's C-speed codec for
primitive containers.  The queue then carries one opaque ``bytes``
blob, and the receiving process rebuilds the dataclasses with plain
positional construction.

``marshal`` is interpreter-version-specific, which is exactly the
bridge's situation (parent and child are the same interpreter on the
same host) — this is *framing for a process boundary*, not a storage
format.  Payloads that are not event batches (injected test doubles,
future wire types) fall back to pickle, flagged by a one-byte prefix;
the control plane (API requests/replies, exceptions) always uses
pickle since it carries arbitrary objects and is off the hot path.

The durable segment log (``repro.core.storage.segments``) shares the
same flattened field order through :func:`pack_entry` /
:func:`unpack_entry` — a *version-stable* fixed-layout binary record
(``struct``-packed primitives, length-prefixed UTF-8 strings) that,
unlike marshal, is safe to read back across interpreter upgrades.
One field order, two codecs: marshal for the process boundary,
struct for disk.
"""

from __future__ import annotations

import dataclasses
import marshal
import pickle
import struct
from typing import Any, Optional

from repro.core.events import EventBatch, EventType, FileEvent, ReportBatch

_MARSHAL = b"M"
_PICKLE = b"P"

#: EventType values round-trip as their strings; resolve via one dict
#: lookup instead of the Enum constructor on the decode hot path.
_EVENT_TYPES = {member.value: member for member in EventType}

#: Field names in dataclass order — the wire order of _event_tuple.
_EVENT_FIELDS = tuple(field.name for field in dataclasses.fields(FileEvent))


def _compile_event_builder():
    """Code-generate the decode-side event constructor.

    A frozen dataclass assigns every field through a guarded
    ``object.__setattr__`` — 13 per event, the dominant cost of the
    decode hot path.  FileEvent defines no ``__slots__`` and no
    ``__post_init__``, so an identical instance can be produced by
    swapping a fully-built ``__dict__`` into a bare instance.  The
    generated lambda builds that dict as a single literal (one
    ``BUILD_MAP`` with constant keys) instead of ``dict(zip(...))``,
    which measures ~35% faster end to end than positional
    construction.
    """
    entries = ", ".join(
        f"{name!r}: " + ("_types[d[0]]" if index == 0 else f"d[{index}]")
        for index, name in enumerate(_EVENT_FIELDS)
    )
    source = (
        "lambda d, _new=object.__new__, _set=object.__setattr__, "
        "_cls=_cls, _types=_types: "
        f"(e := _new(_cls), _set(e, '__dict__', {{{entries}}}))[0]"
    )
    return eval(source, {"_cls": FileEvent, "_types": _EVENT_TYPES})


_build_event = _compile_event_builder()


def _event_tuple(event: FileEvent) -> tuple:
    """Flatten one event to primitives, in dataclass field order."""
    return (
        event.event_type.value,
        event.path,
        event.is_dir,
        event.timestamp,
        event.name,
        event.source,
        event.fid,
        event.parent_fid,
        event.mdt_index,
        event.record_index,
        event.record_type,
        event.old_path,
        event.jobid,
    )


def _event_from(data: tuple) -> FileEvent:
    """Rebuild an event from :func:`_event_tuple` output."""
    return _build_event(data)


def encode_report(payload: Any) -> bytes:
    """Frame one collector→aggregator report (list or ReportBatch)."""
    if isinstance(payload, ReportBatch):
        events, collected_ts = payload.events, payload.collected_ts
    elif isinstance(payload, list):
        events, collected_ts = payload, None
    else:
        return _PICKLE + pickle.dumps(payload)
    try:
        return _MARSHAL + marshal.dumps(
            (collected_ts, [_event_tuple(event) for event in events])
        )
    except (AttributeError, TypeError, ValueError):
        # Not a pure FileEvent batch (test doubles etc.) — fall back.
        return _PICKLE + pickle.dumps(payload)


def decode_report(data: bytes) -> Any:
    """Inverse of :func:`encode_report` (ReportBatch iff it was traced)."""
    if data[:1] == _PICKLE:
        return pickle.loads(data[1:])
    collected_ts, tuples = marshal.loads(data[1:])
    events = [_event_from(item) for item in tuples]
    if collected_ts is not None:
        return ReportBatch(tuple(events), collected_ts)
    return events


def encode_entries(batch: EventBatch) -> bytes:
    """Frame one published EventBatch (stage stamps + shard preserved)."""
    try:
        return _MARSHAL + marshal.dumps(
            (
                batch.collected_ts,
                batch.aggregated_ts,
                batch.published_ts,
                batch.shard,
                [(seq, _event_tuple(event)) for seq, event in batch.entries],
            )
        )
    except (AttributeError, TypeError, ValueError):
        return _PICKLE + pickle.dumps(batch)


def decode_entries(data: bytes) -> EventBatch:
    """Inverse of :func:`encode_entries`."""
    if data[:1] == _PICKLE:
        return pickle.loads(data[1:])
    collected_ts, aggregated_ts, published_ts, shard, entries = marshal.loads(
        data[1:]
    )
    return EventBatch(
        tuple((seq, _event_from(item)) for seq, item in entries),
        collected_ts=collected_ts,
        aggregated_ts=aggregated_ts,
        published_ts=published_ts,
        shard=shard,
    )


# ---------------------------------------------------------------------------
# Fixed-layout binary event records (the segment-log storage format)
# ---------------------------------------------------------------------------

#: Bump when the record layout below changes; segment files carry it in
#: their header so recovery can refuse records it cannot parse.
RECORD_LAYOUT_VERSION = 1

#: EventType members in wire order — the on-disk type code is an index
#: into this tuple (layout-versioned: reordering the enum requires a
#: RECORD_LAYOUT_VERSION bump).
_TYPE_BY_CODE = tuple(member.value for member in EventType)
_CODE_BY_TYPE = {member: code for code, member in enumerate(EventType)}

#: Fixed prefix of every record: sequence number (u64), timestamp
#: (f64), event-type code (u8), flag bits (u8: 0=is_dir, 1=mdt_index
#: present, 2=record_index present), mdt_index (i32, 0 when absent),
#: record_index (i64, 0 when absent).  Absent numerics are still
#: written so the prefix is the same 30 bytes for every record.
_RECORD_FIXED = struct.Struct("<QdBBiq")
_STRING_LEN = struct.Struct("<I")

_FLAG_IS_DIR = 1
_FLAG_MDT = 2
_FLAG_RECORD_INDEX = 4

#: The record's string fields, in flattened-tuple order (the same
#: field order the marshal wire codec uses).  ``name`` and ``source``
#: are non-optional in the dataclass but share the presence-mask
#: treatment for layout uniformity.
_STRING_FIELDS = (
    "path", "name", "source", "fid", "parent_fid",
    "record_type", "old_path", "jobid",
)


def pack_entry(seq: int, event: FileEvent) -> bytes:
    """Serialise one ``(seq, event)`` store entry to its binary record.

    Version-stable: only ``struct``-packed primitives and
    length-prefixed UTF-8 — no marshal/pickle — so a segment log
    written by one interpreter is readable by the next.
    """
    flags = 0
    if event.is_dir:
        flags |= _FLAG_IS_DIR
    if event.mdt_index is not None:
        flags |= _FLAG_MDT
    if event.record_index is not None:
        flags |= _FLAG_RECORD_INDEX
    out = bytearray(
        _RECORD_FIXED.pack(
            seq,
            event.timestamp,
            _CODE_BY_TYPE[event.event_type],
            flags,
            event.mdt_index or 0,
            event.record_index or 0,
        )
    )
    mask = 0
    encoded: list[Optional[bytes]] = []
    for bit, field in enumerate(_STRING_FIELDS):
        value = getattr(event, field)
        if value is None:
            encoded.append(None)
        else:
            mask |= 1 << bit
            encoded.append(value.encode("utf-8"))
    out.append(mask)
    for data in encoded:
        if data is not None:
            out += _STRING_LEN.pack(len(data))
            out += data
    return bytes(out)


def unpack_entry(buffer, offset: int = 0) -> tuple[int, FileEvent, int]:
    """Inverse of :func:`pack_entry` over any buffer (bytes, mmap,
    memoryview); returns ``(seq, event, next_offset)``.

    Raises ``struct.error`` / ``IndexError`` on a truncated buffer and
    ``ValueError`` on garbage — recovery treats all three as a torn
    tail record.
    """
    seq, timestamp, type_code, flags, mdt_index, record_index = (
        _RECORD_FIXED.unpack_from(buffer, offset)
    )
    offset += _RECORD_FIXED.size
    mask = buffer[offset]
    offset += 1
    strings: list[Optional[str]] = []
    for bit in range(len(_STRING_FIELDS)):
        if mask & (1 << bit):
            (length,) = _STRING_LEN.unpack_from(buffer, offset)
            offset += _STRING_LEN.size
            end = offset + length
            if end > len(buffer):
                raise ValueError("truncated string field")
            strings.append(bytes(buffer[offset:end]).decode("utf-8"))
            offset = end
        else:
            strings.append(None)
    path, name, source, fid, parent_fid, record_type, old_path, jobid = strings
    event = _build_event((
        _TYPE_BY_CODE[type_code],
        path,
        bool(flags & _FLAG_IS_DIR),
        timestamp,
        name,
        source,
        fid,
        parent_fid,
        mdt_index if flags & _FLAG_MDT else None,
        record_index if flags & _FLAG_RECORD_INDEX else None,
        record_type,
        old_path,
        jobid,
    ))
    return seq, event, offset
