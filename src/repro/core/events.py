"""The normalized file-event vocabulary shared by the whole system.

Ripple agents consume events from two very different detectors — local
inotify/watchdog observers and the Lustre ChangeLog monitor — so both are
normalized into :class:`FileEvent`, carrying the user-friendly absolute
path (the whole point of the monitor's processing step) plus enough
provenance (FIDs, MDT index, record index) for debugging and exactly-once
bookkeeping downstream.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from enum import Enum
from functools import lru_cache
from typing import Any, Optional

from repro.lustre.changelog import ChangelogRecord, RecordType


@lru_cache(maxsize=4096)
def prefix_probe(prefix: str) -> str:
    """The ``startswith`` probe for prefix matching, computed once.

    :meth:`FileEvent.matches_prefix` needs ``prefix.rstrip("/") + "/"``
    per call; hot paths (rule matching, store queries, subscription
    filters) compute it once and pass it back in, and ad-hoc callers
    get memoization for free via the cache.
    """
    return prefix.rstrip("/") + "/"


class EventType(Enum):
    """Normalized event kinds."""

    CREATED = "created"
    DELETED = "deleted"
    MODIFIED = "modified"
    ATTRIB = "attrib"
    MOVED = "moved"
    OTHER = "other"


#: How ChangeLog record types map onto the normalized vocabulary.
RECORD_TYPE_MAP: dict[RecordType, EventType] = {
    RecordType.CREAT: EventType.CREATED,
    RecordType.MKDIR: EventType.CREATED,
    RecordType.HLINK: EventType.CREATED,
    RecordType.SLINK: EventType.CREATED,
    RecordType.MKNOD: EventType.CREATED,
    RecordType.UNLNK: EventType.DELETED,
    RecordType.RMDIR: EventType.DELETED,
    RecordType.RENME: EventType.MOVED,
    RecordType.RNMTO: EventType.MOVED,
    RecordType.CLOSE: EventType.MODIFIED,
    RecordType.TRUNC: EventType.MODIFIED,
    RecordType.MTIME: EventType.MODIFIED,
    RecordType.LYOUT: EventType.MODIFIED,
    RecordType.SATTR: EventType.ATTRIB,
    RecordType.XATTR: EventType.ATTRIB,
    RecordType.CTIME: EventType.ATTRIB,
    RecordType.ATIME: EventType.ATTRIB,
    RecordType.MARK: EventType.OTHER,
    RecordType.OPEN: EventType.OTHER,
    RecordType.HSM: EventType.OTHER,
}

#: Directory-producing record types (is_dir derivation).
_DIR_RECORD_TYPES = frozenset({RecordType.MKDIR, RecordType.RMDIR})


@dataclass(frozen=True)
class FileEvent:
    """One normalized file event.

    ``path`` may be None when FID resolution failed (e.g. the file was
    deleted before its creation record was processed) — consumers decide
    whether such events are still actionable via ``name``/``parent_fid``.
    """

    event_type: EventType
    path: Optional[str]
    is_dir: bool
    timestamp: float
    name: str
    source: str  # 'lustre' | 'inotify'
    fid: Optional[str] = None
    parent_fid: Optional[str] = None
    mdt_index: Optional[int] = None
    record_index: Optional[int] = None
    record_type: Optional[str] = None
    old_path: Optional[str] = None  # MOVED: the pre-rename path
    #: JobID of the originating client operation, when jobstats tagged it.
    jobid: Optional[str] = None

    # -- construction -----------------------------------------------------

    @classmethod
    def from_changelog(
        cls,
        record: ChangelogRecord,
        path: Optional[str],
        mdt_index: int,
        old_path: Optional[str] = None,
    ) -> "FileEvent":
        """Build an event from a ChangeLog record plus resolved path(s)."""
        event_type = RECORD_TYPE_MAP.get(record.rec_type, EventType.OTHER)
        return cls(
            event_type=event_type,
            path=path,
            is_dir=record.rec_type in _DIR_RECORD_TYPES,
            timestamp=record.timestamp,
            name=record.name,
            source="lustre",
            fid=record.target_fid.short(),
            parent_fid=record.parent_fid.short(),
            mdt_index=mdt_index,
            record_index=record.index,
            record_type=record.rec_type.mnemonic,
            old_path=old_path,
            jobid=record.jobid,
        )

    @classmethod
    def from_watchdog(cls, event: Any) -> "FileEvent":
        """Build an event from a watchdog-style FileSystemEvent."""
        mapping = {
            "created": EventType.CREATED,
            "deleted": EventType.DELETED,
            "modified": EventType.MODIFIED,
            "attrib": EventType.ATTRIB,
            "moved": EventType.MOVED,
        }
        event_type = mapping.get(event.event_type, EventType.OTHER)
        path = event.dest_path if event.event_type == "moved" else event.src_path
        old_path = event.src_path if event.event_type == "moved" else None
        name = path.rsplit("/", 1)[-1] if path else ""
        return cls(
            event_type=event_type,
            path=path,
            is_dir=event.is_directory,
            timestamp=event.timestamp,
            name=name,
            source="inotify",
            old_path=old_path,
        )

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe dict (enums become their string values)."""
        data = asdict(self)
        data["event_type"] = self.event_type.value
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FileEvent":
        """Inverse of :meth:`to_dict`."""
        payload = dict(data)
        payload["event_type"] = EventType(payload["event_type"])
        return cls(**payload)

    # -- convenience ---------------------------------------------------------

    @property
    def resolved(self) -> bool:
        """True when the event carries a usable absolute path."""
        return self.path is not None

    def matches_prefix(self, prefix: str, probe: Optional[str] = None) -> bool:
        """True if the event's path (or old path) is under *prefix*.

        *probe* is the pre-normalized ``prefix_probe(prefix)`` value;
        hot loops compute it once per prefix instead of per event.
        """
        if probe is None:
            probe = prefix_probe(prefix)
        for candidate in (self.path, self.old_path):
            if candidate is None:
                continue
            if prefix == "/" or candidate == prefix or candidate.startswith(
                probe
            ):
                return True
        return False


# ---------------------------------------------------------------------------
# Batch wire format
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EventBatch:
    """A sequenced batch of events — the PUB wire format.

    The Aggregator stores a whole collector batch atomically and
    publishes one :class:`EventBatch` per contiguous same-topic run of
    the batch instead of one message per event, amortising fabric work
    over the batch (the §4 "minimal overhead" property).  ``entries``
    are ``(seq, event)`` pairs in publish order; sequence numbers are
    contiguous within one message, and messages go out in global
    sequence order so broad-prefix subscribers see monotone seqs.

    Traced batches additionally carry **stage timestamps** — stamped
    once per batch by the collector (``collected_ts``) and aggregator
    (``aggregated_ts`` at store time, ``published_ts`` at PUB send), so
    downstream stages can record stage-to-stage latency deltas without
    per-event work.  ``None`` means the batch was not sampled (or came
    from a pre-tracing publisher); consumers must treat the stamps as
    optional.

    ``shard`` names the aggregator shard that published the batch when
    it came from a sharded cluster; single-aggregator monitors leave it
    ``None``.  Sequence numbers are only monotone *per shard*, so
    consumers subscribed to several shards key their watermark on it.
    """

    entries: tuple[tuple[int, "FileEvent"], ...]
    collected_ts: Optional[float] = None
    aggregated_ts: Optional[float] = None
    published_ts: Optional[float] = None
    shard: Optional[str] = None

    def __post_init__(self) -> None:
        # Normalise lists to tuples so batches stay hashable/frozen.
        if not isinstance(self.entries, tuple):
            object.__setattr__(self, "entries", tuple(self.entries))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def first_seq(self) -> Optional[int]:
        return self.entries[0][0] if self.entries else None

    @property
    def last_seq(self) -> Optional[int]:
        return self.entries[-1][0] if self.entries else None


def iter_entries(payload: Any) -> tuple[tuple[int, "FileEvent"], ...]:
    """Normalise a published payload into ``(seq, event)`` entries.

    The compatibility shim for the batch wire format: new publishers
    send :class:`EventBatch` (optionally carrying stage timestamps);
    pre-batching publishers sent a single ``(seq, event)`` tuple.
    Subscribers call this instead of unpacking, so both generations of
    publisher interoperate.
    """
    if isinstance(payload, EventBatch):
        return payload.entries
    seq, event = payload  # legacy single-event message
    return ((seq, event),)


@dataclass(frozen=True)
class ReportBatch:
    """A traced collector→aggregator report — the PUSH wire format.

    A sampled collector report wraps its events with the collection
    stamp so the aggregator can record the collect→aggregate latency.
    The class is sequence-like (``len``/``iter``/indexing), so sinks
    and stores written against plain event lists handle it unchanged;
    unsampled reports stay plain lists and pay zero tracing cost.
    """

    events: tuple["FileEvent", ...]
    collected_ts: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __getitem__(self, index):
        return self.events[index]


def iter_report(payload: Any) -> tuple[list["FileEvent"], Optional[float]]:
    """Normalise an inbound report into ``(events, collected_ts)``.

    The PUSH-side compatibility shim: traced collectors send
    :class:`ReportBatch`, untraced (and pre-tracing) collectors send a
    plain event list — the aggregator accepts both.
    """
    if isinstance(payload, ReportBatch):
        return list(payload.events), payload.collected_ts
    return payload, None


#: Flat per-event overhead assumed by the byte-based flush policy (the
#: same O(1) estimate EventStore uses for its memory gauge).
EVENT_OVERHEAD_BYTES = 256


def approx_wire_bytes(event: "FileEvent") -> int:
    """Rough serialised size of one event, for ``batch_bytes`` policies."""
    size = EVENT_OVERHEAD_BYTES
    for text in (event.path, event.old_path, event.name):
        if text:
            size += len(text)
    return size
