"""Hierarchical aggregation: relay aggregators for multi-tier fan-in.

The paper's monitor uses a "hierarchical publisher-subscriber model";
within one filesystem that is Collectors → Aggregator.  At facility
scale there are *many* filesystems (home, project, scratch, campaign
stores), each with its own monitor.  A :class:`RelayAggregator`
subscribes to any number of upstream aggregators' publish endpoints and
re-publishes their streams as one — same rotating store, same historic
API — so a Ripple agent can watch the whole facility through a single
subscription.

Relayed events get fresh sequence numbers in the relay's numbering
space; upstream provenance is preserved in ``RelayedEvent``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.aggregator import Aggregator, AggregatorConfig
from repro.core.events import FileEvent, ReportBatch, iter_entries
from repro.errors import WouldBlock
from repro.msgq import Transport, make_transport


@dataclass(frozen=True)
class RelayedEvent:
    """Provenance wrapper: where an event came from before the relay."""

    upstream: str
    upstream_seq: int
    event: FileEvent


class RelayAggregator(Aggregator):
    """An Aggregator fed by other aggregators instead of collectors.

    Use :meth:`add_upstream` to subscribe to each source, then drive it
    like any aggregator (``pump_once`` in step mode, ``start()`` live).
    The relay stores and republishes the *inner* :class:`FileEvent`, so
    downstream consumers are oblivious to the hierarchy; provenance is
    available via ``relayed_count`` and the per-upstream counters.
    """

    def __init__(
        self,
        context: Transport,
        config: AggregatorConfig | None = None,
        registry=None,
        name: str = "relay",
    ) -> None:
        super().__init__(context, config, registry=registry, name=name)
        self._upstreams: list[tuple[str, object]] = []  # (name, SubSocket)
        #: Events relayed per upstream name.
        self.relayed_counts: dict[str, int] = {}
        self._events_relayed = self.metrics.counter("events_relayed")

    def add_upstream(
        self,
        publish_endpoint: str,
        name: Optional[str] = None,
        topic: str = "events",
        upstream_context: Transport | None = None,
    ) -> str:
        """Subscribe to an upstream aggregator's publish endpoint.

        *upstream_context* lets the relay bridge endpoints living in a
        different messaging context (each monitor builds its own by
        default).  Returns the upstream's name.
        """
        context = upstream_context or self.context
        label = name or f"upstream-{len(self._upstreams)}"
        subscription = (
            context.sub(hwm=self.config.hwm)
            .connect(publish_endpoint)
            .subscribe(topic)
        )
        self._upstreams.append((label, subscription))
        self.relayed_counts[label] = 0
        return label

    def pump_once(self, timeout: float = 0.0) -> int:
        """Drain every upstream subscription, then any direct inbound.

        Upstream messages are drained batch-wise (one fabric operation
        per subscription) and re-ingested as whole batches, so a relay
        preserves the upstream's batch amortisation instead of
        dissolving it back into per-event work.  The
        :func:`~repro.core.events.iter_entries` shim accepts both batch
        and legacy single-event upstream publishers.

        Tracing: a stamped upstream batch records the ``relay`` stage
        (upstream PUB send → relay re-ingest) and is re-ingested with
        its original ``collected_ts`` preserved, so the downstream
        ``aggregate`` delta still measures from first collection.
        """
        handled = 0
        for label, subscription in self._upstreams:
            try:
                messages = subscription.recv_many(block=False)
            except WouldBlock:
                continue
            for _topic, payload in messages:
                entries = iter_entries(payload)
                events = [event for _seq, event in entries]
                published_ts = getattr(payload, "published_ts", None)
                if published_ts is not None and self.tracer.enabled:
                    self.tracer.record(
                        "relay", self.tracer.now() - published_ts
                    )
                    collected_ts = getattr(payload, "collected_ts", None)
                    if collected_ts is not None:
                        events = ReportBatch(tuple(events), collected_ts)
                self._handle_batch(events)
                self.relayed_counts[label] += len(entries)
                self._events_relayed.inc(len(entries))
                handled += len(entries)
        # Also accept directly-pushed batches (a relay can serve both
        # roles at once).
        handled += super().pump_once(timeout=timeout)
        return handled

    @property
    def relayed_count(self) -> int:
        """Total events relayed from all upstreams."""
        return sum(self.relayed_counts.values())


def facility_relay(
    monitors,
    names: Optional[list[str]] = None,
    config: AggregatorConfig | None = None,
) -> RelayAggregator:
    """Build a relay over several LustreMonitors (one per filesystem).

    The relay gets its own messaging context with distinct endpoints so
    its consumers do not collide with per-monitor consumers.
    """
    relay_config = config or AggregatorConfig(
        inbound_endpoint="inproc://facility-aggregator",
        publish_endpoint="inproc://facility-events",
        api_endpoint="inproc://facility-history",
    )
    relay = RelayAggregator(make_transport("inproc"), relay_config)
    for index, monitor in enumerate(monitors):
        label = names[index] if names else f"fs{index}"
        relay.add_upstream(
            monitor.config.aggregator.publish_endpoint,
            name=label,
            topic=monitor.config.aggregator.publish_topic,
            upstream_context=monitor.context,
        )
    return relay
