"""FSMonitor-style facade: one monitoring interface, many backends.

The authors' follow-up work (FSMonitor) generalises event capture
across storage systems behind a single API.  :class:`StorageMonitor`
is that facade here: given *any* supported filesystem it picks the
right detection backend —

* :class:`LustreFilesystem` → the scalable ChangeLog monitor (the
  paper's contribution; complete stream, site-wide);
* :class:`MemoryFilesystem` → watchdog/inotify observation (personal
  devices; per-directory watches, lossy under burst);
* anything walkable, as an explicit opt-in → the polling baseline
  (portable, expensive, misses short-lived files).

All backends deliver the same normalized :class:`FileEvent` stream via
``subscribe(callback)`` and support step (``drain``) and live
(``start``/``stop``) operation, so a Ripple agent — or any consumer —
is written once.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.baselines.polling import PollingMonitor
from repro.core.events import FileEvent
from repro.core.monitor import LustreMonitor, MonitorConfig
from repro.errors import MonitorError
from repro.fs.memfs import MemoryFilesystem
from repro.fs.watchdog import FileSystemEvent, FileSystemEventHandler, Observer
from repro.lustre.filesystem import LustreFilesystem
from repro.runtime import Service, WorkerSpec

EventCallback = Callable[[FileEvent], None]


class _Backend:
    """Backend interface (duck-typed; documented for implementers)."""

    name: str

    def subscribe(self, callback: EventCallback) -> None:
        raise NotImplementedError

    def watch(self, path: str) -> None:
        raise NotImplementedError

    def drain(self) -> int:
        raise NotImplementedError

    def start(self) -> None:
        raise NotImplementedError

    def stop(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def health(self) -> dict:
        """Uniform service-runtime health for this backend."""
        raise NotImplementedError


class _ChangelogBackend(_Backend):
    """Site-wide detection through the scalable Lustre monitor."""

    name = "changelog"

    def __init__(self, fs: LustreFilesystem, config: MonitorConfig | None) -> None:
        self.monitor = LustreMonitor(fs, config)
        self._callbacks: list[EventCallback] = []
        self.monitor.subscribe(self._fan_out, name="fsmonitor")

    def _fan_out(self, _seq: int, event: FileEvent) -> None:
        for callback in list(self._callbacks):
            callback(event)

    def subscribe(self, callback: EventCallback) -> None:
        self._callbacks.append(callback)

    def watch(self, path: str) -> None:
        # The ChangeLog is inherently site-wide; nothing to place.
        pass

    def drain(self) -> int:
        return self.monitor.drain()

    def start(self) -> None:
        self.monitor.start()

    def stop(self) -> None:
        self.monitor.stop()

    def close(self) -> None:
        self.monitor.shutdown()

    def health(self) -> dict:
        return self.monitor.health()


class _WatchdogBackend(_Backend):
    """Targeted detection via the inotify/watchdog observer."""

    name = "inotify"

    def __init__(self, fs: MemoryFilesystem) -> None:
        self.observer = Observer(fs)
        self._callbacks: list[EventCallback] = []
        backend = self

        class _Handler(FileSystemEventHandler):
            def on_any_event(self, event: FileSystemEvent) -> None:
                if event.event_type == "overflow":
                    return
                normalized = FileEvent.from_watchdog(event)
                for callback in list(backend._callbacks):
                    callback(normalized)

        self._handler = _Handler()
        self._watched: set[str] = set()

    def subscribe(self, callback: EventCallback) -> None:
        self._callbacks.append(callback)

    def watch(self, path: str) -> None:
        if path not in self._watched:
            self.observer.schedule(self._handler, path, recursive=True)
            self._watched.add(path)

    def drain(self) -> int:
        return self.observer.drain()

    def start(self) -> None:
        self.observer.start()

    def stop(self) -> None:
        self.observer.stop()

    def close(self) -> None:
        self.observer.close()

    def health(self) -> dict:
        return self.observer.health()


class _PollingBackend(Service, _Backend):
    """Crawl-and-diff detection (portable last resort).

    A periodic :class:`~repro.runtime.Service` worker crawls every
    watched root each *interval* seconds.
    """

    def __init__(self, fs, interval: float) -> None:
        Service.__init__(self, "polling")
        self.fs = fs
        self.interval = interval
        self._monitors: dict[str, PollingMonitor] = {}
        self._callbacks: list[EventCallback] = []
        self._polls = self.metrics.counter("polls")
        self._events_delivered = self.metrics.counter("events_delivered")

    def subscribe(self, callback: EventCallback) -> None:
        self._callbacks.append(callback)

    def watch(self, path: str) -> None:
        if path not in self._monitors:
            monitor = PollingMonitor(self.fs, root=path)
            monitor.poll()  # establish the baseline snapshot
            self._monitors[path] = monitor

    def drain(self) -> int:
        delivered = 0
        self._polls.inc()
        for monitor in self._monitors.values():
            for event in monitor.poll().events:
                for callback in list(self._callbacks):
                    callback(event)
                delivered += 1
        self._events_delivered.inc(delivered)
        return delivered

    def worker_specs(self) -> list[WorkerSpec]:
        return [WorkerSpec("poll", self.drain, interval=self.interval)]

    def on_stop(self) -> None:
        self.drain()  # one final sweep

    def on_close(self) -> None:
        self._monitors.clear()


class StorageMonitor:
    """One monitoring API over heterogeneous storage backends."""

    def __init__(self, backend: _Backend) -> None:
        self._backend = backend
        self.events_delivered = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def for_filesystem(
        cls,
        fs: Union[LustreFilesystem, MemoryFilesystem],
        backend: Optional[str] = None,
        monitor_config: MonitorConfig | None = None,
        poll_interval: float = 1.0,
    ) -> "StorageMonitor":
        """Pick (or force, via *backend*) the right backend for *fs*.

        ``backend`` may be ``"changelog"``, ``"inotify"`` or
        ``"polling"``; by default Lustre gets the ChangeLog monitor and
        local filesystems get watchdog.
        """
        if backend is None:
            backend = (
                "changelog" if isinstance(fs, LustreFilesystem) else "inotify"
            )
        if backend == "changelog":
            if not isinstance(fs, LustreFilesystem):
                raise MonitorError(
                    "the changelog backend requires a LustreFilesystem"
                )
            return cls(_ChangelogBackend(fs, monitor_config))
        if backend == "inotify":
            if not isinstance(fs, MemoryFilesystem):
                raise MonitorError(
                    "the inotify backend requires a local MemoryFilesystem"
                )
            return cls(_WatchdogBackend(fs))
        if backend == "polling":
            return cls(_PollingBackend(fs, poll_interval))
        raise MonitorError(f"unknown backend {backend!r}")

    # -- the uniform API ------------------------------------------------------

    @property
    def backend_name(self) -> str:
        """Which detection technology this monitor uses."""
        return self._backend.name

    def subscribe(self, callback: EventCallback) -> None:
        """Deliver every detected event to *callback*."""

        def counting(event: FileEvent) -> None:
            self.events_delivered += 1
            callback(event)

        self._backend.subscribe(counting)

    def watch(self, path: str = "/") -> None:
        """Ensure *path* is covered (no-op for site-wide backends)."""
        self._backend.watch(path)

    def drain(self) -> int:
        """Deterministically deliver pending events; returns the count."""
        return self._backend.drain()

    def start(self) -> None:
        """Begin live (threaded) detection."""
        self._backend.start()

    def stop(self) -> None:
        """Stop live detection (events already captured still drain)."""
        self._backend.stop()

    def close(self) -> None:
        """Release all detection resources."""
        self._backend.close()

    def health(self) -> dict:
        """The backend's uniform service-runtime health record."""
        return self._backend.health()
