"""The scalable Lustre monitor: the paper's primary contribution.

The monitor turns per-MDT ChangeLogs into a single site-wide stream of
path-resolved file events that any subscriber (e.g. a Ripple agent) can
consume in real time, with a rotating historic catalog for fault
tolerance.  Pipeline (paper §4, Figure 2):

1. **Detection** — one :class:`Collector` per MDS extracts new records
   from each local ChangeLog.
2. **Processing** — FIDs are resolved to absolute paths (the
   ``fid2path`` step, the measured bottleneck); :class:`EventProcessor`
   also implements the paper's proposed fixes: batch resolution and a
   path cache.
3. **Aggregation** — records are reported over the message fabric to the
   multi-threaded :class:`Aggregator`, which stores events in a rotating
   :class:`EventStore` and publishes them to subscribers; an API serves
   historic events so consumers can recover after a disconnect.

:class:`LustreMonitor` wires the whole thing to a
:class:`~repro.lustre.LustreFilesystem`.
"""

from repro.core.events import (
    EventBatch,
    EventType,
    FileEvent,
    ReportBatch,
    iter_entries,
    iter_report,
)
from repro.core.processor import EventProcessor, PathCache, ProcessorConfig
from repro.core.collector import Collector, CollectorConfig
from repro.core.store import EventStore
from repro.core.aggregator import Aggregator, AggregatorConfig
from repro.core.consumer import Consumer, DedupingConsumer
from repro.core.client import MonitorClient
from repro.core.fsmonitor import StorageMonitor
from repro.core.monitor import LustreMonitor, MonitorConfig
from repro.core.relay import RelayAggregator, facility_relay

__all__ = [
    "FileEvent",
    "EventBatch",
    "ReportBatch",
    "iter_entries",
    "iter_report",
    "EventType",
    "EventProcessor",
    "ProcessorConfig",
    "PathCache",
    "Collector",
    "CollectorConfig",
    "EventStore",
    "Aggregator",
    "AggregatorConfig",
    "Consumer",
    "DedupingConsumer",
    "MonitorClient",
    "StorageMonitor",
    "RelayAggregator",
    "facility_relay",
    "LustreMonitor",
    "MonitorConfig",
]
