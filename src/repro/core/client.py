"""MonitorClient: a convenience wrapper over the Aggregator's APIs.

Consumers embed a :class:`~repro.core.consumer.Consumer` for the live
stream; tools and dashboards often just want to *query* — "what
happened under /projects in the last hour?".  MonitorClient speaks the
historic-event REQ/REP API without subscribing to the live stream.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.aggregator import AggregatorConfig
from repro.core.events import EventType, FileEvent
from repro.msgq import Transport
from repro.runtime import call_with_pump


class MonitorClient:
    """Query-only access to a monitor's historic event catalog."""

    def __init__(
        self,
        context: Transport,
        config: AggregatorConfig | None = None,
        timeout: float = 5.0,
    ) -> None:
        self.config = config or AggregatorConfig()
        self.timeout = timeout
        self._socket = context.req().connect(self.config.api_endpoint)
        #: When set (deterministic mode), requests are answered by this
        #: server inline instead of by its API thread.  Duck-typed:
        #: anything with ``config`` and ``serve_api_once`` — an
        #: Aggregator or a multiproc ProcessShardBridge — qualifies.
        self.api_server: Optional[Any] = None

    @classmethod
    def for_monitor(cls, monitor, timeout: float = 5.0) -> "MonitorClient":
        """Build a client wired to a LustreMonitor (deterministic mode)."""
        client = cls(monitor.context, monitor.config.aggregator, timeout)
        client.api_server = monitor.aggregator
        return client

    @classmethod
    def for_aggregator(
        cls, context: Transport, aggregator: Any, timeout: float = 5.0
    ) -> "MonitorClient":
        """Build a client wired straight to one aggregator or process-
        shard bridge (one cluster shard, typically) in deterministic
        mode."""
        client = cls(context, aggregator.config, timeout)
        client.api_server = aggregator
        return client

    # -- plumbing ------------------------------------------------------------

    def _request(self, payload: dict[str, Any]) -> Any:
        if self.api_server is None:
            return self._socket.request(payload, timeout=self.timeout)
        # Deterministic mode: issue the request from a helper thread and
        # serve it inline (REQ/REP stays lock-step).
        return call_with_pump(
            lambda: self._socket.request(payload, timeout=self.timeout),
            lambda: self.api_server.serve_api_once(timeout=0.05),
        )

    # -- queries ----------------------------------------------------------------

    def last_seq(self) -> int:
        """Highest sequence number the aggregator has stored."""
        return self._request({"op": "last_seq"})

    def events_since(
        self, seq: int, limit: Optional[int] = None
    ) -> list[tuple[int, FileEvent]]:
        """Events newer than *seq* (the catch-up primitive).

        The aggregator's store honors *limit* during the scan, so this
        is O(limit) even against a full retained window.
        """
        return self._request({"op": "since", "seq": seq, "limit": limit})

    def events_since_all(
        self, seq: int, page_size: int = 1024
    ) -> list[tuple[int, FileEvent]]:
        """Every event newer than *seq*, fetched in bounded pages.

        Speaks the batched catch-up pattern consumers use: repeated
        ``since`` requests of at most *page_size* entries, so no single
        reply materialises the whole window.
        """
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1: {page_size}")
        collected: list[tuple[int, FileEvent]] = []
        cursor = seq
        while True:
            page = self.events_since(cursor, limit=page_size)
            collected.extend(page)
            if len(page) < page_size:
                return collected
            cursor = page[-1][0]

    def recent(self, count: int) -> list[tuple[int, FileEvent]]:
        """The most recent *count* events."""
        return self._request({"op": "recent", "count": count})

    def query(
        self,
        path_prefix: Optional[str] = None,
        event_type: Optional[EventType] = None,
        since_time: Optional[float] = None,
        until_time: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[int, FileEvent]]:
        """Filtered retrieval over the retained window."""
        return self._request(
            {
                "op": "query",
                "path_prefix": path_prefix,
                "event_type": event_type.value if event_type else None,
                "since_time": since_time,
                "until_time": until_time,
                "limit": limit,
            }
        )

    def stats(self) -> dict[str, Any]:
        """Aggregator-side counters (store size, rotation, throughput)."""
        return self._request({"op": "stats"})

    def metrics(self) -> dict[str, Any]:
        """The exposition answer: Prometheus text + histogram summaries.

        ``result['prometheus']`` is the registry rendered in the
        Prometheus text format; ``result['histograms']`` maps each
        histogram name (``pipeline.collect`` …) to its
        ``count/mean/max/p50/p95/p99`` summary.
        """
        return self._request({"op": "metrics"})

    def activity_summary(self, path_prefix: str = "/") -> dict[str, int]:
        """Counts by event type under *path_prefix* (retained window)."""
        counts: dict[str, int] = {}
        for _seq, event in self.query(path_prefix=path_prefix):
            key = event.event_type.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def close(self) -> None:
        self._socket.close()
