"""Consumers: subscribers to the Aggregator's live stream + historic API.

A consumer (e.g. a Ripple agent) subscribes to the Aggregator's PUB
endpoint for the live stream and tracks the last sequence number it has
seen.  After a disconnect (or on startup) it calls :meth:`catch_up`,
which uses the historic-event API to fetch what it missed — the
fault-tolerance mechanism the paper describes.

Consumers are :class:`~repro.runtime.Service` instances: live mode runs
a ``poll`` worker with idle backoff, a final poll on stop delivers
whatever the aggregator flushed during shutdown, and counters live in
the shared metrics registry (legacy attribute names stay readable).
"""

from __future__ import annotations

import inspect
import logging
from typing import Callable, Optional

from repro.core.aggregator import AggregatorConfig
from repro.core.events import FileEvent, iter_entries, prefix_probe
from repro.errors import WouldBlock
from repro.metrics.registry import MetricsRegistry
from repro.metrics.tracing import Tracer, make_tracer
from repro.msgq import Context
from repro.runtime import Service, WorkerSpec, call_with_pump
from repro.util.logging import get_logger

EventCallback = Callable[[int, FileEvent], None]


class Consumer(Service):
    """A subscribed event consumer with catch-up support."""

    def __init__(
        self,
        context: Context,
        callback: EventCallback,
        config: AggregatorConfig | None = None,
        name: str = "consumer",
        topic: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        batch_callback: Optional[
            Callable[[list[tuple[int, FileEvent]]], None]
        ] = None,
        path_prefix: Optional[str] = None,
    ) -> None:
        super().__init__(name, registry, scope=f"consumer.{name}")
        self.context = context
        self.config = config or AggregatorConfig()
        self.callback = callback
        #: When set, fresh (post-dedup, post-filter) events are handed
        #: over one whole batch at a time instead of through the
        #: per-event ``callback`` — the agent filter path uses this to
        #: run its compiled rule index once per batch.  A callback that
        #: also accepts a second parameter receives the batch's
        #: *source* (shard label) — the gateway fan-out hub needs it to
        #: label stream messages.
        self.batch_callback = batch_callback
        self._batch_cb_obj: Optional[Callable] = None
        self._batch_cb_wants_source = False
        #: Optional event-level path filter: events not under this
        #: prefix are dropped after dedup (the watermark still
        #: advances).  The ``startswith`` probe is pre-normalized once
        #: here, not per event.
        self.path_prefix = path_prefix
        self._path_probe = (
            prefix_probe(path_prefix) if path_prefix is not None else None
        )
        self._log = get_logger(f"core.consumer.{name}")
        #: Stage tracer: records the ``deliver`` stage (PUB send stamp
        #: → delivery) for batches stamped by the aggregator.
        self.tracer: Tracer = (
            tracer
            if tracer is not None
            else make_tracer(self.metrics, self.config.trace_sample_rate)
        )
        #: Topic prefix filter; with ``topic_by_path`` aggregators, pass
        #: e.g. ``"events./projects"`` to receive only that subtree.
        self.topic = topic if topic is not None else self.config.publish_topic
        self.subscription = (
            context.sub(hwm=self.config.hwm)
            .connect(self.config.publish_endpoint)
            .subscribe(self.topic)
        )
        self.api = context.req().connect(self.config.api_endpoint)
        #: High-water marks keyed by event *source* — the ``shard``
        #: label on published batches, or ``None`` for an unlabelled
        #: (single-aggregator) publisher.  Sequence numbers are only
        #: monotone per publisher, so a consumer subscribed to several
        #: shard PUB endpoints must not share one watermark: a lagging
        #: shard's fresh events would compare below the fast shard's
        #: mark and be dropped as "duplicates".
        self.watermarks: dict[Optional[str], int] = {}
        self.poll_interval = 0.005
        #: Historic-API page size used by :meth:`catch_up`: missed
        #: events are fetched in bounded chunks so one request never
        #: materialises the whole retained window.
        self.catch_up_page = 1024
        # Counters (shared registry; property shims below).
        self._events_consumed = self.metrics.counter("events_consumed")
        self._duplicates_skipped = self.metrics.counter("duplicates_skipped")
        self._events_filtered = self.metrics.counter("events_filtered")
        self._batches_consumed = self.metrics.counter("batches_consumed")
        self._catch_ups = self.metrics.counter("catch_ups")
        self.metrics.gauge_fn(
            "last_seq", lambda: max(self.watermarks.values(), default=0)
        )
        self.metrics.gauge_fn("dropped", lambda: self.subscription.dropped)
        # Subscription occupancy: how close the mailbox is to dropping.
        self.metrics.gauge_fn("sub_depth", lambda: self.subscription.pending)
        self.metrics.gauge_fn("sub_hwm", lambda: self.subscription.hwm)
        self.metrics.gauge_fn("sub_credits", lambda: self.subscription.credits)
        #: Optional end-to-end latency tracking (operation timestamp ->
        #: delivery); call :meth:`track_latency` to enable.  Backed by
        #: a registry :class:`~repro.metrics.Histogram`, so the monitor
        #: stats and aggregator stats API report it without double
        #: bookkeeping.  Only meaningful when the filesystem and
        #: consumer share a clock domain (both wall-clock, or both on
        #: one ManualClock).
        self.latency = None
        self._latency_clock = None

    # -- legacy counter names (read-only views over the registry) -----------

    @property
    def events_consumed(self) -> int:
        return self._events_consumed.value

    @property
    def duplicates_skipped(self) -> int:
        return self._duplicates_skipped.value

    @property
    def events_filtered(self) -> int:
        """Events dropped by the ``path_prefix`` subscription filter."""
        return self._events_filtered.value

    @property
    def catch_ups(self) -> int:
        return self._catch_ups.value

    @property
    def batches_consumed(self) -> int:
        """Live PUB messages received (batch or legacy single-event)."""
        return self._batches_consumed.value

    def track_latency(self, clock=None) -> "Consumer":
        """Enable per-event delivery-latency recording; returns self.

        The histogram is the registry metric ``<scope>.latency``
        (thread-safe, summarised in ``snapshot()``), so it reaches
        ``LustreMonitor.stats()`` and the aggregator stats/metrics API
        with no second bookkeeping path.
        """
        from repro.util.clock import WallClock

        self.latency = self.metrics.histogram("latency")
        self._latency_clock = clock or WallClock()
        return self

    # -- watermarks -----------------------------------------------------------

    @property
    def last_seq(self) -> int:
        """The single-publisher watermark (source ``None``).

        Pre-cluster name kept for compatibility: against one
        unlabelled aggregator this is *the* watermark, exactly as
        before.  Cluster consumers read :meth:`watermark` per shard.
        """
        return self.watermarks.get(None, 0)

    @last_seq.setter
    def last_seq(self, value: int) -> None:
        self.watermarks[None] = value

    def watermark(self, source: Optional[str] = None) -> int:
        """Highest sequence number delivered from *source*."""
        return self.watermarks.get(source, 0)

    def advance_watermark(self, source: Optional[str], seq: int) -> None:
        """Raise *source*'s watermark to at least *seq* (never lowers)."""
        if seq > self.watermarks.get(source, 0):
            self.watermarks[source] = seq

    # -- delivery -------------------------------------------------------------

    def deliver(self, seq: int, event: FileEvent,
                source: Optional[str] = None) -> None:
        """Deliver one event through the watermark dedup.

        Public entry point for external replay drivers (e.g. a cluster
        scatter-gather catch-up feeding per-shard pages back in).
        """
        self._deliver(seq, event, source)

    def _accept(self, seq: int, event: FileEvent,
                source: Optional[str] = None) -> bool:
        """Watermark dedup + subscription filter; True when deliverable.

        Shared by the per-event and batch delivery paths so both see
        identical dedup/filter/counter semantics.
        """
        if seq <= self.watermarks.get(source, 0):
            # Duplicate (e.g. replayed during catch-up); idempotent skip.
            self._duplicates_skipped.inc()
            return False
        self.watermarks[source] = seq
        if self._path_probe is not None and not event.matches_prefix(
            self.path_prefix, self._path_probe
        ):
            self._events_filtered.inc()
            return False
        self._events_consumed.inc()
        if self.latency is not None and event.timestamp:
            self.latency.record(
                max(0.0, self._latency_clock.now() - event.timestamp)
            )
        return True

    def _deliver(self, seq: int, event: FileEvent,
                 source: Optional[str] = None) -> None:
        if self._accept(seq, event, source):
            self.callback(seq, event)

    def deliver_entries(
        self,
        entries: list[tuple[int, FileEvent]],
        source: Optional[str] = None,
    ) -> int:
        """Deliver a batch of entries through dedup in one call.

        With a ``batch_callback`` the fresh entries are handed over as
        one batch (plus the batch's *source* when the callback accepts
        it); otherwise each goes through the per-event callback.
        Returns the number of fresh (non-duplicate, unfiltered) events.
        """
        fresh = [
            (seq, event)
            for seq, event in entries
            if self._accept(seq, event, source)
        ]
        if self.batch_callback is not None:
            if fresh:
                self._invoke_batch_callback(fresh, source)
        else:
            for seq, event in fresh:
                self.callback(seq, event)
        return len(fresh)

    def _invoke_batch_callback(
        self,
        fresh: list[tuple[int, FileEvent]],
        source: Optional[str],
    ) -> None:
        """Call ``batch_callback`` with or without the source label.

        The one-argument form predates shard labels; arity is probed
        once per callback object (it is a public, reassignable
        attribute) so both shapes keep working.
        """
        callback = self.batch_callback
        if callback is not self._batch_cb_obj:
            self._batch_cb_obj = callback
            try:
                inspect.signature(callback).bind([], None)
                self._batch_cb_wants_source = True
            except (TypeError, ValueError):
                self._batch_cb_wants_source = False
        if self._batch_cb_wants_source:
            callback(fresh, source)
        else:
            callback(fresh)

    def poll_once(self, timeout: float = 0.0) -> int:
        """Drain pending live messages; returns the number of events
        delivered.

        Messages are taken from the subscription queue drain-style (one
        fabric operation for everything pending) and may be
        :class:`~repro.core.events.EventBatch` batches or legacy
        ``(seq, event)`` singles — the shim accepts both.
        """
        delivered = 0
        while True:
            try:
                messages = self.subscription.recv_many(
                    timeout=timeout, block=timeout > 0
                )
            except WouldBlock:
                break
            for _topic, payload in messages:
                self._batches_consumed.inc()
                entries = iter_entries(payload)
                source = getattr(payload, "shard", None)
                published_ts = getattr(payload, "published_ts", None)
                if published_ts is not None and self.tracer.enabled:
                    self.tracer.record(
                        "deliver", self.tracer.now() - published_ts
                    )
                if entries and self._log.isEnabledFor(logging.DEBUG):
                    self._log.debug(
                        "delivering batch seq %d..%d (%d events)",
                        entries[0][0], entries[-1][0], len(entries),
                        extra={
                            "first_seq": entries[0][0],
                            "last_seq": entries[-1][0],
                            "batch_events": len(entries),
                        },
                    )
                self.deliver_entries(list(entries), source)
                delivered += len(entries)
            timeout = 0.0
        return delivered

    def _request(self, request, api_server=None):
        if api_server is None:
            return self.api.request(request, timeout=5.0)
        return call_with_pump(
            lambda: self.api.request(request, timeout=5.0),
            lambda: api_server.serve_api_once(timeout=0.05),
        )

    def catch_up(self, api_server=None,
                 source: Optional[str] = None) -> int:
        """Fetch events missed since the watermark via the historic API.

        Pages through the ``since`` API in ``catch_up_page``-sized
        requests — the indexed store makes every page O(page), so a
        consumer far behind never forces one unbounded reply.  In live
        mode the Aggregator's API thread answers; deterministic tests
        pass the aggregator as *api_server* so requests are answered
        synchronously (issued from a helper thread to keep REQ/REP
        lock-step semantics intact).

        *source* selects which watermark to page from and advance —
        pass the shard label when this consumer's ``api`` socket points
        at one shard of a cluster (cluster-wide catch-up is
        ``ClusterClient.catch_up``, which loops the shards).
        """
        self._catch_ups.inc()
        recovered = 0
        while True:
            request = {
                "op": "since", "seq": self.watermark(source),
                "limit": self.catch_up_page,
            }
            missed = self._request(request, api_server)
            self.deliver_entries(list(missed), source)
            for seq, _event in missed:
                # Advance even over redeliveries so paging terminates.
                self.advance_watermark(source, seq)
            recovered += len(missed)
            if len(missed) < self.catch_up_page:
                return recovered

    @property
    def dropped(self) -> int:
        """Live messages dropped at this consumer's subscription queue.

        A non-zero value means :meth:`catch_up` is needed — the exact
        scenario the historic API exists for.
        """
        return self.subscription.dropped

    # -- service runtime ---------------------------------------------------------

    def start(self, poll_interval: float | None = None) -> None:
        """Consume continuously under the service runtime."""
        if poll_interval is not None:
            self.poll_interval = poll_interval
        super().start()

    def worker_specs(self) -> list[WorkerSpec]:
        return [
            WorkerSpec(
                "poll",
                self.poll_once,
                idle_wait=self.poll_interval,
                max_idle_wait=max(self.poll_interval, 0.05),
            )
        ]

    def on_stop(self) -> None:
        self.poll_once()  # deliver anything flushed during shutdown

    def on_close(self) -> None:
        self.subscription.close()
        self.api.close()


class DedupingConsumer(Consumer):
    """A consumer that suppresses collector-level redeliveries.

    Collector crashes between report and clear cause the same ChangeLog
    records to be reported twice — with *new* aggregator sequence
    numbers, so sequence tracking alone cannot catch them.  This
    consumer additionally remembers the last record index seen per MDT
    (record indices are monotone within an MDT) and drops events at or
    below it.  Local-filesystem events carry no record identity and are
    passed through.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._record_high_water: dict[int, int] = {}
        self._redeliveries_suppressed = self.metrics.counter(
            "redeliveries_suppressed"
        )

    @property
    def redeliveries_suppressed(self) -> int:
        return self._redeliveries_suppressed.value

    def _accept(self, seq: int, event: FileEvent,
                source: Optional[str] = None) -> bool:
        if event.mdt_index is not None and event.record_index is not None:
            high_water = self._record_high_water.get(event.mdt_index, 0)
            if event.record_index <= high_water:
                self._redeliveries_suppressed.inc()
                # Still advance the sequence cursor so catch-up works.
                self.advance_watermark(source, seq)
                return False
            self._record_high_water[event.mdt_index] = event.record_index
        return super()._accept(seq, event, source)
