"""The Aggregator: fan-in, durable store, live publication, historic API.

Paper §4, step 3: "A publisher-subscriber message queue is used to pass
messages between the Collectors and the Aggregator.  Once an event is
reported to the Aggregator it is immediately placed in a queue to be
processed.  The Aggregator is multi-threaded, enabling it to both
publish events to subscribed consumers and store the events in a local
database with minimal overhead.  The Aggregator maintains this database
and exposes an API to enable consumers to retrieve historic events."

Structure here:

* an inbound PULL endpoint collectors PUSH event batches to;
* an internal queue feeding two worker threads — one stores into the
  rotating :class:`EventStore`, one publishes on a PUB endpoint under
  topic ``events`` (subscribers filter client-side);
* a REP endpoint serving the historic-event API (``since``/``recent``/
  ``query`` requests).

Deterministic mode: :meth:`pump_once` performs receive→store→publish
synchronously, which tests and virtual-time drivers use.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.core.events import EventType, FileEvent
from repro.core.store import EventStore
from repro.errors import WouldBlock
from repro.msgq import Context


@dataclass(frozen=True)
class AggregatorConfig:
    """Aggregator knobs."""

    inbound_endpoint: str = "inproc://aggregator"
    publish_endpoint: str = "inproc://events"
    api_endpoint: str = "inproc://history-api"
    store_max_events: int = 100_000
    publish_topic: str = "events"
    hwm: int = 100_000
    #: When True, events are published under per-subtree topics
    #: (``events./projects``), so subscribers interested in one subtree
    #: filter *at the fabric* instead of discarding after delivery.
    topic_by_path: bool = False


class Aggregator:
    """Receives event batches, stores them, and publishes them."""

    def __init__(
        self,
        context: Context,
        config: AggregatorConfig | None = None,
        store: EventStore | None = None,
    ) -> None:
        self.context = context
        self.config = config or AggregatorConfig()
        #: The rotating catalog; pass a restored store (EventStore.load)
        #: to resume after a restart with history intact.
        self.store = store or EventStore(max_events=self.config.store_max_events)
        self.inbound = context.pull(hwm=self.config.hwm).bind(
            self.config.inbound_endpoint
        )
        self.publisher = context.pub(hwm=self.config.hwm).bind(
            self.config.publish_endpoint
        )
        self.api = context.rep().bind(self.config.api_endpoint)
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        # Counters.
        self.batches_received = 0
        self.events_stored = 0
        self.events_published = 0

    # -- deterministic mode ----------------------------------------------------

    def pump_once(self, timeout: float = 0.0) -> int:
        """Receive pending batches and store+publish them synchronously.

        Returns the number of events handled.
        """
        handled = 0
        while True:
            try:
                batch: list[FileEvent] = self.inbound.recv(
                    timeout=timeout, block=timeout > 0
                )
            except WouldBlock:
                break
            handled += self._handle_batch(batch)
            timeout = 0.0  # only wait for the first batch
        return handled

    def serve_api_once(self, timeout: float = 0.0) -> bool:
        """Answer one pending historic-API request (False if none)."""
        try:
            request, channel = self.api.recv(timeout=timeout)
        except WouldBlock:
            return False
        try:
            channel.send(self._answer(request))
        except Exception as exc:
            channel.send(exc)
        return True

    def _topic_for(self, event: FileEvent) -> str:
        if not self.config.topic_by_path:
            return self.config.publish_topic
        path = event.path or event.old_path or "/"
        parts = path.split("/", 2)
        top = "/" + parts[1] if len(parts) > 1 and parts[1] else "/"
        return f"{self.config.publish_topic}.{top}"

    def _handle_batch(self, batch: list[FileEvent]) -> int:
        self.batches_received += 1
        for event in batch:
            seq = self.store.append(event)
            self.events_stored += 1
            self.publisher.send(self._topic_for(event), (seq, event))
            self.events_published += 1
        return len(batch)

    # -- historic API ------------------------------------------------------------

    def _answer(self, request: dict[str, Any]) -> Any:
        """Dispatch a historic-API request.

        Requests are dicts: ``{'op': 'since', 'seq': N, 'limit': M}``,
        ``{'op': 'recent', 'count': N}``, ``{'op': 'query', ...filters}``
        or ``{'op': 'last_seq'}``.
        """
        op = request.get("op")
        if op == "since":
            return self.store.since(request["seq"], limit=request.get("limit"))
        if op == "recent":
            return self.store.recent(request["count"])
        if op == "last_seq":
            return self.store.last_seq
        if op == "stats":
            return {
                "batches_received": self.batches_received,
                "events_stored": self.events_stored,
                "events_published": self.events_published,
                "store_len": len(self.store),
                "store_last_seq": self.store.last_seq,
                "store_rotated": self.store.total_rotated,
                "store_memory_bytes": self.store.approximate_memory_bytes(),
            }
        if op == "query":
            event_type = request.get("event_type")
            return self.store.query(
                path_prefix=request.get("path_prefix"),
                event_type=EventType(event_type) if event_type else None,
                since_time=request.get("since_time"),
                until_time=request.get("until_time"),
                limit=request.get("limit"),
            )
        raise ValueError(f"unknown API op: {op!r}")

    # -- live threaded mode -------------------------------------------------------

    def start(self) -> None:
        """Start the store/publish pump and the API server threads."""
        if self._threads:
            return
        self._stop.clear()

        def _pump_loop() -> None:
            while not self._stop.is_set():
                if self.pump_once(timeout=0.01) == 0:
                    continue
            self.pump_once()  # final flush

        def _api_loop() -> None:
            while not self._stop.is_set():
                self.serve_api_once(timeout=0.01)

        for name, target in (("aggregator-pump", _pump_loop), ("aggregator-api", _api_loop)):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Stop worker threads, flushing pending batches."""
        if not self._threads:
            return
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=10)
        self._threads.clear()
        self.pump_once()

    def close(self) -> None:
        """Stop and release every socket."""
        self.stop()
        self.inbound.close()
        self.publisher.close()
        self.api.close()
