"""The Aggregator: fan-in, durable store, live publication, historic API.

Paper §4, step 3: "A publisher-subscriber message queue is used to pass
messages between the Collectors and the Aggregator.  Once an event is
reported to the Aggregator it is immediately placed in a queue to be
processed.  The Aggregator is multi-threaded, enabling it to both
publish events to subscribed consumers and store the events in a local
database with minimal overhead.  The Aggregator maintains this database
and exposes an API to enable consumers to retrieve historic events."

Structure here:

* an inbound PULL endpoint collectors PUSH event batches to;
* an internal queue feeding two named service workers — ``pump`` stores
  each collector batch *atomically* into the rotating
  :class:`EventStore` (one lock acquisition, contiguous sequence
  numbers) and publishes
  :class:`~repro.core.events.EventBatch` messages on the PUB endpoint
  in global sequence order — one message per contiguous same-topic run
  of the batch (per-subtree topics when ``topic_by_path`` is on);
  ``api`` serves the historic-event REP endpoint (``since``/``recent``/
  ``query`` requests) with ``since`` honouring ``limit`` during the
  indexed scan.

Deterministic mode: :meth:`pump_once` performs receive→store→publish
synchronously, which tests and virtual-time drivers use.

As a :class:`~repro.runtime.Service`, the aggregator's counters live in
the shared metrics registry and the ``{'op': 'stats'}`` API answer is
derived from that registry (health record included) instead of scraping
instance attributes.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any, Optional

from repro.core.events import (
    EventBatch,
    EventType,
    FileEvent,
    approx_wire_bytes,
    iter_report,
)
from repro.core.store import EventStore
from repro.core.storage import open_store
from repro.errors import WouldBlock
from repro.metrics.registry import MetricsRegistry
from repro.metrics.tracing import Tracer, make_tracer
from repro.msgq import Transport
from repro.runtime import Service, WorkerSpec
from repro.util.logging import get_logger


@dataclass(frozen=True)
class AggregatorConfig:
    """Aggregator knobs."""

    inbound_endpoint: str = "inproc://aggregator"
    publish_endpoint: str = "inproc://events"
    api_endpoint: str = "inproc://history-api"
    store_max_events: int = 100_000
    #: Durability backend for the event store, as a URL:
    #: ``memory://`` (the default volatile window) or
    #: ``segments:///var/lib/repro/store`` (append-only segment log;
    #: ``?segment_bytes=&fsync=&compact_interval=`` tune it).  A store
    #: over a non-empty segment log *recovers* at construction — the
    #: aggregator resumes numbering and history from the log.
    store_url: str = "memory://"
    publish_topic: str = "events"
    hwm: int = 100_000
    #: When True, events are published under per-subtree topics
    #: (``events./projects``), so subscribers interested in one subtree
    #: filter *at the fabric* instead of discarding after delivery.
    topic_by_path: bool = False
    #: Flush policy for published batch messages: a same-topic run
    #: larger than ``batch_events`` events (0 = unbounded) or
    #: ``batch_bytes`` approximate wire bytes (0 = unbounded) is split
    #: into multiple :class:`~repro.core.events.EventBatch` messages.
    #: Bounds the latency/memory cost of one PUB message without giving
    #: up batch amortisation.
    batch_events: int = 0
    batch_bytes: int = 0
    #: Fraction of batches stamped with stage timestamps and recorded
    #: into the ``pipeline.*`` latency histograms (one histogram lock
    #: per stage per sampled batch).  ``0.0`` compiles the tracing path
    #: to no-ops: no histograms registered, no clock reads, no locks.
    trace_sample_rate: float = 1.0
    #: Shard identity stamped on every published
    #: :class:`~repro.core.events.EventBatch` when this aggregator is
    #: one shard of a cluster.  ``None`` (the default, and what a
    #: single-aggregator monitor uses) publishes unlabelled batches, so
    #: consumers fall back to their pre-cluster single watermark.
    shard_label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.batch_events < 0:
            raise ValueError(f"batch_events must be >= 0: {self.batch_events}")
        if self.batch_bytes < 0:
            raise ValueError(f"batch_bytes must be >= 0: {self.batch_bytes}")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError(
                f"trace_sample_rate must be in [0, 1]: {self.trace_sample_rate}"
            )
        scheme = self.store_url.split(":", 1)[0]
        if scheme not in ("memory", "segments"):
            raise ValueError(
                f"store_url scheme must be memory:// or segments://: "
                f"{self.store_url!r}"
            )


class Aggregator(Service):
    """Receives event batches, stores them, and publishes them."""

    def __init__(
        self,
        context: Transport,
        config: AggregatorConfig | None = None,
        store: EventStore | None = None,
        registry: Optional[MetricsRegistry] = None,
        name: str = "aggregator",
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(name, registry)
        self.context = context
        self.config = config or AggregatorConfig()
        self._log = get_logger(f"core.aggregator.{name}")
        #: Stage tracer: stamps sampled batches at store and publish
        #: time, recording the ``aggregate`` and ``publish`` stages.
        self.tracer: Tracer = (
            tracer
            if tracer is not None
            else make_tracer(self.metrics, self.config.trace_sample_rate)
        )
        #: The rotating catalog; pass a restored store (EventStore.load)
        #: to resume after a restart with history intact, or configure
        #: ``store_url`` so the store recovers itself from its durable
        #: backend (segment log) at construction.
        self.store = store or open_store(
            self.config.store_url, max_events=self.config.store_max_events
        )
        self.inbound = context.pull(hwm=self.config.hwm).bind(
            self.config.inbound_endpoint
        )
        self.publisher = context.pub(hwm=self.config.hwm).bind(
            self.config.publish_endpoint
        )
        self.api = context.rep(hwm=self.config.hwm).bind(self.config.api_endpoint)
        #: Live flush knob: starts at the configured ``batch_events``
        #: and may be retuned at runtime (the adaptive flush controller
        #: grows it under inbound pressure, shrinks it when publish
        #: latency dominates).  The config stays frozen.
        self.flush_batch_events = self.config.batch_events
        # Worker specs are built once and reused so live tuning of the
        # pump cadence (``flush_interval``) reaches the running loop —
        # _run_worker re-reads idle_wait every iteration.
        self._pump_spec = WorkerSpec("pump", self.pump_once, idle_wait=0.001)
        self._api_spec = WorkerSpec("api", self.serve_api_once, idle_wait=0.001)
        # Pipeline counters (shared registry; property shims below).
        self._batches_received = self.metrics.counter("batches_received")
        self._events_stored = self.metrics.counter("events_stored")
        self._events_published = self.metrics.counter("events_published")
        self._batches_published = self.metrics.counter("batches_published")
        self._api_requests = self.metrics.counter("api_requests")
        self.metrics.gauge_fn("store_len", lambda: len(self.store))
        self.metrics.gauge_fn("store_last_seq", lambda: self.store.last_seq)
        self.metrics.gauge_fn("store_rotated", lambda: self.store.total_rotated)
        self.metrics.gauge_fn(
            "store_memory_bytes", lambda: self.store.approximate_memory_bytes()
        )
        if self.store.backend.durable:
            # Durable-backend observability: fsync/compaction counters
            # and segment/byte gauges (``store_backend_*`` series).
            for stat_name in self.store.backend.stats():
                self.metrics.gauge_fn(
                    f"store_backend_{stat_name}",
                    lambda key=stat_name: self.store.backend.stats()[key],
                )
        # Per-socket occupancy: queue depth against capacity, so
        # dashboards see backpressure building before the mark is hit.
        self.metrics.gauge_fn("inbound_depth", lambda: self.inbound.pending)
        self.metrics.gauge_fn("inbound_hwm", lambda: self.inbound.hwm)
        self.metrics.gauge_fn("inbound_credits", lambda: self.inbound.credits)
        self.metrics.gauge_fn("api_depth", lambda: self.api.pending)

    # -- legacy counter names (read-only views over the registry) -----------

    @property
    def batches_received(self) -> int:
        return self._batches_received.value

    @property
    def events_stored(self) -> int:
        return self._events_stored.value

    @property
    def events_published(self) -> int:
        return self._events_published.value

    @property
    def batches_published(self) -> int:
        """PUB messages sent — one per same-topic run chunk of a batch."""
        return self._batches_published.value

    # -- deterministic mode ----------------------------------------------------

    def pump_once(self, timeout: float = 0.0) -> int:
        """Receive pending batches and store+publish them synchronously.

        Drain-style: all queued batches are taken from the inbound
        socket in one fabric operation.  Returns the number of events
        handled.

        Crash-safe: the inbound mailbox outlives a worker crash (the
        supervisor restarts the service without recreating sockets), so
        on failure every batch that was drained but never *stored* is
        requeued at the front of the mailbox before the exception
        escapes.  Collectors purge records once the PUSH send is
        admitted, so without the requeue a mid-pump crash would lose
        those batches for good.  A batch that crashed *after* its store
        committed is not requeued (replaying it would assign duplicate
        sequence numbers); subscribers recover those events through the
        historic API, as for any missed PUB message.
        """
        handled = 0
        while True:
            try:
                batches: list[list[FileEvent]] = self.inbound.recv_many(
                    timeout=timeout, block=timeout > 0
                )
            except WouldBlock:
                break
            for index, batch in enumerate(batches):
                last_stored = self.store.last_seq
                try:
                    handled += self._handle_batch(batch)
                except BaseException:
                    unhandled = batches[index + 1:]
                    if self.store.last_seq == last_stored:
                        unhandled = [batch, *unhandled]
                    if unhandled:
                        self.inbound.requeue(unhandled)
                    raise
            timeout = 0.0  # only wait for the first drain
        return handled

    def serve_api_once(self, timeout: float = 0.0) -> bool:
        """Answer one pending historic-API request (False if none).

        The answer is computed first and sent exactly once: only
        :meth:`_answer` failures become error replies, so a failure
        inside the reply send can never trigger a second send on the
        one-shot REQ/REP channel.
        """
        try:
            request, channel = self.api.recv(timeout=timeout)
        except WouldBlock:
            return False
        self._api_requests.inc()
        try:
            answer = self._answer(request)
        except Exception as exc:
            answer = exc
        channel.send(answer)
        return True

    def _topic_for(self, event: FileEvent) -> str:
        if not self.config.topic_by_path:
            return self.config.publish_topic
        path = event.path or event.old_path or "/"
        parts = path.split("/", 2)
        top = "/" + parts[1] if len(parts) > 1 and parts[1] else "/"
        return f"{self.config.publish_topic}.{top}"

    def occupancy(self) -> tuple[int, int]:
        """(depth, capacity) of the inbound queue — the signal the
        adaptive flush controller tunes against."""
        return (self.inbound.pending, self.inbound.hwm)

    @property
    def flush_interval(self) -> float:
        """Idle wait of the pump worker loop (live-tunable)."""
        return self._pump_spec.idle_wait

    @flush_interval.setter
    def flush_interval(self, value: float) -> None:
        self._pump_spec.idle_wait = value
        self._pump_spec.max_idle_wait = max(
            self._pump_spec.max_idle_wait, value
        )

    def _flush_chunks(self, entries: list[tuple[int, FileEvent]]):
        """Split one same-topic run per the batch_events/batch_bytes policy."""
        max_events = self.flush_batch_events or None
        max_bytes = self.config.batch_bytes or None
        if max_events is None and max_bytes is None:
            yield entries
            return
        chunk: list[tuple[int, FileEvent]] = []
        chunk_bytes = 0
        for seq, event in entries:
            size = approx_wire_bytes(event) if max_bytes else 0
            full = chunk and (
                (max_events is not None and len(chunk) >= max_events)
                or (max_bytes is not None and chunk_bytes + size > max_bytes)
            )
            if full:
                yield chunk
                chunk, chunk_bytes = [], 0
            chunk.append((seq, event))
            chunk_bytes += size
        if chunk:
            yield chunk

    def _handle_batch(self, batch) -> int:
        """Store *batch* atomically and publish batch messages in order.

        *batch* is a plain event list or a traced
        :class:`~repro.core.events.ReportBatch` (the ``iter_report``
        shim accepts both).  One EventStore lock acquisition per batch;
        publication splits the batch at topic *boundaries* (one PUB
        send per contiguous same-topic run, further split by the flush
        policy) instead of grouping the whole batch per topic.  Chunks
        therefore go out in global sequence order: a broad-prefix
        subscriber that matches several per-path topics sees monotone
        sequence numbers and its watermark dedup never mistakes a
        cross-topic chunk for a replay, while scoped subscribers still
        receive their subtree in store order.

        A sampled batch (stamped upstream, or locally when the tracer
        samples it) is stamped ``aggregated_ts`` at store time and
        ``published_ts`` per PUB chunk; the ``aggregate`` and
        ``publish`` stage deltas are recorded here — O(1) tracing work
        per batch, none at all at sample rate 0.
        """
        self._batches_received.inc()
        if not batch:
            return 0
        events, collected_ts = iter_report(batch)
        if not events:
            return 0
        seqs = self.store.extend(events)
        aggregated_ts = None
        if self.tracer.enabled and (
            collected_ts is not None or self.tracer.sample()
        ):
            aggregated_ts = self.tracer.now()
            if collected_ts is not None:
                self.tracer.record("aggregate", aggregated_ts - collected_ts)
        self._events_stored.inc(len(events))
        if self._log.isEnabledFor(logging.DEBUG):
            self._log.debug(
                "stored batch seq %d..%d (%d events)",
                seqs[0], seqs[-1], len(events),
                extra={
                    "first_seq": seqs[0],
                    "last_seq": seqs[-1],
                    "batch_events": len(events),
                },
            )
        runs: list[tuple[str, list[tuple[int, FileEvent]]]] = []
        for seq, event in zip(seqs, events):
            topic = self._topic_for(event)
            if not runs or runs[-1][0] != topic:
                runs.append((topic, []))
            runs[-1][1].append((seq, event))
        for topic, entries in runs:
            for chunk in self._flush_chunks(entries):
                if aggregated_ts is not None:
                    published_ts = self.tracer.now()
                    self.tracer.record("publish", published_ts - aggregated_ts)
                    message = EventBatch(
                        tuple(chunk),
                        collected_ts=collected_ts,
                        aggregated_ts=aggregated_ts,
                        published_ts=published_ts,
                        shard=self.config.shard_label,
                    )
                else:
                    message = EventBatch(
                        tuple(chunk), shard=self.config.shard_label
                    )
                self.publisher.send(topic, message)
                self._batches_published.inc()
                self._events_published.inc(len(chunk))
        return len(events)

    # -- historic API ------------------------------------------------------------

    def _answer(self, request: dict[str, Any]) -> Any:
        """Dispatch a historic-API request.

        Requests are dicts: ``{'op': 'since', 'seq': N, 'limit': M}``,
        ``{'op': 'recent', 'count': N}``, ``{'op': 'query', ...filters}``,
        ``{'op': 'last_seq'}``, ``{'op': 'stats'}`` or
        ``{'op': 'metrics'}``.
        """
        op = request.get("op")
        if op == "since":
            return self.store.since(request["seq"], limit=request.get("limit"))
        if op == "recent":
            return self.store.recent(request["count"])
        if op == "last_seq":
            return self.store.last_seq
        if op == "stats":
            # Derived from the shared metrics registry — the same
            # numbers every service exposes through Service.stats().
            return {**self.metrics.snapshot(), "health": self.health()}
        if op == "metrics":
            # The exposition answer: every metric in the shared
            # registry (the whole supervision tree, not just this
            # scope) as Prometheus text plus per-histogram summaries.
            registry = self.metrics.registry
            return {
                "prometheus": registry.render_prometheus(),
                "histograms": {
                    name: histogram.summary()
                    for name, histogram in registry.histograms().items()
                },
            }
        if op == "query":
            event_type = request.get("event_type")
            return self.store.query(
                path_prefix=request.get("path_prefix"),
                event_type=EventType(event_type) if event_type else None,
                since_time=request.get("since_time"),
                until_time=request.get("until_time"),
                limit=request.get("limit"),
            )
        raise ValueError(f"unknown API op: {op!r}")

    # -- service runtime -------------------------------------------------------

    def worker_specs(self) -> list[WorkerSpec]:
        return [self._pump_spec, self._api_spec]

    def on_stop(self) -> None:
        self.pump_once()  # final flush

    def on_close(self) -> None:
        self.inbound.close()
        self.publisher.close()
        self.api.close()
        self.store.close()
