"""The Aggregator: fan-in, durable store, live publication, historic API.

Paper §4, step 3: "A publisher-subscriber message queue is used to pass
messages between the Collectors and the Aggregator.  Once an event is
reported to the Aggregator it is immediately placed in a queue to be
processed.  The Aggregator is multi-threaded, enabling it to both
publish events to subscribed consumers and store the events in a local
database with minimal overhead.  The Aggregator maintains this database
and exposes an API to enable consumers to retrieve historic events."

Structure here:

* an inbound PULL endpoint collectors PUSH event batches to;
* an internal queue feeding two named service workers — ``pump`` stores
  into the rotating :class:`EventStore` and publishes on a PUB endpoint
  under topic ``events`` (subscribers filter client-side), ``api``
  serves the historic-event REP endpoint (``since``/``recent``/
  ``query`` requests).

Deterministic mode: :meth:`pump_once` performs receive→store→publish
synchronously, which tests and virtual-time drivers use.

As a :class:`~repro.runtime.Service`, the aggregator's counters live in
the shared metrics registry and the ``{'op': 'stats'}`` API answer is
derived from that registry (health record included) instead of scraping
instance attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.events import EventType, FileEvent
from repro.core.store import EventStore
from repro.errors import WouldBlock
from repro.metrics.registry import MetricsRegistry
from repro.msgq import Context
from repro.runtime import Service, WorkerSpec


@dataclass(frozen=True)
class AggregatorConfig:
    """Aggregator knobs."""

    inbound_endpoint: str = "inproc://aggregator"
    publish_endpoint: str = "inproc://events"
    api_endpoint: str = "inproc://history-api"
    store_max_events: int = 100_000
    publish_topic: str = "events"
    hwm: int = 100_000
    #: When True, events are published under per-subtree topics
    #: (``events./projects``), so subscribers interested in one subtree
    #: filter *at the fabric* instead of discarding after delivery.
    topic_by_path: bool = False


class Aggregator(Service):
    """Receives event batches, stores them, and publishes them."""

    def __init__(
        self,
        context: Context,
        config: AggregatorConfig | None = None,
        store: EventStore | None = None,
        registry: Optional[MetricsRegistry] = None,
        name: str = "aggregator",
    ) -> None:
        super().__init__(name, registry)
        self.context = context
        self.config = config or AggregatorConfig()
        #: The rotating catalog; pass a restored store (EventStore.load)
        #: to resume after a restart with history intact.
        self.store = store or EventStore(max_events=self.config.store_max_events)
        self.inbound = context.pull(hwm=self.config.hwm).bind(
            self.config.inbound_endpoint
        )
        self.publisher = context.pub(hwm=self.config.hwm).bind(
            self.config.publish_endpoint
        )
        self.api = context.rep().bind(self.config.api_endpoint)
        # Pipeline counters (shared registry; property shims below).
        self._batches_received = self.metrics.counter("batches_received")
        self._events_stored = self.metrics.counter("events_stored")
        self._events_published = self.metrics.counter("events_published")
        self._api_requests = self.metrics.counter("api_requests")
        self.metrics.gauge_fn("store_len", lambda: len(self.store))
        self.metrics.gauge_fn("store_last_seq", lambda: self.store.last_seq)
        self.metrics.gauge_fn("store_rotated", lambda: self.store.total_rotated)
        self.metrics.gauge_fn(
            "store_memory_bytes", lambda: self.store.approximate_memory_bytes()
        )

    # -- legacy counter names (read-only views over the registry) -----------

    @property
    def batches_received(self) -> int:
        return self._batches_received.value

    @property
    def events_stored(self) -> int:
        return self._events_stored.value

    @property
    def events_published(self) -> int:
        return self._events_published.value

    # -- deterministic mode ----------------------------------------------------

    def pump_once(self, timeout: float = 0.0) -> int:
        """Receive pending batches and store+publish them synchronously.

        Returns the number of events handled.
        """
        handled = 0
        while True:
            try:
                batch: list[FileEvent] = self.inbound.recv(
                    timeout=timeout, block=timeout > 0
                )
            except WouldBlock:
                break
            handled += self._handle_batch(batch)
            timeout = 0.0  # only wait for the first batch
        return handled

    def serve_api_once(self, timeout: float = 0.0) -> bool:
        """Answer one pending historic-API request (False if none)."""
        try:
            request, channel = self.api.recv(timeout=timeout)
        except WouldBlock:
            return False
        self._api_requests.inc()
        try:
            channel.send(self._answer(request))
        except Exception as exc:
            channel.send(exc)
        return True

    def _topic_for(self, event: FileEvent) -> str:
        if not self.config.topic_by_path:
            return self.config.publish_topic
        path = event.path or event.old_path or "/"
        parts = path.split("/", 2)
        top = "/" + parts[1] if len(parts) > 1 and parts[1] else "/"
        return f"{self.config.publish_topic}.{top}"

    def _handle_batch(self, batch: list[FileEvent]) -> int:
        self._batches_received.inc()
        for event in batch:
            seq = self.store.append(event)
            self._events_stored.inc()
            self.publisher.send(self._topic_for(event), (seq, event))
            self._events_published.inc()
        return len(batch)

    # -- historic API ------------------------------------------------------------

    def _answer(self, request: dict[str, Any]) -> Any:
        """Dispatch a historic-API request.

        Requests are dicts: ``{'op': 'since', 'seq': N, 'limit': M}``,
        ``{'op': 'recent', 'count': N}``, ``{'op': 'query', ...filters}``
        or ``{'op': 'last_seq'}``.
        """
        op = request.get("op")
        if op == "since":
            return self.store.since(request["seq"], limit=request.get("limit"))
        if op == "recent":
            return self.store.recent(request["count"])
        if op == "last_seq":
            return self.store.last_seq
        if op == "stats":
            # Derived from the shared metrics registry — the same
            # numbers every service exposes through Service.stats().
            return {**self.metrics.snapshot(), "health": self.health()}
        if op == "query":
            event_type = request.get("event_type")
            return self.store.query(
                path_prefix=request.get("path_prefix"),
                event_type=EventType(event_type) if event_type else None,
                since_time=request.get("since_time"),
                until_time=request.get("until_time"),
                limit=request.get("limit"),
            )
        raise ValueError(f"unknown API op: {op!r}")

    # -- service runtime -------------------------------------------------------

    def worker_specs(self) -> list[WorkerSpec]:
        return [
            WorkerSpec("pump", self.pump_once, idle_wait=0.001),
            WorkerSpec("api", self.serve_api_once, idle_wait=0.001),
        ]

    def on_stop(self) -> None:
        self.pump_once()  # final flush

    def on_close(self) -> None:
        self.inbound.close()
        self.publisher.close()
        self.api.close()
