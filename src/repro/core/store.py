"""The Aggregator's rotating event catalog with a retrieval API.

The paper: the Aggregator stores events "in a local database", maintains
it as a *rotating* catalog (old events age out at a size bound — Table 3
attributes the Aggregator's memory footprint to this store and notes a
production deployment would cap it) and "exposes an API to enable
consumers to retrieve historic events" for fault tolerance.

Two properties matter for the §5.2 hot path and are kept observable via
operation counters (``lock_acquisitions``, ``events_scanned``):

* **Batch ingest is atomic** — :meth:`extend` assigns a contiguous run
  of sequence numbers under ONE lock acquisition, so concurrent
  collectors never interleave within a batch and the per-event locking
  cost is amortised away.
* **Catch-up is indexed** — sequence numbers in the retained window are
  contiguous (append assigns consecutively, rotation evicts from the
  left), so :meth:`since` locates its start position with index
  arithmetic (a degenerate bisect) instead of scanning the whole deque,
  and honors ``limit`` during the scan.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections import deque
from heapq import merge
from itertools import islice
from typing import Deque, Dict, Iterable, Optional

from repro.core.events import EventType, FileEvent, prefix_probe
from repro.core.storage.base import StoreBackend
from repro.core.storage.memory import MemoryBackend


class _SeqView:
    """An indexable view of the stored sequence numbers (bisect support).

    Only used on the fallback path when the retained window is not
    contiguous (e.g. a hand-crafted restore); bisect then performs
    O(log n) indexed probes instead of a full scan.
    """

    def __init__(self, events: Deque[tuple[int, FileEvent]]) -> None:
        self._events = events

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index: int) -> int:
        return self._events[index][0]


class _TypeBucket:
    """The per-:class:`EventType` index: ``(seq, event)`` entries.

    Entries are appended in sequence order, so the list is sorted by
    both sequence number and (when the store's timestamps are monotone)
    timestamp — both narrowable by binary search.  Rotation advances a
    ``head`` offset instead of popping the front (O(1)); the dead
    prefix is compacted away once it dominates the list.
    """

    __slots__ = ("entries", "head")

    def __init__(self) -> None:
        self.entries: list[tuple[int, FileEvent]] = []
        self.head = 0

    def __len__(self) -> int:
        return len(self.entries) - self.head

    def compact_if_needed(self) -> None:
        if self.head > 64 and self.head * 2 >= len(self.entries):
            del self.entries[: self.head]
            self.head = 0

    def time_bounds(
        self, since_time: Optional[float], until_time: Optional[float]
    ) -> tuple[int, int]:
        """Index window covering ``since_time <= ts <= until_time``.

        Binary search over the (monotone) timestamps; callers must only
        use this when the store observed monotone append timestamps.
        """
        lo, hi = self.head, len(self.entries)
        if since_time is not None:
            lo = self._bisect_ts(lo, hi, since_time, right=False)
        if until_time is not None:
            hi = self._bisect_ts(lo, hi, until_time, right=True)
        return lo, hi

    def _bisect_ts(self, lo: int, hi: int, t: float, right: bool) -> int:
        entries = self.entries
        while lo < hi:
            mid = (lo + hi) // 2
            ts = entries[mid][1].timestamp
            if ts < t or (right and ts == t):
                lo = mid + 1
            else:
                hi = mid
        return lo


class EventStore:
    """A bounded, indexed, thread-safe catalog of events.

    Every stored event gets a monotonically increasing *sequence number*;
    consumers that disconnect remember the last sequence they saw and
    catch up with :meth:`since`.

    Besides the contiguous-window arithmetic behind :meth:`since`, the
    store maintains **per-event-type buckets** (sequence-ordered
    ``(seq, event)`` lists) and tracks whether append timestamps have
    stayed monotone — :meth:`query` uses both to scan only the entries
    a filter can actually match instead of the whole retained window.

    Durability is delegated to a pluggable *backend*
    (:mod:`repro.core.storage`): the default
    :class:`~repro.core.storage.memory.MemoryBackend` keeps the store's
    historical volatile behaviour, while a
    :class:`~repro.core.storage.segments.SegmentLogBackend` write-ahead
    logs every batch and replays the log at construction — a store
    built over a non-empty log resumes the crashed incarnation's
    window, sequence counter and lifetime totals.
    """

    def __init__(
        self,
        max_events: int = 100_000,
        backend: Optional[StoreBackend] = None,
    ) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1: {max_events}")
        self.max_events = max_events
        self.backend = backend if backend is not None else MemoryBackend()
        self._lock = threading.Lock()
        self._events: Deque[tuple[int, FileEvent]] = deque()
        self._next_seq = 1
        self.total_stored = 0
        self.total_rotated = 0
        # Query index state: per-type buckets, a count of entries they
        # collectively represent (mismatch with len(_events) => a
        # hand-mutated window; rebuilt lazily), and timestamp
        # monotonicity tracking for the time-window binary search.
        self._by_type: Dict[EventType, _TypeBucket] = {}
        self._indexed_events = 0
        self._index_dirty = False
        self._ts_monotone = True
        self._last_ts = float("-inf")
        #: Operation counters: how often the store lock was taken and how
        #: many (seq, event) pairs retrieval scans have touched.  The
        #: ingest micro-benchmark asserts batching keeps both O(batches),
        #: not O(events); the query benchmark asserts indexed queries
        #: touch only candidate entries, not the window.
        self.lock_acquisitions = 0
        self.events_scanned = 0
        recovered = self.backend.recover(max_events)
        if recovered is not None:
            self._events.extend(recovered.entries)
            self._next_seq = recovered.next_seq
            self.total_stored = recovered.total_stored
            self.total_rotated = recovered.total_rotated
            self._rebuild_index()

    def append(self, event: FileEvent) -> int:
        """Store *event*; returns its sequence number."""
        return self.extend([event])[0]

    def extend(self, events: list[FileEvent]) -> list[int]:
        """Store a batch atomically; returns the assigned sequence numbers.

        One lock acquisition per call: the batch receives a contiguous
        run of sequence numbers, so concurrent extenders can never
        interleave their numbering within a batch.

        Write-ahead order: the batch reaches the durability backend
        *before* any in-memory state mutates, so a backend failure
        (disk full) leaves the store unchanged and a crash after the
        append is recoverable.
        """
        if not events:
            return []
        with self._lock:
            self.lock_acquisitions += 1
            first = self._next_seq
            self.backend.append(first, events)
            self._next_seq += len(events)
            for offset, event in enumerate(events):
                entry = (first + offset, event)
                self._events.append(entry)
                bucket = self._by_type.get(event.event_type)
                if bucket is None:
                    bucket = self._by_type[event.event_type] = _TypeBucket()
                bucket.entries.append(entry)
                self._indexed_events += 1
                if event.timestamp < self._last_ts:
                    self._ts_monotone = False
                else:
                    self._last_ts = event.timestamp
            self.total_stored += len(events)
            overflow = len(self._events) - self.max_events
            if overflow > 0:
                for _ in range(overflow):
                    seq, event = self._events.popleft()
                    self._evict_from_bucket(seq, event)
                self.total_rotated += overflow
                self.backend.note_floor(self._events[0][0])
            return list(range(first, first + len(events)))

    def discard_after(self, seq: int) -> int:
        """Drop retained entries with sequence > *seq* and rewind numbering.

        The restart primitive for replayed ingest: a recovered shard
        store trims past its parent bridge's ack watermark so replayed
        in-flight batches regenerate their original sequence numbers
        (downstream watermark dedup then works unchanged).  Lifetime
        ``total_stored`` is decremented for the dropped entries — the
        replay will count them again.  Returns the number dropped.

        The durable backend is *not* rewound: orphaned log records
        above *seq* are shadowed at the next recovery by the replayed
        records (same sequence numbers, later in the log — last wins).
        """
        with self._lock:
            self.lock_acquisitions += 1
            dropped = 0
            while self._events and self._events[-1][0] > seq:
                self._events.pop()
                dropped += 1
            if dropped:
                self.total_stored -= dropped
                self._index_dirty = True
            if seq + 1 < self._next_seq:
                self._next_seq = max(seq + 1, 1)
            return dropped

    def close(self) -> None:
        """Flush and release the durability backend (no-op for memory)."""
        self.backend.close()

    # -- query index maintenance --------------------------------------------

    def _evict_from_bucket(self, seq: int, event: FileEvent) -> None:
        """Advance the evicted event's bucket head (rotation upkeep)."""
        if self._index_dirty:
            return
        bucket = self._by_type.get(event.event_type)
        if (
            bucket is None
            or bucket.head >= len(bucket.entries)
            or bucket.entries[bucket.head][0] != seq
        ):
            # The window was mutated behind the store's back (hand-built
            # restore); rebuild lazily on the next query.
            self._index_dirty = True
            return
        bucket.head += 1
        bucket.compact_if_needed()
        self._indexed_events -= 1

    def _rebuild_index(self) -> None:
        """Recompute the buckets from the window (callers hold the lock)."""
        self._by_type = {}
        self._ts_monotone = True
        self._last_ts = float("-inf")
        for entry in self._events:
            event = entry[1]
            bucket = self._by_type.get(event.event_type)
            if bucket is None:
                bucket = self._by_type[event.event_type] = _TypeBucket()
            bucket.entries.append(entry)
            if event.timestamp < self._last_ts:
                self._ts_monotone = False
            else:
                self._last_ts = event.timestamp
        self._indexed_events = len(self._events)
        self._index_dirty = False

    # -- retrieval API ------------------------------------------------------

    def _start_index(self, seq: int) -> int:
        """Index of the first retained entry with sequence > *seq*.

        Callers hold the lock.  Sequence numbers in the window are
        contiguous by construction, so the position is pure arithmetic;
        a non-contiguous window (only possible via a hand-built restore)
        falls back to bisect over an indexable view.
        """
        if not self._events:
            return 0
        oldest = self._events[0][0]
        newest = self._events[-1][0]
        if newest - oldest == len(self._events) - 1:  # contiguous
            return min(max(seq - oldest + 1, 0), len(self._events))
        return bisect_right(_SeqView(self._events), seq)

    def since(self, seq: int, limit: Optional[int] = None) -> list[tuple[int, FileEvent]]:
        """Events with sequence number > *seq* (the catch-up primitive).

        Indexed: events at or below *seq* are never touched, and
        *limit* bounds the scan itself, not a post-filter — so catching
        up near the head of a full store is O(limit), not O(window).
        """
        with self._lock:
            self.lock_acquisitions += 1
            start = self._start_index(seq)
            stop = len(self._events)
            if limit is not None:
                stop = min(stop, start + max(limit, 0))
            matched = list(islice(self._events, start, stop))
            self.events_scanned += len(matched)
        return matched

    def recent(self, count: int) -> list[tuple[int, FileEvent]]:
        """The most recent *count* events, oldest first."""
        if count < 0:
            raise ValueError(f"negative count: {count}")
        if count == 0:
            return []
        with self._lock:
            self.lock_acquisitions += 1
            start = max(len(self._events) - count, 0)
            matched = list(islice(self._events, start, len(self._events)))
            self.events_scanned += len(matched)
        return matched

    def _query_candidates(
        self,
        event_type: Optional[EventType],
        since_time: Optional[float],
        until_time: Optional[float],
    ) -> Iterable[tuple[int, FileEvent]]:
        """Narrowest indexed candidate stream for a query (lock held).

        * A type filter selects that type's bucket; a time window over a
          monotone store additionally binary-searches the bucket's
          timestamp bounds.
        * A time window alone (monotone store) bisects every bucket and
          merges the slices back into sequence order.
        * Otherwise the whole retained window is the candidate set.
        """
        if event_type is not None:
            bucket = self._by_type.get(event_type)
            if bucket is None:
                return ()
            if self._ts_monotone and (
                since_time is not None or until_time is not None
            ):
                lo, hi = bucket.time_bounds(since_time, until_time)
            else:
                lo, hi = bucket.head, len(bucket.entries)
            # map binds the bucket immediately (a generator expression
            # here would late-bind the loop variable below).
            return map(bucket.entries.__getitem__, range(lo, hi))
        if self._ts_monotone and (
            since_time is not None or until_time is not None
        ):
            streams = []
            for bucket in self._by_type.values():
                lo, hi = bucket.time_bounds(since_time, until_time)
                if lo < hi:
                    streams.append(
                        map(bucket.entries.__getitem__, range(lo, hi))
                    )
            if not streams:
                return ()
            if len(streams) == 1:
                return streams[0]
            return merge(*streams, key=lambda entry: entry[0])
        return self._events

    def query(
        self,
        path_prefix: Optional[str] = None,
        event_type: Optional[EventType] = None,
        since_time: Optional[float] = None,
        until_time: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[int, FileEvent]]:
        """Filtered retrieval over the retained window.

        Indexed: a type filter scans only that type's bucket, and a
        time window over a timestamp-monotone store binary-searches its
        bounds instead of visiting out-of-window entries — so
        ``events_scanned`` grows with the candidate set, not the
        retained window.  The filters are still applied to every
        candidate (the index only prunes), so results are identical to
        a full linear scan.

        The scan runs under the lock — like :meth:`since` and
        :meth:`recent` — so ``events_scanned`` updates atomically with
        respect to concurrent queries and :meth:`reset_op_counters`.
        """
        with self._lock:
            self.lock_acquisitions += 1
            if self._index_dirty or self._indexed_events != len(self._events):
                self._rebuild_index()
            probe = (
                prefix_probe(path_prefix) if path_prefix is not None else None
            )
            results: list[tuple[int, FileEvent]] = []
            for seq, event in self._query_candidates(
                event_type, since_time, until_time
            ):
                self.events_scanned += 1
                if event_type is not None and event.event_type is not event_type:
                    continue
                if since_time is not None and event.timestamp < since_time:
                    continue
                if until_time is not None and event.timestamp > until_time:
                    continue
                if path_prefix is not None and not event.matches_prefix(
                    path_prefix, probe
                ):
                    continue
                results.append((seq, event))
                if limit is not None and len(results) >= limit:
                    break
        return results

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def last_seq(self) -> int:
        """Highest sequence number issued (0 if empty history)."""
        with self._lock:
            return self._next_seq - 1

    @property
    def oldest_retained_seq(self) -> Optional[int]:
        """Sequence number of the oldest retained event (None if empty)."""
        with self._lock:
            return self._events[0][0] if self._events else None

    def reset_op_counters(self) -> None:
        """Zero the lock/scan operation counters (benchmark hygiene)."""
        with self._lock:
            self.lock_acquisitions = 0
            self.events_scanned = 0

    # -- persistence ------------------------------------------------------

    def save(self, path: str) -> int:
        """Persist the retained window to *path* as JSON lines.

        Returns the number of events written.  The header carries the
        sequence counter (so a restore continues numbering without
        reuse) and the lifetime ``total_stored``/``total_rotated``
        counters, so the ``store_rotated`` and lifetime-stored gauges
        survive an aggregator restart.

        On a durable backend the snapshot *truncates the log*: once the
        file is written, the backend checkpoint advances past the
        snapshotted history and fully-covered segments are deleted —
        the snapshot is durable first, so a crash anywhere in between
        loses nothing.
        """
        import json

        with self._lock:
            self.lock_acquisitions += 1
            snapshot = list(self._events)
            next_seq = self._next_seq
            total_stored = self.total_stored
            total_rotated = self.total_rotated
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"next_seq": next_seq,
                                     "max_events": self.max_events,
                                     "total_stored": total_stored,
                                     "total_rotated": total_rotated}) + "\n")
            for seq, event in snapshot:
                handle.write(
                    json.dumps({"seq": seq, "event": event.to_dict()}) + "\n"
                )
            handle.flush()
            if self.backend.durable:
                import os

                os.fsync(handle.fileno())
        with self._lock:
            self.lock_acquisitions += 1
            self.backend.mark_snapshotted(next_seq - 1, total_stored)
        return len(snapshot)

    @classmethod
    def load(
        cls, path: str, backend: Optional[StoreBackend] = None
    ) -> "EventStore":
        """Restore a store previously written by :meth:`save`.

        With a durable *backend*, the snapshot is merged with whatever
        the backend's log recovered: log records newer than the
        snapshot (appended after the save, before the crash) extend the
        restored window, and the merged window is then adopted back
        into the log so it alone reproduces the store from now on.
        """
        import json

        from repro.core.events import FileEvent

        with open(path, "r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
            store = cls(max_events=header["max_events"])
            for line in handle:
                entry = json.loads(line)
                store._events.append(
                    (entry["seq"], FileEvent.from_dict(entry["event"]))
                )
            store._next_seq = header["next_seq"]
            # Restore lifetime counters.  Files written before the
            # counters were persisted derive them from the numbering:
            # every assigned sequence number was stored once, and
            # whatever is not retained was rotated out.
            derived_stored = store._next_seq - 1
            store.total_stored = header.get("total_stored", derived_stored)
            store.total_rotated = header.get(
                "total_rotated", derived_stored - len(store._events)
            )
        if backend is not None:
            recovered = backend.recover(store.max_events)
            if recovered is not None:
                snapshot_last = store._next_seq - 1
                fresh = [
                    entry
                    for entry in recovered.entries
                    if entry[0] > snapshot_last
                ]
                store._events.extend(fresh)
                store.total_stored += len(fresh)
                overflow = len(store._events) - store.max_events
                if overflow > 0:
                    for _ in range(overflow):
                        store._events.popleft()
                    store.total_rotated += overflow
                store._next_seq = max(store._next_seq, recovered.next_seq)
            backend.adopt(
                list(store._events), store._next_seq, store.total_stored
            )
            store.backend = backend
        # The filled window bypassed extend(): rebuild the query index
        # (buckets, ``_last_ts``, monotonicity) so a time-window query
        # cannot take the binary-search fast path over unindexed data
        # and the next extend() judges monotonicity against the real
        # last timestamp instead of -inf.
        store._rebuild_index()
        return store

    def approximate_memory_bytes(self) -> int:
        """Rough memory footprint of the retained window.

        Used by the overhead experiment (Table 3) to reason about the
        Aggregator's memory being dominated by the local store.
        """
        # An event is a small frozen dataclass of ~12 short fields; a
        # conservative flat estimate keeps this O(1).
        per_event = 700
        return len(self) * per_event
