"""The Aggregator's rotating event catalog with a retrieval API.

The paper: the Aggregator stores events "in a local database", maintains
it as a *rotating* catalog (old events age out at a size bound — Table 3
attributes the Aggregator's memory footprint to this store and notes a
production deployment would cap it) and "exposes an API to enable
consumers to retrieve historic events" for fault tolerance.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Optional

from repro.core.events import EventType, FileEvent


class EventStore:
    """A bounded, indexed, thread-safe catalog of events.

    Every stored event gets a monotonically increasing *sequence number*;
    consumers that disconnect remember the last sequence they saw and
    catch up with :meth:`since`.
    """

    def __init__(self, max_events: int = 100_000) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1: {max_events}")
        self.max_events = max_events
        self._lock = threading.Lock()
        self._events: Deque[tuple[int, FileEvent]] = deque()
        self._next_seq = 1
        self.total_stored = 0
        self.total_rotated = 0

    def append(self, event: FileEvent) -> int:
        """Store *event*; returns its sequence number."""
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            self._events.append((seq, event))
            self.total_stored += 1
            while len(self._events) > self.max_events:
                self._events.popleft()
                self.total_rotated += 1
            return seq

    def extend(self, events: list[FileEvent]) -> list[int]:
        """Store a batch; returns the assigned sequence numbers."""
        return [self.append(event) for event in events]

    # -- retrieval API ------------------------------------------------------

    def since(self, seq: int, limit: Optional[int] = None) -> list[tuple[int, FileEvent]]:
        """Events with sequence number > *seq* (the catch-up primitive)."""
        with self._lock:
            matched = [(s, e) for s, e in self._events if s > seq]
        if limit is not None:
            matched = matched[:limit]
        return matched

    def recent(self, count: int) -> list[tuple[int, FileEvent]]:
        """The most recent *count* events, oldest first."""
        if count < 0:
            raise ValueError(f"negative count: {count}")
        with self._lock:
            snapshot = list(self._events)
        return snapshot[-count:] if count else []

    def query(
        self,
        path_prefix: Optional[str] = None,
        event_type: Optional[EventType] = None,
        since_time: Optional[float] = None,
        until_time: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[int, FileEvent]]:
        """Filtered retrieval over the retained window."""
        with self._lock:
            snapshot = list(self._events)
        results: list[tuple[int, FileEvent]] = []
        for seq, event in snapshot:
            if event_type is not None and event.event_type is not event_type:
                continue
            if since_time is not None and event.timestamp < since_time:
                continue
            if until_time is not None and event.timestamp > until_time:
                continue
            if path_prefix is not None and not event.matches_prefix(path_prefix):
                continue
            results.append((seq, event))
            if limit is not None and len(results) >= limit:
                break
        return results

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def last_seq(self) -> int:
        """Highest sequence number issued (0 if empty history)."""
        with self._lock:
            return self._next_seq - 1

    @property
    def oldest_retained_seq(self) -> Optional[int]:
        """Sequence number of the oldest retained event (None if empty)."""
        with self._lock:
            return self._events[0][0] if self._events else None

    # -- persistence ------------------------------------------------------

    def save(self, path: str) -> int:
        """Persist the retained window to *path* as JSON lines.

        Returns the number of events written.  The sequence counter is
        saved too, so a restore continues numbering without reuse.
        """
        import json

        with self._lock:
            snapshot = list(self._events)
            next_seq = self._next_seq
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"next_seq": next_seq,
                                     "max_events": self.max_events}) + "\n")
            for seq, event in snapshot:
                handle.write(
                    json.dumps({"seq": seq, "event": event.to_dict()}) + "\n"
                )
        return len(snapshot)

    @classmethod
    def load(cls, path: str) -> "EventStore":
        """Restore a store previously written by :meth:`save`."""
        import json

        from repro.core.events import FileEvent

        with open(path, "r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
            store = cls(max_events=header["max_events"])
            for line in handle:
                entry = json.loads(line)
                store._events.append(
                    (entry["seq"], FileEvent.from_dict(entry["event"]))
                )
            store._next_seq = header["next_seq"]
            store.total_stored = len(store._events)
        return store

    def approximate_memory_bytes(self) -> int:
        """Rough memory footprint of the retained window.

        Used by the overhead experiment (Table 3) to reason about the
        Aggregator's memory being dominated by the local store.
        """
        # An event is a small frozen dataclass of ~12 short fields; a
        # conservative flat estimate keeps this O(1).
        per_event = 700
        return len(self) * per_event
