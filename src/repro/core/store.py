"""The Aggregator's rotating event catalog with a retrieval API.

The paper: the Aggregator stores events "in a local database", maintains
it as a *rotating* catalog (old events age out at a size bound — Table 3
attributes the Aggregator's memory footprint to this store and notes a
production deployment would cap it) and "exposes an API to enable
consumers to retrieve historic events" for fault tolerance.

Two properties matter for the §5.2 hot path and are kept observable via
operation counters (``lock_acquisitions``, ``events_scanned``):

* **Batch ingest is atomic** — :meth:`extend` assigns a contiguous run
  of sequence numbers under ONE lock acquisition, so concurrent
  collectors never interleave within a batch and the per-event locking
  cost is amortised away.
* **Catch-up is indexed** — sequence numbers in the retained window are
  contiguous (append assigns consecutively, rotation evicts from the
  left), so :meth:`since` locates its start position with index
  arithmetic (a degenerate bisect) instead of scanning the whole deque,
  and honors ``limit`` during the scan.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections import deque
from itertools import islice
from typing import Deque, Optional

from repro.core.events import EventType, FileEvent


class _SeqView:
    """An indexable view of the stored sequence numbers (bisect support).

    Only used on the fallback path when the retained window is not
    contiguous (e.g. a hand-crafted restore); bisect then performs
    O(log n) indexed probes instead of a full scan.
    """

    def __init__(self, events: Deque[tuple[int, FileEvent]]) -> None:
        self._events = events

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index: int) -> int:
        return self._events[index][0]


class EventStore:
    """A bounded, indexed, thread-safe catalog of events.

    Every stored event gets a monotonically increasing *sequence number*;
    consumers that disconnect remember the last sequence they saw and
    catch up with :meth:`since`.
    """

    def __init__(self, max_events: int = 100_000) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1: {max_events}")
        self.max_events = max_events
        self._lock = threading.Lock()
        self._events: Deque[tuple[int, FileEvent]] = deque()
        self._next_seq = 1
        self.total_stored = 0
        self.total_rotated = 0
        #: Operation counters: how often the store lock was taken and how
        #: many (seq, event) pairs retrieval scans have touched.  The
        #: ingest micro-benchmark asserts batching keeps both O(batches),
        #: not O(events).
        self.lock_acquisitions = 0
        self.events_scanned = 0

    def append(self, event: FileEvent) -> int:
        """Store *event*; returns its sequence number."""
        return self.extend([event])[0]

    def extend(self, events: list[FileEvent]) -> list[int]:
        """Store a batch atomically; returns the assigned sequence numbers.

        One lock acquisition per call: the batch receives a contiguous
        run of sequence numbers, so concurrent extenders can never
        interleave their numbering within a batch.
        """
        if not events:
            return []
        with self._lock:
            self.lock_acquisitions += 1
            first = self._next_seq
            self._next_seq += len(events)
            self._events.extend(
                (first + offset, event) for offset, event in enumerate(events)
            )
            self.total_stored += len(events)
            overflow = len(self._events) - self.max_events
            if overflow > 0:
                for _ in range(overflow):
                    self._events.popleft()
                self.total_rotated += overflow
            return list(range(first, first + len(events)))

    # -- retrieval API ------------------------------------------------------

    def _start_index(self, seq: int) -> int:
        """Index of the first retained entry with sequence > *seq*.

        Callers hold the lock.  Sequence numbers in the window are
        contiguous by construction, so the position is pure arithmetic;
        a non-contiguous window (only possible via a hand-built restore)
        falls back to bisect over an indexable view.
        """
        if not self._events:
            return 0
        oldest = self._events[0][0]
        newest = self._events[-1][0]
        if newest - oldest == len(self._events) - 1:  # contiguous
            return min(max(seq - oldest + 1, 0), len(self._events))
        return bisect_right(_SeqView(self._events), seq)

    def since(self, seq: int, limit: Optional[int] = None) -> list[tuple[int, FileEvent]]:
        """Events with sequence number > *seq* (the catch-up primitive).

        Indexed: events at or below *seq* are never touched, and
        *limit* bounds the scan itself, not a post-filter — so catching
        up near the head of a full store is O(limit), not O(window).
        """
        with self._lock:
            self.lock_acquisitions += 1
            start = self._start_index(seq)
            stop = len(self._events)
            if limit is not None:
                stop = min(stop, start + max(limit, 0))
            matched = list(islice(self._events, start, stop))
            self.events_scanned += len(matched)
        return matched

    def recent(self, count: int) -> list[tuple[int, FileEvent]]:
        """The most recent *count* events, oldest first."""
        if count < 0:
            raise ValueError(f"negative count: {count}")
        if count == 0:
            return []
        with self._lock:
            self.lock_acquisitions += 1
            start = max(len(self._events) - count, 0)
            matched = list(islice(self._events, start, len(self._events)))
            self.events_scanned += len(matched)
        return matched

    def query(
        self,
        path_prefix: Optional[str] = None,
        event_type: Optional[EventType] = None,
        since_time: Optional[float] = None,
        until_time: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[int, FileEvent]]:
        """Filtered retrieval over the retained window.

        The scan runs under the lock — like :meth:`since` and
        :meth:`recent` — so ``events_scanned`` updates atomically with
        respect to concurrent queries and :meth:`reset_op_counters`.
        """
        with self._lock:
            self.lock_acquisitions += 1
            results: list[tuple[int, FileEvent]] = []
            for seq, event in self._events:
                self.events_scanned += 1
                if event_type is not None and event.event_type is not event_type:
                    continue
                if since_time is not None and event.timestamp < since_time:
                    continue
                if until_time is not None and event.timestamp > until_time:
                    continue
                if path_prefix is not None and not event.matches_prefix(
                    path_prefix
                ):
                    continue
                results.append((seq, event))
                if limit is not None and len(results) >= limit:
                    break
        return results

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def last_seq(self) -> int:
        """Highest sequence number issued (0 if empty history)."""
        with self._lock:
            return self._next_seq - 1

    @property
    def oldest_retained_seq(self) -> Optional[int]:
        """Sequence number of the oldest retained event (None if empty)."""
        with self._lock:
            return self._events[0][0] if self._events else None

    def reset_op_counters(self) -> None:
        """Zero the lock/scan operation counters (benchmark hygiene)."""
        with self._lock:
            self.lock_acquisitions = 0
            self.events_scanned = 0

    # -- persistence ------------------------------------------------------

    def save(self, path: str) -> int:
        """Persist the retained window to *path* as JSON lines.

        Returns the number of events written.  The header carries the
        sequence counter (so a restore continues numbering without
        reuse) and the lifetime ``total_stored``/``total_rotated``
        counters, so the ``store_rotated`` and lifetime-stored gauges
        survive an aggregator restart.
        """
        import json

        with self._lock:
            snapshot = list(self._events)
            next_seq = self._next_seq
            total_stored = self.total_stored
            total_rotated = self.total_rotated
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"next_seq": next_seq,
                                     "max_events": self.max_events,
                                     "total_stored": total_stored,
                                     "total_rotated": total_rotated}) + "\n")
            for seq, event in snapshot:
                handle.write(
                    json.dumps({"seq": seq, "event": event.to_dict()}) + "\n"
                )
        return len(snapshot)

    @classmethod
    def load(cls, path: str) -> "EventStore":
        """Restore a store previously written by :meth:`save`."""
        import json

        from repro.core.events import FileEvent

        with open(path, "r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
            store = cls(max_events=header["max_events"])
            for line in handle:
                entry = json.loads(line)
                store._events.append(
                    (entry["seq"], FileEvent.from_dict(entry["event"]))
                )
            store._next_seq = header["next_seq"]
            # Restore lifetime counters.  Files written before the
            # counters were persisted derive them from the numbering:
            # every assigned sequence number was stored once, and
            # whatever is not retained was rotated out.
            derived_stored = store._next_seq - 1
            store.total_stored = header.get("total_stored", derived_stored)
            store.total_rotated = header.get(
                "total_rotated", derived_stored - len(store._events)
            )
        return store

    def approximate_memory_bytes(self) -> int:
        """Rough memory footprint of the retained window.

        Used by the overhead experiment (Table 3) to reason about the
        Aggregator's memory being dominated by the local store.
        """
        # An event is a small frozen dataclass of ~12 short fields; a
        # conservative flat estimate keeps this O(1).
        per_event = 700
        return len(self) * per_event
