"""The LustreMonitor orchestrator: wire collectors + aggregator + consumers.

This is the top-level object a deployment creates (Figure 2): it builds
one :class:`Collector` per MDS of the target filesystem, a single
:class:`Aggregator`, and hands out :class:`Consumer` subscriptions.  It
supports both live threaded operation (``start()``/``stop()``) and
deterministic stepping (``pump()``), and aggregates pipeline statistics
for the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.aggregator import Aggregator, AggregatorConfig
from repro.core.collector import Collector, CollectorConfig
from repro.core.consumer import Consumer, EventCallback
from repro.core.events import FileEvent
from repro.lustre.fid2path import FidResolver
from repro.lustre.filesystem import LustreFilesystem
from repro.msgq import Context


@dataclass(frozen=True)
class MonitorConfig:
    """Monitor-wide configuration."""

    collector: CollectorConfig = CollectorConfig()
    aggregator: AggregatorConfig = AggregatorConfig()
    #: Share one FidResolver across collectors (single-MDS testbeds) or
    #: give each collector its own (models per-MDS d2path distribution).
    shared_resolver: bool = False
    #: How long a collector's report may block on a full transport
    #: queue before failing (and retrying on the next poll).
    report_timeout: float = 5.0


class _PushSink:
    """EventSink adapter over a PUSH socket."""

    def __init__(self, socket, timeout: float = 5.0) -> None:
        self.socket = socket
        self.timeout = timeout

    def send(self, payload: list[FileEvent]) -> None:
        self.socket.send(payload, timeout=self.timeout)


@dataclass
class MonitorStats:
    """A snapshot of pipeline counters."""

    records_read: int = 0
    events_reported: int = 0
    events_stored: int = 0
    events_published: int = 0
    resolver_invocations: int = 0
    resolver_failures: int = 0
    unresolved_events: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    store_len: int = 0
    per_collector: dict = field(default_factory=dict)


class LustreMonitor:
    """The complete monitor attached to one Lustre filesystem."""

    def __init__(
        self,
        filesystem: LustreFilesystem,
        config: MonitorConfig | None = None,
        context: Context | None = None,
    ) -> None:
        self.fs = filesystem
        self.config = config or MonitorConfig()
        self.context = context or Context()
        self.aggregator = Aggregator(self.context, self.config.aggregator)
        shared = (
            FidResolver(filesystem) if self.config.shared_resolver else None
        )
        self.collectors: list[Collector] = []
        for server in filesystem.cluster.servers:
            push = self.context.push(hwm=self.config.aggregator.hwm).connect(
                self.config.aggregator.inbound_endpoint
            )
            collector = Collector(
                name=server.name,
                filesystem=filesystem,
                mds=server,
                sink=_PushSink(push, timeout=self.config.report_timeout),
                config=self.config.collector,
                resolver=shared or FidResolver(filesystem),
            )
            self.collectors.append(collector)
        self.consumers: list[Consumer] = []
        self._running = False

    # -- consumers ---------------------------------------------------------------

    def subscribe(self, callback: EventCallback, name: str = "consumer") -> Consumer:
        """Attach a new consumer to the live stream.

        Note the slow-joiner property: the consumer sees only events
        published after this call; use :meth:`Consumer.catch_up` to
        backfill from the historic API.
        """
        consumer = Consumer(
            self.context, callback, config=self.config.aggregator, name=name
        )
        self.consumers.append(consumer)
        if self._running:
            consumer.start()
        return consumer

    # -- deterministic stepping -----------------------------------------------------

    def pump(self, consumer_poll: bool = True) -> int:
        """One synchronous sweep of the entire pipeline.

        Collect from every MDS, aggregate (store+publish), then deliver
        to consumers.  Returns the number of events that moved through
        the aggregation stage.
        """
        for collector in self.collectors:
            collector.poll_once()
        handled = self.aggregator.pump_once()
        if consumer_poll:
            for consumer in self.consumers:
                consumer.poll_once()
        return handled

    def drain(self, max_rounds: int = 10_000) -> int:
        """Pump until no events remain anywhere in the pipeline."""
        total = 0
        for _ in range(max_rounds):
            moved = self.pump()
            total += moved
            if moved == 0:
                break
        return total

    # -- live threaded mode ------------------------------------------------------------

    def start(self) -> None:
        """Start aggregator, collectors and subscribed consumers."""
        if self._running:
            return
        self.aggregator.start()
        for collector in self.collectors:
            collector.start()
        for consumer in self.consumers:
            consumer.start()
        self._running = True

    def stop(self) -> None:
        """Stop everything in dependency order, flushing in-flight events."""
        if not self._running:
            return
        for collector in self.collectors:
            collector.stop()
        self.aggregator.stop()
        for consumer in self.consumers:
            consumer.stop()
        self._running = False

    def shutdown(self) -> None:
        """Stop and release changelog users and sockets."""
        self.stop()
        for collector in self.collectors:
            collector.shutdown()
        for consumer in self.consumers:
            consumer.close()
        self.aggregator.close()

    # -- statistics ------------------------------------------------------------------

    def stats(self) -> MonitorStats:
        """Aggregate pipeline counters (for experiments and debugging)."""
        stats = MonitorStats()
        for collector in self.collectors:
            stats.records_read += collector.records_read
            stats.events_reported += collector.events_reported
            stats.resolver_invocations += collector.resolver.invocations
            stats.resolver_failures += collector.resolver.failures
            stats.unresolved_events += collector.processor.unresolved
            if collector.processor.cache is not None:
                stats.cache_hits += collector.processor.cache.hits
                stats.cache_misses += collector.processor.cache.misses
            stats.per_collector[collector.name] = {
                "records_read": collector.records_read,
                "events_reported": collector.events_reported,
                "resolver_invocations": collector.resolver.invocations,
            }
        stats.events_stored = self.aggregator.events_stored
        stats.events_published = self.aggregator.events_published
        stats.store_len = len(self.aggregator.store)
        return stats
