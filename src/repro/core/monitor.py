"""The LustreMonitor orchestrator: wire collectors + aggregator + consumers.

This is the top-level object a deployment creates (Figure 2): it builds
one :class:`Collector` per MDS of the target filesystem, a single
:class:`Aggregator`, and hands out :class:`Consumer` subscriptions.  It
supports both live supervised operation (``start()``/``stop()``) and
deterministic stepping (``pump()``).

The monitor is a :class:`~repro.runtime.Supervisor` composition: every
stage is a supervised service sharing one metrics registry.  Start
order is consumers → aggregator → collectors (producers last) and stop
is the exact reverse — collectors stop and flush first, the aggregator
pumps its final batches, and consumers take a final poll before
stopping, so nothing flushed during shutdown is published into a dead
subscription.  A collector that crashes mid-poll is restarted under
the configured :class:`~repro.runtime.RestartPolicy`; report-before-
purge makes that loss-free (at-least-once).

``stats()`` is derived from the shared registry — no hand-scraped
attribute sums — and includes every service's uniform health record.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.aggregator import Aggregator, AggregatorConfig
from repro.core.collector import Collector, CollectorConfig
from repro.core.consumer import Consumer, EventCallback
from repro.core.events import FileEvent
from repro.lustre.fid2path import FidResolver
from repro.lustre.filesystem import LustreFilesystem
from repro.metrics.registry import MetricsRegistry
from repro.metrics.tracing import TRACE_SCOPE, Tracer, make_tracer
from repro.msgq import Transport, make_transport
from repro.runtime import RestartPolicy, Supervisor
from repro.telemetry import TelemetryConfig, TelemetryPlane


@dataclass(frozen=True)
class MonitorConfig:
    """Monitor-wide configuration."""

    collector: CollectorConfig = field(default_factory=CollectorConfig)
    aggregator: AggregatorConfig = field(default_factory=AggregatorConfig)
    #: Share one FidResolver across collectors (single-MDS testbeds) or
    #: give each collector its own (models per-MDS d2path distribution).
    shared_resolver: bool = False
    #: How long a collector's report may block on a full transport
    #: queue before failing (and retrying on the next poll).
    report_timeout: float = 5.0
    #: How crashed pipeline services are restarted.
    restart_policy: RestartPolicy = field(default_factory=RestartPolicy)
    #: How often the supervisor sweeps for crashed children (seconds).
    supervise_interval: float = 0.01
    #: Transport backend: ``"inproc"`` (default) keeps the aggregator
    #: in-process; ``"multiproc"`` moves its store+publish work into a
    #: child process behind a
    #: :class:`~repro.msgq.multiproc.ProcessShardBridge`.
    transport: str = "inproc"
    #: TCP port for the operator telemetry plane's HTTP scrape server
    #: (``/metrics``, ``/health``, ``/alerts``); ``None`` leaves the
    #: plane off, ``0`` binds an ephemeral port (read it back from
    #: ``monitor.telemetry.port``).
    telemetry_port: int | None = None
    #: Full telemetry-plane configuration; overrides ``telemetry_port``.
    telemetry: TelemetryConfig | None = None

    def __post_init__(self) -> None:
        if self.transport not in ("inproc", "multiproc"):
            raise ValueError(
                f"transport must be 'inproc' or 'multiproc': "
                f"{self.transport!r}"
            )


class PushSink:
    """EventSink adapter over a PUSH socket.

    Also the building block for the cluster's routing sink, which holds
    one of these per aggregator shard.
    """

    def __init__(self, socket, timeout: float = 5.0) -> None:
        self.socket = socket
        self.timeout = timeout

    def send(self, payload: list[FileEvent]) -> None:
        self.socket.send(payload, timeout=self.timeout)

    def send_many(self, payloads: list[list[FileEvent]]) -> None:
        """Move several report chunks in one fabric round-trip."""
        self.socket.send_many(payloads, timeout=self.timeout)


#: Pre-cluster private name, kept for existing imports.
_PushSink = PushSink


@dataclass
class MonitorStats:
    """A snapshot of pipeline counters (derived from the registry)."""

    records_read: int = 0
    events_reported: int = 0
    events_stored: int = 0
    events_published: int = 0
    resolver_invocations: int = 0
    resolver_failures: int = 0
    unresolved_events: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    store_len: int = 0
    per_collector: dict = field(default_factory=dict)
    #: Uniform per-service health: state, restart_count, last_error.
    services: dict = field(default_factory=dict)
    #: Per-stage latency summaries (``{stage: {count, mean, max, p50,
    #: p95, p99}}``) from the pipeline tracing histograms; empty when
    #: tracing is disabled (sample rate 0).
    stage_latency: dict = field(default_factory=dict)


class LustreMonitor:
    """The complete monitor attached to one Lustre filesystem."""

    def __init__(
        self,
        filesystem: LustreFilesystem,
        config: MonitorConfig | None = None,
        context: Transport | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.fs = filesystem
        self.config = config or MonitorConfig()
        self.context = context or make_transport(self.config.transport)
        #: One registry shared by every service in this monitor's tree.
        self.registry = registry or MetricsRegistry()
        #: One stage tracer shared by the whole tree, clocked by the
        #: filesystem's clock so stage deltas live in the same time
        #: domain as the events (wall-clock live, virtual in sims).
        #: ``config.aggregator.trace_sample_rate`` is the single knob;
        #: 0.0 disables tracing end to end.
        self.tracer: Tracer = make_tracer(
            self.registry,
            self.config.aggregator.trace_sample_rate,
            clock=getattr(filesystem, "clock", None),
        )
        self.supervisor = Supervisor(
            "monitor",
            policy=self.config.restart_policy,
            registry=self.registry,
            poll_interval=self.config.supervise_interval,
        )
        if self.config.transport == "multiproc":
            # The aggregator's store+publish work runs in a child
            # process; the bridge binds the same endpoints, so the
            # collectors/consumers built below are none the wiser.
            # (Stage tracing then lives in the child's registry.)
            self.aggregator = self._make_bridge()
        else:
            self.aggregator = Aggregator(
                self.context,
                self.config.aggregator,
                registry=self.registry,
                tracer=self.tracer,
            )
        self._aggregator_key = self.supervisor.add_child(self.aggregator)
        shared = (
            FidResolver(filesystem) if self.config.shared_resolver else None
        )
        self.collectors: list[Collector] = []
        for server in filesystem.cluster.servers:
            push = self.context.push(hwm=self.config.aggregator.hwm).connect(
                self.config.aggregator.inbound_endpoint
            )
            collector = Collector(
                name=server.name,
                filesystem=filesystem,
                mds=server,
                sink=PushSink(push, timeout=self.config.report_timeout),
                config=self.config.collector,
                resolver=shared or FidResolver(filesystem),
                registry=self.registry,
                tracer=self.tracer,
            )
            # Collectors (producers) start after — and stop before —
            # the aggregator that drains them.
            self.supervisor.add_child(
                collector, after=[self._aggregator_key],
                key=collector.metrics.scope,
            )
            self.collectors.append(collector)
        self.consumers: list[Consumer] = []
        #: The operator telemetry plane (scrape server + alert
        #: evaluator + flight recorder); its services run under this
        #: monitor's supervisor.  ``None`` unless configured.
        self.telemetry: TelemetryPlane | None = None
        telemetry_config = self.config.telemetry
        if telemetry_config is None and self.config.telemetry_port is not None:
            telemetry_config = TelemetryConfig(port=self.config.telemetry_port)
        if telemetry_config is not None:
            self.telemetry = TelemetryPlane(
                self.registry,
                telemetry_config,
                health_provider=self.supervisor.health,
            )
            self.telemetry.add_to(self.supervisor)

    def _make_bridge(self):
        """The process-shard bridge for this monitor's one aggregator."""
        factory = getattr(self.context, "process_shard", None)
        if factory is not None:
            return factory(
                "aggregator", self.config.aggregator, registry=self.registry
            )
        from repro.msgq.multiproc import ProcessShardBridge

        return ProcessShardBridge(
            "aggregator",
            self.config.aggregator,
            self.context,
            registry=self.registry,
        )

    # -- consumers ---------------------------------------------------------------

    def subscribe(
        self,
        callback: EventCallback,
        name: str = "consumer",
        batch_callback=None,
        path_prefix: str | None = None,
    ) -> Consumer:
        """Attach a new consumer to the live stream.

        Note the slow-joiner property: the consumer sees only events
        published after this call; use :meth:`Consumer.catch_up` to
        backfill from the historic API.  *batch_callback* delivers
        whole fresh batches instead of per-event callbacks (the Ripple
        agent's compiled filter path); *path_prefix* installs an
        event-level prefix filter with a pre-normalized probe.
        """
        consumer = Consumer(
            self.context,
            callback,
            config=self.config.aggregator,
            name=name,
            registry=self.registry,
            tracer=self.tracer,
            batch_callback=batch_callback,
            path_prefix=path_prefix,
        )
        self.consumers.append(consumer)
        # ``before`` the aggregator: consumers stop after it has taken
        # its final flush, so shutdown publishes are still delivered.
        self.supervisor.add_child(
            consumer,
            before=[self._aggregator_key],
            key=consumer.metrics.scope,
        )
        return consumer

    # -- deterministic stepping -----------------------------------------------------

    def pump(self, consumer_poll: bool = True) -> int:
        """One synchronous sweep of the entire pipeline.

        Collect from every MDS, aggregate (store+publish), then deliver
        to consumers.  Returns the number of events that moved through
        the aggregation stage.
        """
        for collector in self.collectors:
            collector.poll_once()
        handled = self.aggregator.pump_once()
        if consumer_poll:
            for consumer in self.consumers:
                consumer.poll_once()
        return handled

    def drain(self, max_rounds: int = 10_000, settle: float = 0.002) -> int:
        """Pump until no events remain anywhere in the pipeline.

        On the multiproc backend a quiet pump can just mean a batch is
        mid-flight across the process boundary, so the drain settles
        while the bridge still reports in-flight work.
        """
        total = 0
        for _ in range(max_rounds):
            moved = self.pump()
            total += moved
            if moved == 0:
                if getattr(self.aggregator, "busy", False):
                    time.sleep(settle)
                    continue
                break
        return total

    # -- live supervised mode ------------------------------------------------------

    @property
    def _running(self) -> bool:
        return self.supervisor.running

    def start(self) -> None:
        """Start the supervision tree (dependency order)."""
        self.supervisor.start()

    def stop(self) -> None:
        """Stop everything in reverse dependency order, flushing
        in-flight events: collectors drain, the aggregator pumps its
        final batches, consumers take a final poll, then all are
        stopped."""
        self.supervisor.stop()

    def shutdown(self) -> None:
        """Stop and release changelog users and sockets."""
        self.supervisor.close()

    def health(self) -> dict:
        """Uniform per-service health for the whole tree."""
        return self.supervisor.health()

    # -- statistics ------------------------------------------------------------------

    def stats(self) -> MonitorStats:
        """Pipeline counters, derived from the shared metrics registry."""
        stats = MonitorStats()
        for collector in self.collectors:
            snap = collector.metrics.snapshot()
            stats.records_read += snap.get("records_read", 0)
            stats.events_reported += snap.get("events_reported", 0)
            stats.resolver_invocations += snap.get("resolver_invocations", 0)
            stats.resolver_failures += snap.get("resolver_failures", 0)
            stats.unresolved_events += snap.get("unresolved_events", 0)
            stats.cache_hits += snap.get("cache_hits", 0)
            stats.cache_misses += snap.get("cache_misses", 0)
            stats.per_collector[collector.name] = {
                "records_read": snap.get("records_read", 0),
                "events_reported": snap.get("events_reported", 0),
                "resolver_invocations": snap.get("resolver_invocations", 0),
            }
        aggregator_snap = self.aggregator.metrics.snapshot()
        stats.events_stored = aggregator_snap.get("events_stored", 0)
        stats.events_published = aggregator_snap.get("events_published", 0)
        stats.store_len = aggregator_snap.get("store_len", 0)
        stats.services = self.supervisor.health()["services"]
        prefix = TRACE_SCOPE + "."
        stats.stage_latency = {
            name[len(prefix):]: histogram.summary()
            for name, histogram in self.registry.histograms().items()
            if name.startswith(prefix)
        }
        return stats
