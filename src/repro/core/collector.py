"""The Collector: per-MDS ChangeLog extraction, processing and reporting.

One Collector is deployed per MDS (paper §4).  For every MDT served by
its MDS it registers a changelog user, then loops:

1. **Detect** — read new records past the purge pointer.
2. **Process** — resolve FIDs to paths (:class:`EventProcessor`).
3. **Report** — send the resulting events to the Aggregator over the
   message fabric (a PUSH socket by default; any transport exposing
   ``send(payload)`` works, which the A4 transport ablation exploits).
4. **Purge** — ``changelog_clear`` up to the last reported record, so
   "events are not missed and the ChangeLog will not become overburdened
   with stale events".

Reporting happens *before* clearing: a crash between the two causes
redelivery, never loss (at-least-once, the same guarantee Ripple's cloud
queue provides downstream).  That property is what makes supervisor
restarts safe: a collector killed mid-poll and restarted re-reads the
unpurged records and re-reports them.

The collector is a :class:`~repro.runtime.Service`: live mode runs the
``poll`` worker with idle backoff, counters live in the shared metrics
registry (old attribute names remain readable as properties), and a
:class:`~repro.runtime.Supervisor` can restart it after a crash.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.core.events import FileEvent, ReportBatch, approx_wire_bytes
from repro.core.processor import EventProcessor, ProcessorConfig
from repro.lustre.fid2path import FidResolver
from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.mds import MetadataServer
from repro.metrics.registry import MetricsRegistry
from repro.metrics.tracing import NULL_TRACER, Tracer
from repro.runtime import Service, ServiceCrash, WorkerSpec
from repro.util.logging import get_logger


class EventSink(Protocol):
    """Anything that can accept a batch of events from a collector.

    Sinks may additionally implement ``send_many(payloads)`` — a list
    of batches moved in one fabric round-trip; collectors use it when
    the flush policy splits a poll into several report messages.
    """

    def send(self, payload: list[FileEvent]) -> None:  # pragma: no cover
        ...


@dataclass(frozen=True)
class CollectorConfig:
    """Collector knobs.

    read_batch:
        Maximum records pulled from a ChangeLog per poll.
    processor:
        Processing-stage configuration (batching/caching).
    poll_interval:
        Idle-backoff base between polls in live threaded mode.
    event_types:
        Optional server-side filter: only these normalized event kinds
        are reported to the aggregator (None = report everything, the
        paper's configuration).  Filtering here saves both transport
        and downstream work when consumers only care about, say,
        creations and deletions.
    batch_events / batch_bytes:
        Report flush policy: a poll's events are split into report
        messages of at most ``batch_events`` events (0 = whole poll in
        one message) or ``batch_bytes`` approximate wire bytes (0 =
        unbounded); all chunks of one MDT poll still move in a single
        fabric round-trip when the sink supports ``send_many``.
    """

    read_batch: int = 256
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    poll_interval: float = 0.002
    event_types: Optional[frozenset] = None
    batch_events: int = 0
    batch_bytes: int = 0

    def __post_init__(self) -> None:
        if self.read_batch < 1:
            raise ValueError(f"read_batch must be >= 1: {self.read_batch}")
        if self.event_types is not None and not self.event_types:
            raise ValueError("event_types filter must be None or non-empty")
        if self.batch_events < 0:
            raise ValueError(f"batch_events must be >= 0: {self.batch_events}")
        if self.batch_bytes < 0:
            raise ValueError(f"batch_bytes must be >= 0: {self.batch_bytes}")


class Collector(Service):
    """Collects events from every MDT ChangeLog of one MDS."""

    def __init__(
        self,
        name: str,
        filesystem: LustreFilesystem,
        mds: MetadataServer,
        sink: EventSink,
        config: CollectorConfig | None = None,
        resolver: Optional[FidResolver] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(name, registry, scope=f"collector.{name}")
        self.fs = filesystem
        self.mds = mds
        self.sink = sink
        #: Stage tracer (shared across the monitor tree); collectors
        #: stamp sampled reports and record the ``collect`` stage.
        self.tracer: Tracer = tracer if tracer is not None else NULL_TRACER
        self.config = config or CollectorConfig()
        #: Live flush knob mirroring the aggregator's: starts at the
        #: configured ``batch_events`` and may be retuned at runtime
        #: while the config stays frozen.
        self.flush_batch_events = self.config.batch_events
        self.resolver = resolver or FidResolver(filesystem)
        self.processor = EventProcessor(self.resolver, self.config.processor)
        # Register one changelog user per MDT on this MDS.
        self._users: dict[int, str] = {
            mdt.index: mdt.changelog.register_user() for mdt in mds.mdts
        }
        self._log = get_logger(f"core.collector.{name}")
        # Pipeline counters (shared registry; see property shims below).
        self._records_read = self.metrics.counter("records_read")
        self._events_reported = self.metrics.counter("events_reported")
        self._events_filtered = self.metrics.counter("events_filtered")
        self._report_failures = self.metrics.counter("report_failures")
        # Processing-stage numbers are derived on read, not double-kept.
        self.metrics.gauge_fn(
            "resolver_invocations", lambda: self.resolver.invocations
        )
        self.metrics.gauge_fn(
            "resolver_failures", lambda: self.resolver.failures
        )
        self.metrics.gauge_fn(
            "unresolved_events", lambda: self.processor.unresolved
        )
        self.metrics.gauge_fn(
            "cache_hits",
            lambda: self.processor.cache.hits if self.processor.cache else 0,
        )
        self.metrics.gauge_fn(
            "cache_misses",
            lambda: self.processor.cache.misses if self.processor.cache else 0,
        )

    # -- legacy counter names (read-only views over the registry) -----------

    @property
    def records_read(self) -> int:
        return self._records_read.value

    @property
    def events_reported(self) -> int:
        return self._events_reported.value

    @property
    def events_filtered(self) -> int:
        return self._events_filtered.value

    @property
    def report_failures(self) -> int:
        return self._report_failures.value

    # -- deterministic single-step mode --------------------------------------

    def poll_once(self) -> int:
        """One detect→process→report→purge round over all MDTs.

        Returns the number of events reported this round.
        """
        reported = 0
        for mdt in self.mds.mdts:
            user = self._users[mdt.index]
            records = mdt.changelog.read(user, max_records=self.config.read_batch)
            if not records:
                continue
            self._records_read.inc(len(records))
            events = self.processor.process(records, mdt.index)
            if self.config.event_types is not None:
                kept = [
                    event
                    for event in events
                    if event.event_type in self.config.event_types
                ]
                self._events_filtered.inc(len(events) - len(kept))
                events = kept
            # Report first (repeatedly retried by the agent per the
            # paper; our in-proc fabric blocks instead), then purge.
            # An all-filtered batch skips the report but still clears.
            if events:
                try:
                    self._report(events)
                except ServiceCrash:
                    # Escalate: the worker dies and the supervisor
                    # restarts it; unpurged records are re-read.
                    raise
                except Exception as exc:
                    self._report_failures.inc()
                    self._log.warning(
                        "report of %d events failed (%s); will re-read",
                        len(events), exc,
                    )
                    # Do NOT clear: records will be re-read and
                    # re-reported, preserving at-least-once delivery.
                    continue
                self._events_reported.inc(len(events))
                reported += len(events)
                if self._log.isEnabledFor(logging.DEBUG):
                    # Correlation: the collector's sequence domain is
                    # the ChangeLog record index range of the batch.
                    self._log.debug(
                        "reported %d events from MDT%d records %d..%d",
                        len(events), mdt.index,
                        records[0].index, records[-1].index,
                        extra={
                            "first_seq": records[0].index,
                            "last_seq": records[-1].index,
                            "batch_events": len(events),
                        },
                    )
            mdt.changelog.clear(user, records[-1].index)
        return reported

    def _flush_chunks(self, events: list[FileEvent]) -> list[list[FileEvent]]:
        """Split one poll's events per the batch_events/batch_bytes policy."""
        max_events = self.flush_batch_events or None
        max_bytes = self.config.batch_bytes or None
        if max_events is None and max_bytes is None:
            return [events]
        chunks: list[list[FileEvent]] = []
        chunk: list[FileEvent] = []
        chunk_bytes = 0
        for event in events:
            size = approx_wire_bytes(event) if max_bytes else 0
            full = chunk and (
                (max_events is not None and len(chunk) >= max_events)
                or (max_bytes is not None and chunk_bytes + size > max_bytes)
            )
            if full:
                chunks.append(chunk)
                chunk, chunk_bytes = [], 0
            chunk.append(event)
            chunk_bytes += size
        if chunk:
            chunks.append(chunk)
        return chunks

    def _report(self, events: list[FileEvent]) -> None:
        """Send one poll's events, honouring the flush policy.

        Multiple chunks go through the sink's ``send_many`` when it has
        one (a single fabric round-trip); otherwise they are sent
        sequentially.  A failure anywhere leaves the changelog
        unpurged, so the whole poll is re-read and re-reported —
        at-least-once, never loss.

        Every report carries events from exactly one MDT (poll_once
        reports per MDT before moving to the next) — the invariant the
        cluster's shard router relies on to route a whole report to one
        shard by its first event's ``mdt_index``.

        A sampled poll is stamped once (``collected_ts``) and wrapped
        in :class:`~repro.core.events.ReportBatch`; the ``collect``
        stage delta (oldest record timestamp → report stamp) is
        recorded here.  Unsampled polls stay plain lists — zero
        tracing work on the hot path.
        """
        chunks: list = self._flush_chunks(events)
        if self.tracer.sample():
            collected_ts = self.tracer.now()
            self.tracer.record(
                "collect", collected_ts - events[0].timestamp
            )
            chunks = [
                ReportBatch(tuple(chunk), collected_ts) for chunk in chunks
            ]
        send_many = getattr(self.sink, "send_many", None)
        if len(chunks) == 1:
            self.sink.send(chunks[0])
        elif send_many is not None:
            send_many(chunks)
        else:
            for chunk in chunks:
                self.sink.send(chunk)

    def drain(self, max_rounds: int = 10_000) -> int:
        """Poll until every ChangeLog is exhausted; returns total events."""
        total = 0
        for _ in range(max_rounds):
            reported = self.poll_once()
            total += reported
            if reported == 0 and not self._has_backlog():
                break
        return total

    def _has_backlog(self) -> bool:
        return any(
            mdt.changelog.read(self._users[mdt.index], max_records=1)
            for mdt in self.mds.mdts
        )

    # -- service runtime ------------------------------------------------------

    def worker_specs(self) -> list[WorkerSpec]:
        return [
            WorkerSpec(
                "poll",
                self.poll_once,
                idle_wait=self.config.poll_interval,
                max_idle_wait=max(self.config.poll_interval, 0.05),
            )
        ]

    def on_stop(self) -> None:
        self.drain(max_rounds=100)  # flush on shutdown

    def on_close(self) -> None:
        # Deregister changelog users (releases purge pointers).
        for mdt in self.mds.mdts:
            user = self._users.pop(mdt.index, None)
            if user is not None:
                mdt.changelog.deregister_user(user)

    def shutdown(self) -> None:
        """Stop and deregister changelog users (alias for close())."""
        self.close()


class CallbackSink:
    """Adapter: wrap a plain callable as an :class:`EventSink`."""

    def __init__(self, callback: Callable[[list[FileEvent]], None]) -> None:
        self.callback = callback

    def send(self, payload: list[FileEvent]) -> None:
        self.callback(payload)

    def send_many(self, payloads: list[list[FileEvent]]) -> None:
        for payload in payloads:
            self.callback(payload)
