"""The Collector: per-MDS ChangeLog extraction, processing and reporting.

One Collector is deployed per MDS (paper §4).  For every MDT served by
its MDS it registers a changelog user, then loops:

1. **Detect** — read new records past the purge pointer.
2. **Process** — resolve FIDs to paths (:class:`EventProcessor`).
3. **Report** — send the resulting events to the Aggregator over the
   message fabric (a PUSH socket by default; any transport exposing
   ``send(payload)`` works, which the A4 transport ablation exploits).
4. **Purge** — ``changelog_clear`` up to the last reported record, so
   "events are not missed and the ChangeLog will not become overburdened
   with stale events".

Reporting happens *before* clearing: a crash between the two causes
redelivery, never loss (at-least-once, the same guarantee Ripple's cloud
queue provides downstream).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.core.events import FileEvent
from repro.core.processor import EventProcessor, ProcessorConfig
from repro.lustre.fid2path import FidResolver
from repro.lustre.filesystem import LustreFilesystem
from repro.lustre.mds import MetadataServer
from repro.util.logging import get_logger


class EventSink(Protocol):
    """Anything that can accept a batch of events from a collector."""

    def send(self, payload: list[FileEvent]) -> None:  # pragma: no cover
        ...


@dataclass(frozen=True)
class CollectorConfig:
    """Collector knobs.

    read_batch:
        Maximum records pulled from a ChangeLog per poll.
    processor:
        Processing-stage configuration (batching/caching).
    poll_interval:
        Sleep between polls in live threaded mode.
    event_types:
        Optional server-side filter: only these normalized event kinds
        are reported to the aggregator (None = report everything, the
        paper's configuration).  Filtering here saves both transport
        and downstream work when consumers only care about, say,
        creations and deletions.
    """

    read_batch: int = 256
    processor: ProcessorConfig = ProcessorConfig()
    poll_interval: float = 0.002
    event_types: Optional[frozenset] = None

    def __post_init__(self) -> None:
        if self.read_batch < 1:
            raise ValueError(f"read_batch must be >= 1: {self.read_batch}")
        if self.event_types is not None and not self.event_types:
            raise ValueError("event_types filter must be None or non-empty")


class Collector:
    """Collects events from every MDT ChangeLog of one MDS."""

    def __init__(
        self,
        name: str,
        filesystem: LustreFilesystem,
        mds: MetadataServer,
        sink: EventSink,
        config: CollectorConfig | None = None,
        resolver: Optional[FidResolver] = None,
    ) -> None:
        self.name = name
        self.fs = filesystem
        self.mds = mds
        self.sink = sink
        self.config = config or CollectorConfig()
        self.resolver = resolver or FidResolver(filesystem)
        self.processor = EventProcessor(self.resolver, self.config.processor)
        # Register one changelog user per MDT on this MDS.
        self._users: dict[int, str] = {
            mdt.index: mdt.changelog.register_user() for mdt in mds.mdts
        }
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._log = get_logger(f"core.collector.{name}")
        # Counters.
        self.records_read = 0
        self.events_reported = 0
        self.events_filtered = 0
        self.report_failures = 0

    # -- deterministic single-step mode --------------------------------------

    def poll_once(self) -> int:
        """One detect→process→report→purge round over all MDTs.

        Returns the number of events reported this round.
        """
        reported = 0
        for mdt in self.mds.mdts:
            user = self._users[mdt.index]
            records = mdt.changelog.read(user, max_records=self.config.read_batch)
            if not records:
                continue
            self.records_read += len(records)
            events = self.processor.process(records, mdt.index)
            if self.config.event_types is not None:
                kept = [
                    event
                    for event in events
                    if event.event_type in self.config.event_types
                ]
                self.events_filtered += len(events) - len(kept)
                events = kept
            # Report first (repeatedly retried by the agent per the
            # paper; our in-proc fabric blocks instead), then purge.
            # An all-filtered batch skips the report but still clears.
            if events:
                try:
                    self.sink.send(events)
                except Exception as exc:
                    self.report_failures += 1
                    self._log.warning(
                        "report of %d events failed (%s); will re-read",
                        len(events), exc,
                    )
                    # Do NOT clear: records will be re-read and
                    # re-reported, preserving at-least-once delivery.
                    continue
                self.events_reported += len(events)
                reported += len(events)
            mdt.changelog.clear(user, records[-1].index)
        return reported

    def drain(self, max_rounds: int = 10_000) -> int:
        """Poll until every ChangeLog is exhausted; returns total events."""
        total = 0
        for _ in range(max_rounds):
            reported = self.poll_once()
            total += reported
            if reported == 0 and not self._has_backlog():
                break
        return total

    def _has_backlog(self) -> bool:
        return any(
            mdt.changelog.read(self._users[mdt.index], max_records=1)
            for mdt in self.mds.mdts
        )

    # -- live threaded mode ----------------------------------------------------

    def start(self) -> None:
        """Run the poll loop in a daemon thread."""
        if self._thread is not None:
            return
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.is_set():
                if self.poll_once() == 0:
                    self._stop.wait(self.config.poll_interval)
            self.drain(max_rounds=100)  # flush on shutdown

        self._thread = threading.Thread(
            target=_loop, name=f"collector-{self.name}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the poll loop, flushing remaining records."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=10)
        self._thread = None

    def shutdown(self) -> None:
        """Stop and deregister changelog users (releases purge pointers)."""
        self.stop()
        for mdt in self.mds.mdts:
            user = self._users.pop(mdt.index, None)
            if user is not None:
                mdt.changelog.deregister_user(user)


class CallbackSink:
    """Adapter: wrap a plain callable as an :class:`EventSink`."""

    def __init__(self, callback: Callable[[list[FileEvent]], None]) -> None:
        self.callback = callback

    def send(self, payload: list[FileEvent]) -> None:
        self.callback(payload)
