"""The processing stage: FID → path resolution with batching and caching.

The paper (§5.2) measures this stage as the monitor's bottleneck — the
"repetitive use of the d2path tool when resolving an event's absolute
path" — and proposes two mitigations it left to future work:

* **Batching** — "process events in batches, rather than independently";
  :class:`EventProcessor` resolves all FIDs of a batch with one
  :meth:`~repro.lustre.fid2path.FidResolver.resolve_many` call.
* **Caching** — "temporarily cache path mappings to minimize the number
  of invocations"; :class:`PathCache` is an LRU of *parent directory*
  FID → path mappings (directories repeat across events far more than
  file FIDs do), with prefix invalidation on renames/removals so cached
  paths never go stale.

Both are off by default (``ProcessorConfig()`` reproduces the paper's
measured configuration); the ablation benchmark A1 turns them on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.errors import UnknownFid
from repro.lustre.changelog import ChangelogRecord, RecordType
from repro.lustre.fid import Fid
from repro.lustre.fid2path import FidResolver
from repro.core.events import FileEvent


@dataclass(frozen=True)
class ProcessorConfig:
    """Processing-stage knobs.

    batch_size:
        Records resolved per ``resolve_many`` call; 1 disables batching
        (each event's FIDs resolved independently, the paper's measured
        behaviour).
    cache_size:
        LRU entries for the parent-path cache; 0 disables caching.
    """

    batch_size: int = 1
    cache_size: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {self.batch_size}")
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0: {self.cache_size}")


class PathCache:
    """An LRU cache of FID → absolute directory path.

    Rename and removal of directories invalidate every cached path under
    the affected subtree (``invalidate_prefix``), so a hit is always
    current.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Fid, str] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, fid: Fid) -> Optional[str]:
        """Cached path for *fid*, refreshing its LRU position."""
        path = self._entries.get(fid)
        if path is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fid)
        self.hits += 1
        return path

    def peek(self, fid: Fid) -> Optional[str]:
        """Like :meth:`get` but without touching LRU order or counters."""
        return self._entries.get(fid)

    def put(self, fid: Fid, path: str) -> None:
        """Insert/update a mapping, evicting the LRU entry when full."""
        self._entries[fid] = path
        self._entries.move_to_end(fid)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, fid: Fid) -> None:
        """Drop the entry for *fid* if present."""
        self._entries.pop(fid, None)

    def invalidate_prefix(self, prefix: str) -> int:
        """Drop every cached path equal to or under *prefix*."""
        doomed = [
            fid
            for fid, path in self._entries.items()
            if path == prefix or path.startswith(prefix.rstrip("/") + "/")
        ]
        for fid in doomed:
            del self._entries[fid]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class EventProcessor:
    """Turns raw ChangeLog records into path-resolved :class:`FileEvent`\\ s.

    The resolution strategy per record:

    * The event path is ``resolve(parent_fid) + '/' + name`` — resolving
      the *parent* works even for UNLNK/RMDIR records whose target FID
      no longer exists (resolving the target FID of a deleted file is
      exactly how a naive implementation loses delete events).
    * MOVED records additionally resolve the *source* parent to build
      ``old_path``.
    * A root-parent record resolves trivially.
    """

    def __init__(
        self,
        resolver: FidResolver,
        config: ProcessorConfig | None = None,
    ) -> None:
        self.resolver = resolver
        self.config = config or ProcessorConfig()
        self.cache: Optional[PathCache] = (
            PathCache(self.config.cache_size) if self.config.cache_size else None
        )
        # Counters.
        self.records_processed = 0
        self.unresolved = 0

    # -- single-record path assembly ----------------------------------------

    def _lookup_dir(self, fid: Fid, prefetched: dict[Fid, Optional[str]]) -> Optional[str]:
        """Resolve a directory FID via cache, batch-prefetch or the tool."""
        if self.cache is not None:
            cached = self.cache.get(fid)
            if cached is not None:
                return cached
        if fid in prefetched:
            path = prefetched[fid]
        else:
            try:
                path = self.resolver.resolve(fid)
            except UnknownFid:
                path = None
        if path is not None and self.cache is not None:
            self.cache.put(fid, path)
        return path

    @staticmethod
    def _join(parent_path: Optional[str], name: str) -> Optional[str]:
        if parent_path is None:
            return None
        if parent_path == "/":
            return "/" + name
        return parent_path + "/" + name

    def _maintain_cache(self, record: ChangelogRecord, new_path: Optional[str]) -> None:
        """Keep cached directory paths consistent with namespace changes."""
        if self.cache is None:
            return
        if record.rec_type is RecordType.RMDIR:
            self.cache.invalidate(record.target_fid)
            if new_path is not None:
                self.cache.invalidate_prefix(new_path)
        elif record.rec_type in (RecordType.RENME, RecordType.RNMTO):
            # A renamed directory moves its whole cached subtree; the
            # cheap, always-correct policy is to drop affected entries.
            self.cache.invalidate(record.target_fid)
            if record.source_parent_fid is not None and record.source_name:
                # Invalidate by old path if we can reconstruct it.
                old_parent = self.cache.peek(record.source_parent_fid)
                if old_parent is not None:
                    old_path = self._join(old_parent, record.source_name)
                    if old_path is not None:
                        self.cache.invalidate_prefix(old_path)
            if new_path is not None:
                self.cache.invalidate_prefix(new_path)

    # -- batch API -------------------------------------------------------------

    def process(
        self, records: list[ChangelogRecord], mdt_index: int
    ) -> list[FileEvent]:
        """Process *records* (from one MDT) into events, in order."""
        events: list[FileEvent] = []
        for start in range(0, len(records), self.config.batch_size):
            chunk = records[start : start + self.config.batch_size]
            events.extend(self._process_chunk(chunk, mdt_index))
        return events

    def _process_chunk(
        self, records: list[ChangelogRecord], mdt_index: int
    ) -> list[FileEvent]:
        prefetched: dict[Fid, Optional[str]] = {}
        if self.config.batch_size > 1 and len(records) > 1:
            wanted: list[Fid] = []
            for record in records:
                if self.cache is None or self.cache.peek(record.parent_fid) is None:
                    wanted.append(record.parent_fid)
                if (
                    record.source_parent_fid is not None
                    and (
                        self.cache is None
                        or self.cache.peek(record.source_parent_fid) is None
                    )
                ):
                    wanted.append(record.source_parent_fid)
            if wanted:
                prefetched = self.resolver.resolve_many(wanted)

        events: list[FileEvent] = []
        for record in records:
            parent_path = self._lookup_dir(record.parent_fid, prefetched)
            path = self._join(parent_path, record.name)
            old_path: Optional[str] = None
            if (
                record.rec_type in (RecordType.RENME, RecordType.RNMTO)
                and record.source_parent_fid is not None
                and record.source_name
            ):
                source_parent = self._lookup_dir(
                    record.source_parent_fid, prefetched
                )
                old_path = self._join(source_parent, record.source_name)
            self._maintain_cache(record, path)
            if path is None:
                self.unresolved += 1
            self.records_processed += 1
            events.append(
                FileEvent.from_changelog(
                    record, path, mdt_index, old_path=old_path
                )
            )
        return events
