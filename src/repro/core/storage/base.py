"""The pluggable durability contract behind :class:`EventStore`.

The store keeps its behaviour — the bounded indexed window, contiguous
sequence numbers, the ``since``/``recent``/``query`` retrieval API —
and delegates *durability* to a :class:`StoreBackend`:

* :class:`~repro.core.storage.memory.MemoryBackend` is the paper's
  volatile catalog: every hook is a no-op, recovery finds nothing.
  Attaching it is behaviourally identical to the pre-backend store
  (pinned by a hypothesis equivalence property in the tests).
* :class:`~repro.core.storage.segments.SegmentLogBackend` is an
  append-only segment log of fixed-layout binary records; a store
  constructed over a non-empty log resumes exactly where the previous
  incarnation crashed.

Every hook is called by the store with its lock held (except
``recover``, which runs during construction before the store is
shared), so backends may assume calls are serialised.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store -> storage)
    from repro.core.events import FileEvent


@dataclass
class RecoveredState:
    """What a durable backend salvaged for the store at construction.

    ``entries`` is the retained window — ``(seq, event)`` pairs in
    sequence order, already capped at the store's ``max_events`` —
    and the counters restore the store's lifetime accounting:
    ``total_rotated`` is derived as ``total_stored - len(entries)``
    (the store's standing invariant), so events present in the log but
    beyond the window cap count as rotated.
    """

    entries: List[Tuple[int, "FileEvent"]] = field(default_factory=list)
    next_seq: int = 1
    total_stored: int = 0

    @property
    def total_rotated(self) -> int:
        return self.total_stored - len(self.entries)


class StoreBackend(ABC):
    """Durability hooks the :class:`EventStore` drives.

    The lifecycle: ``recover`` once at attach time, then ``append`` on
    every stored batch, ``note_floor`` whenever rotation advances the
    oldest retained sequence number (the compaction signal),
    ``mark_snapshotted`` when a snapshot made a log prefix redundant,
    and ``adopt`` when a restored window replaces the log wholesale.
    """

    #: True when the backend survives a process crash; the aggregator
    #: exports the backend's stats as gauges only for durable backends.
    durable: bool = False

    #: Short scheme name (``memory`` / ``segments``) for logs and URLs.
    scheme: str = "abstract"

    @abstractmethod
    def recover(self, max_events: int) -> Union[RecoveredState, None]:
        """Salvage prior state, or None when there is nothing to restore.

        Called exactly once, before the store is visible to any other
        thread.  ``max_events`` caps the returned window (older
        records count as rotated).
        """

    @abstractmethod
    def append(self, first_seq: int, events: Sequence["FileEvent"]) -> None:
        """Persist one atomically-stored batch (contiguous sequence
        numbers starting at *first_seq*), before the store's in-memory
        window mutates — write-ahead order."""

    def note_floor(self, floor_seq: int) -> None:
        """Rotation advanced the oldest retained seq to *floor_seq*;
        records below it are dead weight the backend may compact."""

    def mark_snapshotted(self, last_seq: int, total_stored: int) -> None:
        """A snapshot now durably covers every record with
        ``seq <= last_seq`` (lifetime ``total_stored`` at that point);
        the backend may discard that log prefix."""

    def adopt(
        self,
        entries: Sequence[Tuple[int, "FileEvent"]],
        next_seq: int,
        total_stored: int,
    ) -> None:
        """Replace the log's contents with a restored window (the
        ``EventStore.load`` path), so the log alone reproduces the
        restored store from now on."""

    def sync(self) -> None:
        """Force buffered records to stable storage (fsync)."""

    def stats(self) -> Dict[str, Union[int, float]]:
        """Observability counters (fsyncs, segments, bytes …); empty
        for backends with nothing to report."""
        return {}

    def close(self) -> None:
        """Flush and release resources; further appends may reopen."""
