"""Pluggable EventStore durability backends.

Backends are selected by URL (``AggregatorConfig.store_url``):

``memory://``
    The historical volatile window — no files, no recovery.

``segments:///var/lib/repro/store``
    Durable append-only segment log rooted at that directory.  Query
    parameters tune it: ``segment_bytes`` (rotation size),
    ``fsync`` (``never`` | ``rotate`` | ``always``) and
    ``compact_interval`` (seconds between background compaction
    passes; ``0`` compacts inline at rotation/floor advances).

:func:`open_store` turns a URL into a ready :class:`EventStore`;
:func:`shard_store_url` derives per-shard URLs for the cluster tier by
appending the shard id as a path component (memory URLs pass through,
shards never share a log directory).
"""

from __future__ import annotations

from typing import TYPE_CHECKING
from urllib.parse import parse_qsl, urlsplit

from repro.core.storage.base import RecoveredState, StoreBackend
from repro.core.storage.memory import MemoryBackend
from repro.core.storage.segments import (
    DEFAULT_SEGMENT_BYTES,
    FSYNC_POLICIES,
    SegmentLogBackend,
)

if TYPE_CHECKING:  # pragma: no cover - circular at runtime (store -> here)
    from repro.core.store import EventStore

__all__ = [
    "StoreBackend",
    "RecoveredState",
    "MemoryBackend",
    "SegmentLogBackend",
    "DEFAULT_SEGMENT_BYTES",
    "FSYNC_POLICIES",
    "backend_from_url",
    "open_store",
    "shard_store_url",
]


def backend_from_url(url: str) -> StoreBackend:
    """Construct the backend a store URL names (see module docstring)."""
    parts = urlsplit(url)
    if parts.scheme == "memory":
        return MemoryBackend()
    if parts.scheme == "segments":
        # netloc absorbs the first component of a relative path
        # (``segments://logs/shard``); join it back.
        directory = (parts.netloc + parts.path) if parts.netloc else parts.path
        if not directory:
            raise ValueError(f"segments store URL needs a directory: {url!r}")
        kwargs = {}
        for key, value in parse_qsl(parts.query):
            if key == "segment_bytes":
                kwargs["segment_bytes"] = int(value)
            elif key == "fsync":
                kwargs["fsync"] = value
            elif key == "compact_interval":
                kwargs["compact_interval"] = float(value)
            else:
                raise ValueError(f"unknown store URL parameter {key!r}")
        return SegmentLogBackend(directory, **kwargs)
    raise ValueError(
        f"unknown store URL scheme {parts.scheme!r} (expected "
        f"memory:// or segments:///path): {url!r}"
    )


def open_store(url: str, *, max_events: int = 10_000) -> "EventStore":
    """Build an :class:`EventStore` over the backend *url* names.

    A durable backend with prior state recovers it here — the returned
    store resumes the crashed incarnation's window, sequence counter
    and lifetime totals.
    """
    from repro.core.store import EventStore  # runtime import: cycle guard

    return EventStore(max_events=max_events, backend=backend_from_url(url))


def shard_store_url(base: str, shard_id: str) -> str:
    """Derive shard *shard_id*'s store URL from the cluster-wide base.

    ``memory://`` is shared-nothing already and passes through;
    ``segments://`` URLs gain the shard id as a trailing path
    component so every shard logs to its own directory (query
    parameters preserved).
    """
    parts = urlsplit(base)
    if parts.scheme == "memory":
        return base
    path = parts.path.rstrip("/") + "/" + shard_id
    url = f"{parts.scheme}://{parts.netloc}{path}"
    if parts.query:
        url += f"?{parts.query}"
    return url
