"""Append-only segment log: the durable :class:`EventStore` backend.

Layout on disk (one directory per store):

``NNNNNNNN.seg``
    Segment files, named by a monotonically increasing file number
    (never reused, so crash generations cannot collide).  Each starts
    with a 16-byte header — magic ``RSEG``, the record-layout version,
    and the base sequence number at creation — followed by framed
    records: ``u32 body_len + u32 crc32(body) + body`` where *body* is
    :func:`repro.msgq.framing.pack_entry` (the same flattened field
    order as the marshal wire codec, struct-packed for version
    stability).

``checkpoint.json``
    Atomically replaced (tmp + ``os.replace``) watermark
    ``{seq, stored, next_seq}``: every record with ``seq <= seq`` is
    accounted for in the lifetime counter ``stored`` and no longer
    needed from the log.  Snapshots (``EventStore.save``) and
    compaction advance it.

Write path: every ``append`` buffers the batch and ``flush()``\\ es it
to the kernel page cache, so a SIGKILL loses at most the torn tail
record; ``fsync`` frequency is a policy knob (``always`` per batch,
``rotate`` per segment rotation, ``never``).  The active segment
rotates at ``segment_bytes``.

Compaction GCs *fully-rotated* segments — those whose last record is
below the store's retention floor (``note_floor``) — by first
advancing the checkpoint over them (sequence arithmetic: seqs in one
store lifetime are contiguous, and replay overlaps after
``discard_after`` only shrink the delta, never double-count) and then
deleting the file; crash-safe in that order.  ``compact_interval > 0``
runs it on a daemon thread, ``0`` runs it inline at rotation/floor
advances.

Recovery scans segments in file order under ``mmap``, stops each
segment at its first torn record, and dedups by sequence number with
**last wins** — so when a restarted shard child trims past the
parent's ack watermark (``discard_after``) and replayed batches
re-append the same sequence numbers, the replayed records shadow the
orphans and the rebuilt window equals the delivered history.
"""

from __future__ import annotations

import json
import logging
import mmap
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.storage.base import RecoveredState, StoreBackend
from repro.msgq.framing import RECORD_LAYOUT_VERSION, pack_entry, unpack_entry

logger = logging.getLogger(__name__)

_MAGIC = b"RSEG"
#: magic, record-layout version, base seq at creation.
_HEADER = struct.Struct("<4sIQ")
#: body length, crc32(body) — precedes every record body.
_FRAME = struct.Struct("<II")

_SEGMENT_SUFFIX = ".seg"
_CHECKPOINT_NAME = "checkpoint.json"

#: fsync policies, loosest to strictest.
FSYNC_POLICIES = ("never", "rotate", "always")

DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


@dataclass
class _SegmentInfo:
    """In-memory metadata for one closed (fully-rotated) segment."""

    path: str
    file_no: int
    first_seq: int  # 0 when the segment holds no parseable records
    last_seq: int
    size: int


class SegmentLogBackend(StoreBackend):
    """Durable backend over an append-only directory of segment files."""

    durable = True
    scheme = "segments"

    def __init__(
        self,
        directory: Union[str, os.PathLike],
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: str = "rotate",
        compact_interval: float = 0.0,
    ) -> None:
        if segment_bytes < _HEADER.size + _FRAME.size:
            raise ValueError(f"segment_bytes too small: {segment_bytes}")
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if compact_interval < 0:
            raise ValueError("compact_interval must be >= 0")
        self.directory = os.fspath(directory)
        self.segment_bytes = segment_bytes
        self.fsync_policy = fsync
        self.compact_interval = compact_interval
        os.makedirs(self.directory, exist_ok=True)

        # Guards everything below: the store serialises its own hook
        # calls, but the compaction thread runs concurrently with them.
        self._lock = threading.RLock()
        self._ckpt_seq = 0
        self._ckpt_stored = 0
        self._ckpt_next_seq = 0
        self._segments: List[_SegmentInfo] = []  # closed, in file order
        self._active_file = None
        self._active_no = 0
        self._active_size = 0
        self._active_first_seq = 0
        self._active_last_seq = 0
        self._floor_seq = 0
        self._closed = False

        self.appends = 0
        self.records_appended = 0
        self.fsyncs = 0
        self.rotations = 0
        self.compacted_segments = 0
        self.compacted_records = 0
        self.torn_records = 0
        self.recovered_records = 0

        self._load_checkpoint()

        self._compactor_wake = threading.Event()
        self._compactor: Optional[threading.Thread] = None
        if compact_interval > 0:
            self._compactor = threading.Thread(
                target=self._compact_loop,
                name=f"segment-compactor[{os.path.basename(self.directory)}]",
                daemon=True,
            )
            self._compactor.start()

    # -- checkpoint ---------------------------------------------------

    def _checkpoint_path(self) -> str:
        return os.path.join(self.directory, _CHECKPOINT_NAME)

    def _load_checkpoint(self) -> None:
        try:
            with open(self._checkpoint_path(), "r", encoding="utf-8") as fh:
                data = json.load(fh)
            self._ckpt_seq = int(data["seq"])
            self._ckpt_stored = int(data["stored"])
            self._ckpt_next_seq = int(data.get("next_seq", 0))
        except FileNotFoundError:
            pass
        except (ValueError, KeyError, TypeError) as exc:
            # A torn tmp-replace cannot produce a half-written file;
            # garbage here means external damage — refuse to guess.
            raise ValueError(
                f"corrupt checkpoint in {self.directory}: {exc}"
            ) from exc

    def _write_checkpoint(self) -> None:
        payload = json.dumps(
            {
                "seq": self._ckpt_seq,
                "stored": self._ckpt_stored,
                "next_seq": self._ckpt_next_seq,
                "layout_version": RECORD_LAYOUT_VERSION,
            }
        )
        tmp = self._checkpoint_path() + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(payload)
            fh.flush()
            if self.fsync_policy != "never":
                os.fsync(fh.fileno())
                self.fsyncs += 1
        os.replace(tmp, self._checkpoint_path())

    # -- segment files ------------------------------------------------

    def _segment_path(self, file_no: int) -> str:
        return os.path.join(self.directory, f"{file_no:08d}{_SEGMENT_SUFFIX}")

    def _list_segment_files(self) -> List[Tuple[int, str]]:
        found = []
        for name in os.listdir(self.directory):
            if not name.endswith(_SEGMENT_SUFFIX):
                continue
            stem = name[: -len(_SEGMENT_SUFFIX)]
            try:
                file_no = int(stem)
            except ValueError:
                continue
            found.append((file_no, os.path.join(self.directory, name)))
        found.sort()
        return found

    def _open_active(self, base_seq: int) -> None:
        existing = self._list_segment_files()
        last_no = existing[-1][0] if existing else 0
        if self._segments:
            last_no = max(last_no, self._segments[-1].file_no)
        self._active_no = max(last_no, self._active_no) + 1
        path = self._segment_path(self._active_no)
        self._active_file = open(path, "ab")
        header = _HEADER.pack(_MAGIC, RECORD_LAYOUT_VERSION, base_seq)
        self._active_file.write(header)
        self._active_file.flush()
        self._active_size = _HEADER.size
        self._active_first_seq = 0
        self._active_last_seq = 0

    def _ensure_active(self, base_seq: int) -> None:
        if self._active_file is None:
            self._open_active(base_seq)

    def _fsync_active(self) -> None:
        if self._active_file is not None:
            os.fsync(self._active_file.fileno())
            self.fsyncs += 1

    def _close_active(self, *, fsync: bool) -> None:
        if self._active_file is None:
            return
        self._active_file.flush()
        if fsync:
            self._fsync_active()
        self._active_file.close()
        if self._active_size > _HEADER.size:
            self._segments.append(
                _SegmentInfo(
                    path=self._segment_path(self._active_no),
                    file_no=self._active_no,
                    first_seq=self._active_first_seq,
                    last_seq=self._active_last_seq,
                    size=self._active_size,
                )
            )
        else:
            # Header-only segment: nothing durable in it, drop the file.
            try:
                os.unlink(self._segment_path(self._active_no))
            except OSError:
                pass
        self._active_file = None
        self._active_size = 0

    def _rotate(self) -> None:
        self._close_active(fsync=self.fsync_policy != "never")
        self.rotations += 1
        self._open_active(self._active_last_seq + 1)

    # -- StoreBackend hooks --------------------------------------------

    def recover(self, max_events: int) -> Union[RecoveredState, None]:
        with self._lock:
            records: Dict[int, object] = {}
            for file_no, path in self._list_segment_files():
                first, last = self._scan_segment(path, records)
                self._segments.append(
                    _SegmentInfo(
                        path=path,
                        file_no=file_no,
                        first_seq=first,
                        last_seq=last,
                        size=os.path.getsize(path),
                    )
                )
            if not records and self._ckpt_seq == 0 and self._ckpt_stored == 0:
                return None
            live = sorted(
                item for item in records.items() if item[0] > self._ckpt_seq
            )
            self.recovered_records = len(live)
            total_stored = self._ckpt_stored + len(live)
            last_seq = live[-1][0] if live else self._ckpt_seq
            next_seq = max(last_seq + 1, self._ckpt_next_seq, 1)
            if len(live) > max_events:
                live = live[-max_events:]
            self._floor_seq = live[0][0] if live else next_seq
            return RecoveredState(
                entries=live, next_seq=next_seq, total_stored=total_stored
            )

    def _scan_segment(
        self, path: str, records: Dict[int, object]
    ) -> Tuple[int, int]:
        """Replay one segment into *records* (last-wins by seq).

        Returns the (first_seq, last_seq) actually parsed, (0, 0) for a
        record-free segment.  Stops at the first torn record: a frame
        that runs past EOF, fails its CRC, or does not decode.
        """
        first_seq = last_seq = 0
        size = os.path.getsize(path)
        if size < _HEADER.size:
            # Torn at creation — crash between open and header flush.
            self.torn_records += 1
            return first_seq, last_seq
        with open(path, "rb") as fh:
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            try:
                magic, version, _base_seq = _HEADER.unpack_from(mm, 0)
                if magic != _MAGIC:
                    raise ValueError(f"bad segment magic in {path}")
                if version != RECORD_LAYOUT_VERSION:
                    raise ValueError(
                        f"segment {path} has record layout v{version}, "
                        f"this build reads v{RECORD_LAYOUT_VERSION}"
                    )
                offset = _HEADER.size
                while offset + _FRAME.size <= size:
                    body_len, crc = _FRAME.unpack_from(mm, offset)
                    start = offset + _FRAME.size
                    end = start + body_len
                    if end > size:
                        self.torn_records += 1
                        break
                    body = mm[start:end]
                    if zlib.crc32(body) != crc:
                        self.torn_records += 1
                        break
                    try:
                        seq, event, consumed = unpack_entry(body)
                    except (struct.error, IndexError, ValueError):
                        self.torn_records += 1
                        break
                    if consumed != body_len:
                        self.torn_records += 1
                        break
                    records[seq] = event
                    if first_seq == 0:
                        first_seq = seq
                    last_seq = seq
                    offset = end
            finally:
                mm.close()
        return first_seq, last_seq

    def append(self, first_seq: int, events: Sequence) -> None:
        if not events:
            return
        with self._lock:
            if self._closed:
                raise ValueError("backend is closed")
            self._ensure_active(first_seq)
            chunks = []
            for index, event in enumerate(events):
                body = pack_entry(first_seq + index, event)
                chunks.append(_FRAME.pack(len(body), zlib.crc32(body)))
                chunks.append(body)
            blob = b"".join(chunks)
            self._active_file.write(blob)
            # Always reach the kernel page cache: a SIGKILL'd process
            # loses at most a torn tail, never a flushed batch.
            self._active_file.flush()
            if self.fsync_policy == "always":
                self._fsync_active()
            self._active_size += len(blob)
            if self._active_first_seq == 0:
                self._active_first_seq = first_seq
            self._active_last_seq = first_seq + len(events) - 1
            self.appends += 1
            self.records_appended += len(events)
            if self._active_size >= self.segment_bytes:
                self._rotate()
                if self.compact_interval == 0:
                    self._compact_locked()
                else:
                    self._compactor_wake.set()

    def note_floor(self, floor_seq: int) -> None:
        self._floor_seq = floor_seq
        if self.compact_interval == 0:
            with self._lock:
                self._compact_locked()

    def mark_snapshotted(self, last_seq: int, total_stored: int) -> None:
        with self._lock:
            if last_seq <= self._ckpt_seq:
                return
            self._ckpt_seq = last_seq
            self._ckpt_stored = total_stored
            self._ckpt_next_seq = max(self._ckpt_next_seq, last_seq + 1)
            # Checkpoint first, delete after: a crash in between leaves
            # covered segments that recovery filters out by seq.
            self._write_checkpoint()
            if (
                self._active_file is not None
                and self._active_size > _HEADER.size
                and self._active_last_seq <= last_seq
            ):
                self._rotate()
            survivors = []
            for seg in self._segments:
                if seg.last_seq <= last_seq:
                    self._delete_segment(seg)
                else:
                    survivors.append(seg)
            self._segments = survivors

    def adopt(
        self,
        entries: Sequence[Tuple[int, object]],
        next_seq: int,
        total_stored: int,
    ) -> None:
        with self._lock:
            self._close_active(fsync=False)
            for seg in list(self._segments):
                self._delete_segment(seg, count=False)
            self._segments = []
            for _file_no, path in self._list_segment_files():
                try:
                    os.unlink(path)
                except OSError:
                    pass
            self._ckpt_seq = (entries[0][0] - 1) if entries else next_seq - 1
            self._ckpt_stored = total_stored - len(entries)
            self._ckpt_next_seq = next_seq
            self._write_checkpoint()
            if entries:
                self._ensure_active(entries[0][0])
                chunks = []
                for seq, event in entries:
                    body = pack_entry(seq, event)
                    chunks.append(_FRAME.pack(len(body), zlib.crc32(body)))
                    chunks.append(body)
                blob = b"".join(chunks)
                self._active_file.write(blob)
                self._active_file.flush()
                if self.fsync_policy != "never":
                    self._fsync_active()
                self._active_size += len(blob)
                self._active_first_seq = entries[0][0]
                self._active_last_seq = entries[-1][0]
                self.records_appended += len(entries)
                self._floor_seq = entries[0][0]

    def sync(self) -> None:
        with self._lock:
            if self._active_file is not None:
                self._active_file.flush()
                self._fsync_active()

    def stats(self) -> Dict[str, Union[int, float]]:
        with self._lock:
            log_bytes = self._active_size + sum(
                seg.size for seg in self._segments
            )
            segments = len(self._segments) + (
                1 if self._active_file is not None else 0
            )
            return {
                "segments": segments,
                "log_bytes": log_bytes,
                "appends": self.appends,
                "records_appended": self.records_appended,
                "fsyncs": self.fsyncs,
                "rotations": self.rotations,
                "compacted_segments": self.compacted_segments,
                "compacted_records": self.compacted_records,
                "torn_records": self.torn_records,
                "recovered_records": self.recovered_records,
                "checkpoint_seq": self._ckpt_seq,
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._compactor is not None:
            self._compactor_wake.set()
            self._compactor.join(timeout=5.0)
        with self._lock:
            self._close_active(fsync=self.fsync_policy != "never")

    # -- compaction ----------------------------------------------------

    def _delete_segment(self, seg: _SegmentInfo, *, count: bool = True) -> None:
        try:
            os.unlink(seg.path)
        except OSError as exc:  # pragma: no cover - fs race
            logger.warning("could not delete segment %s: %s", seg.path, exc)
        if count:
            self.compacted_segments += 1

    def _compact_locked(self) -> None:
        """GC closed segments wholly below the retention floor.

        Advances the checkpoint over each victim *before* unlinking it,
        using sequence arithmetic (``last_seq - ckpt_seq`` new records;
        exact because seqs are contiguous and replay overlaps from
        ``discard_after`` only reduce the delta).
        """
        floor = self._floor_seq
        if floor <= 0 or self._closed:
            return
        victims = []
        survivors = []
        for seg in self._segments:
            if seg.last_seq and seg.last_seq < floor:
                gained = max(0, seg.last_seq - self._ckpt_seq)
                self._ckpt_seq = max(self._ckpt_seq, seg.last_seq)
                self._ckpt_stored += gained
                self.compacted_records += gained
                victims.append(seg)
            else:
                survivors.append(seg)
        if not victims:
            return
        self._write_checkpoint()
        for seg in victims:
            self._delete_segment(seg)
        self._segments = survivors

    def _compact_loop(self) -> None:
        while True:
            self._compactor_wake.wait(timeout=self.compact_interval)
            self._compactor_wake.clear()
            if self._closed:
                return
            with self._lock:
                self._compact_locked()
