"""The volatile backend: the store's historical behaviour, unchanged.

Every durability hook is a no-op and recovery always finds nothing, so
an :class:`EventStore` over a :class:`MemoryBackend` is exactly the
pre-backend in-memory window — the equivalence is pinned by a
hypothesis property in ``tests/test_storage.py``.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from repro.core.storage.base import RecoveredState, StoreBackend


class MemoryBackend(StoreBackend):
    """No durability: the bounded deque in the store is the only copy."""

    durable = False
    scheme = "memory"

    def recover(self, max_events: int) -> Union[RecoveredState, None]:
        return None

    def append(self, first_seq: int, events: Sequence) -> None:
        pass

    def adopt(
        self,
        entries: Sequence[Tuple[int, object]],
        next_seq: int,
        total_stored: int,
    ) -> None:
        pass
