"""Calibrated performance models of the paper's testbeds.

The paper's absolute numbers come from hardware we do not have (AWS
t2.micro Lustre, ANL's Iota).  Following the substitution policy in
DESIGN.md, *measured hardware characteristics* (Table 2 operation rates,
the per-event ``fid2path`` cost, per-component CPU/memory coefficients)
are **calibration inputs** encoded in :class:`TestbedProfile`, while the
*system behaviour* (monitor throughput vs generation rate, the
preprocessing bottleneck, the effect of batching/caching/multi-MDS, the
aggregation stage's losslessness) is **derived** by running the pipeline
structure through the discrete-event engine in
:func:`~repro.perf.pipeline.run_pipeline`.
"""

from repro.perf.testbeds import AWS, IOTA, TestbedProfile
from repro.perf.pipeline import PipelineConfig, PipelineResult, run_pipeline
from repro.perf.cloud import CloudConfig, CloudResult, run_cloud

__all__ = [
    "TestbedProfile",
    "AWS",
    "IOTA",
    "PipelineConfig",
    "PipelineResult",
    "run_pipeline",
    "CloudConfig",
    "CloudResult",
    "run_cloud",
]
