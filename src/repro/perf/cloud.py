"""A DES model of Ripple's cloud service (Figure 1's right half).

The monitor answers "can we *detect* at site rates?"; the natural next
question is "can the cloud side *process and act* at those rates?".
This model feeds matched events into the SQS-like queue and serves them
with a pool of Lambda-style workers:

* events arrive at ``arrival_rate`` (e.g. the monitor's output rate ×
  the fraction matching any rule);
* each Lambda invocation takes ``service_seconds`` (rule evaluation +
  action dispatch) and can fail with ``failure_probability`` — failed
  entries retry after ``visibility_timeout`` (at-least-once);
* ``concurrency`` workers process in parallel.

Outputs: processed rate, queue depth growth, end-to-end processing
latency, redelivery overhead — enough to size the worker pool for a
target storage system (the cloud-scaling benchmark sweeps this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.histogram import LatencyHistogram
from repro.sim import Environment, RandomStreams, Resource, Store


@dataclass(frozen=True)
class CloudConfig:
    """One cloud-service experiment."""

    arrival_rate: float
    service_seconds: float = 2.0e-3
    concurrency: int = 2
    duration: float = 30.0
    failure_probability: float = 0.0
    visibility_timeout: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive: {self.arrival_rate}")
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1: {self.concurrency}")
        if not 0 <= self.failure_probability < 1:
            raise ValueError(
                f"failure_probability must be in [0, 1): {self.failure_probability}"
            )


@dataclass
class CloudResult:
    """Outputs of one cloud-service run."""

    config: CloudConfig
    arrived: int = 0
    processed: int = 0
    failures: int = 0
    redeliveries: int = 0
    queue_depth_peak: int = 0
    worker_busy: float = 0.0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def processed_rate(self) -> float:
        return self.processed / self.config.duration if self.config.duration else 0.0

    @property
    def utilisation(self) -> float:
        """Average busy fraction of the worker pool."""
        return self.worker_busy / (
            self.config.duration * self.config.concurrency
        )

    @property
    def keeps_up(self) -> bool:
        """Processed within 2% of arrivals (steady state)."""
        if self.arrived == 0:
            return True
        return self.processed >= 0.98 * self.arrived


def run_cloud(config: CloudConfig) -> CloudResult:
    """Execute the cloud-service model."""
    env = Environment()
    streams = RandomStreams(config.seed)
    failure_stream = streams.get("failures")
    result = CloudResult(config=config)
    queue: Store = Store(env)
    workers = Resource(env, capacity=config.concurrency)

    def generator():
        interval = 1.0 / config.arrival_rate
        while env.now < config.duration:
            yield env.timeout(interval)
            if env.now >= config.duration:
                break
            queue.items.append((env.now, 0))  # (enqueued_at, attempts)
            queue._dispatch()
            result.arrived += 1
            result.queue_depth_peak = max(result.queue_depth_peak, len(queue))

    def worker():
        while True:
            enqueued_at, attempts = yield queue.get()
            request = workers.request()
            yield request
            yield env.timeout(config.service_seconds)
            result.worker_busy += config.service_seconds
            workers.release(request)
            if failure_stream.random() < config.failure_probability:
                result.failures += 1
                # Entry reappears after the visibility timeout.
                env.process(_redeliver(enqueued_at, attempts + 1))
                continue
            result.processed += 1
            result.latency.record(max(0.0, env.now - enqueued_at))

    def _redeliver(enqueued_at, attempts):
        yield env.timeout(config.visibility_timeout)
        queue.items.append((enqueued_at, attempts))
        queue._dispatch()
        result.redeliveries += 1

    env.process(generator(), name="arrivals")
    # One puller per worker slot keeps the model simple and exact.
    for _ in range(config.concurrency):
        env.process(worker(), name="lambda")
    env.run(until=config.duration)
    return result
