"""Testbed profiles: the calibrated hardware parameters (paper §5.1).

Two testbeds:

* **AWS** — Lustre Intel Cloud Edition 1.4, 20 GB over five t2.micro
  EC2 instances (2 compute, 1 OSS, 1 MGS, 1 MDS), unoptimised EBS.
* **Iota** — ANL's pre-exascale cluster: 44 nodes × 72 cores, 897 TB
  Lustre with four MDS (only one active during the paper's tests), same
  hardware generation as the planned 150 PB Aurora store.

Calibration sources
-------------------
* Per-op client latencies ← Table 2 rows (10,000-file script).
* ``combined_event_rate`` ← Table 2 "Total Events" (the generation
  script's maximum sustained event rate).
* ``d2path`` cost ← §5.2: the monitor sustained 1053 ev/s on AWS and
  8162 ev/s on Iota with per-event resolution, so the processing stage's
  per-event cost is ~1/1053 s and ~1/8162 s; we split it into a
  fork/exec overhead and a per-FID marginal cost, which is what makes
  batching effective.
* CPU/memory coefficients ← Table 3 peaks over the Iota run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.resources import ComponentCostModel
from repro.workloads.generator import OpLatencies


@dataclass(frozen=True)
class TestbedProfile:
    """Everything the performance models need to know about a testbed."""

    name: str
    description: str
    storage_size: str
    num_mds: int
    active_mds: int

    # -- Table 2 calibration --------------------------------------------------
    create_events_per_s: float
    modify_events_per_s: float
    delete_events_per_s: float
    combined_event_rate: float

    # -- monitor pipeline service times (seconds) ----------------------------
    #: Reading one record out of the ChangeLog (cheap).
    extract_seconds_per_record: float
    #: fid2path invocation overhead (fork/exec + RPC setup).
    d2path_overhead_seconds: float
    #: fid2path marginal cost per FID resolved in one invocation.
    d2path_per_fid_seconds: float
    #: Reporting one event batch collector→aggregator (PUSH/PULL).
    report_seconds_per_batch: float
    #: Aggregator store+publish work per event.
    aggregate_seconds_per_event: float
    #: Consumer handling per event.
    consume_seconds_per_event: float

    # -- Table 3 calibration ---------------------------------------------------
    collector_cost: ComponentCostModel
    aggregator_cost: ComponentCostModel
    consumer_cost: ComponentCostModel

    @property
    def op_latencies(self) -> OpLatencies:
        """Client-side per-op latencies implied by the Table 2 rates."""
        return OpLatencies.from_rates(
            self.create_events_per_s,
            self.modify_events_per_s,
            self.delete_events_per_s,
        )

    @property
    def d2path_seconds_per_event(self) -> float:
        """Unbatched per-event resolution cost (overhead + one FID)."""
        return self.d2path_overhead_seconds + self.d2path_per_fid_seconds

    def d2path_batch_seconds(self, unique_fids: int) -> float:
        """Cost of resolving *unique_fids* FIDs in a single invocation."""
        if unique_fids <= 0:
            return 0.0
        return self.d2path_overhead_seconds + unique_fids * self.d2path_per_fid_seconds

    def component_costs(self) -> dict[str, ComponentCostModel]:
        """Cost models keyed by component name (for ResourceUsageModel)."""
        return {
            "collector": self.collector_cost,
            "aggregator": self.aggregator_cost,
            "consumer": self.consumer_cost,
        }


#: AWS testbed (paper Table 2, left column).  Monitor throughput
#: measured at 1053 ev/s -> per-event processing ~0.95 ms, split into
#: ~0.80 ms tool overhead + ~0.15 ms per FID (t2.micro fork/exec is
#: expensive).
AWS = TestbedProfile(
    name="AWS",
    description=(
        "Lustre Intel Cloud Edition 1.4: 20GB over five t2.micro EC2 "
        "instances with an unoptimised EBS volume (2 compute, 1 OSS, "
        "1 MGS, 1 MDS)"
    ),
    storage_size="20GB",
    num_mds=1,
    active_mds=1,
    create_events_per_s=352.0,
    modify_events_per_s=534.0,
    delete_events_per_s=832.0,
    combined_event_rate=1366.0,
    extract_seconds_per_record=3.0e-5,
    d2path_overhead_seconds=7.6e-4,
    d2path_per_fid_seconds=1.4e-4,
    report_seconds_per_batch=2.0e-5,
    aggregate_seconds_per_event=5.0e-5,
    consume_seconds_per_event=1.0e-5,
    collector_cost=ComponentCostModel(
        cpu_seconds_per_event=6.0e-5,
        base_memory_mb=40.0,
        memory_bytes_per_event=1000.0,
    ),
    aggregator_cost=ComponentCostModel(
        cpu_seconds_per_event=1.0e-6,
        base_memory_mb=8.0,
        memory_bytes_per_event=880.0,
    ),
    consumer_cost=ComponentCostModel(
        cpu_seconds_per_event=3.0e-7,
        base_memory_mb=12.8,
        memory_bytes_per_event=0.0,
    ),
)

#: Iota testbed (paper Table 2, right column).  Monitor throughput
#: measured at 8162 ev/s -> per-event processing ~0.1225 ms, split into
#: 0.10 ms overhead + 0.0225 ms per FID.  CPU coefficients are set so a
#: sustained 8162 ev/s run peaks at Table 3's 6.667% / 0.059% / 0.02%.
IOTA = TestbedProfile(
    name="Iota",
    description=(
        "ANL Iota pre-exascale cluster: 44 nodes x 72 cores, 897TB "
        "Lustre, four MDS (one active in the paper's configuration); "
        "same hardware/config as the 150PB Aurora store"
    ),
    storage_size="897TB",
    num_mds=4,
    active_mds=1,
    create_events_per_s=1389.0,
    modify_events_per_s=2538.0,
    delete_events_per_s=3442.0,
    combined_event_rate=9593.0,
    extract_seconds_per_record=5.0e-6,
    d2path_overhead_seconds=9.0e-5,
    d2path_per_fid_seconds=2.25e-5,
    report_seconds_per_batch=5.0e-6,
    aggregate_seconds_per_event=1.0e-5,
    consume_seconds_per_event=2.0e-6,
    collector_cost=ComponentCostModel(
        # 6.667% CPU at 8162 ev/s -> 8.17e-6 CPU-seconds per event.
        cpu_seconds_per_event=8.17e-6,
        base_memory_mb=36.6,
        memory_bytes_per_event=1050.0,
    ),
    aggregator_cost=ComponentCostModel(
        # 0.059% CPU at 8162 ev/s -> 7.2e-8 CPU-seconds per event.
        cpu_seconds_per_event=7.2e-8,
        base_memory_mb=7.6,
        memory_bytes_per_event=900.0,
    ),
    consumer_cost=ComponentCostModel(
        # 0.02% CPU at 8162 ev/s -> 2.45e-8 CPU-seconds per event.
        cpu_seconds_per_event=2.45e-8,
        base_memory_mb=12.8,
        memory_bytes_per_event=0.0,
    ),
)

#: Paper §5.2 measured monitor throughput, kept here as the expected
#: values the benchmarks compare against (never fed into the model).
PAPER_MONITOR_THROUGHPUT = {"AWS": 1053.0, "Iota": 8162.0}

#: Paper Table 2 rows, for paper-vs-measured reporting.
PAPER_TABLE2 = {
    "AWS": {"created": 352, "modified": 534, "deleted": 832, "total": 1366},
    "Iota": {"created": 1389, "modified": 2538, "deleted": 3442, "total": 9593},
}

#: Paper Table 3 rows (component -> (CPU %, memory MB)).
PAPER_TABLE3 = {
    "collector": (6.667, 281.6),
    "aggregator": (0.059, 217.6),
    "consumer": (0.02, 12.8),
}
