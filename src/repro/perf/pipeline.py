"""The discrete-event model of the monitor pipeline (Figure 2).

Structure (virtual time, driven by :mod:`repro.sim`):

* a **generator** process emits events at the testbed's maximum rate
  into per-MDT changelog buffers (each event references a parent
  directory drawn with Zipf-like skew, giving the locality the path
  cache exploits);
* one **collector** process per active MDS reads record batches,
  charges extraction cost, resolves parent FIDs (per-event by default;
  batched and/or cached when configured), charges the transport's report
  cost, and forwards to the aggregator buffer;
* an **aggregator** process charges store+publish cost per event and
  forwards to the consumer buffer;
* a **consumer** process charges handling cost;
* a **sampler** process closes 1-second CPU windows per component
  (Table 3's peak-utilisation measurement).

The model's outputs — delivered events/second, the bottleneck stage,
per-stage utilisation, cache hit rates, backlog growth — are *derived*
from this structure; only per-operation costs are calibrated inputs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.metrics.histogram import LatencyHistogram
from repro.metrics.resources import ResourceSample, ResourceUsageModel
from repro.perf.testbeds import TestbedProfile
from repro.sim import Environment, RandomStreams, Store


#: Transport models for the A4 ablation: multiplicative overhead on the
#: per-batch report cost, plus an additive blocking round-trip.
TRANSPORT_MODELS: Dict[str, tuple[float, float]] = {
    # (report-cost multiplier, extra blocking seconds per batch)
    "pushpull": (1.0, 0.0),
    "pubsub": (1.15, 0.0),
    "reqrep": (1.0, 4.0e-4),
    # Process-per-shard bridge: marshal framing adds a small per-report
    # cost and each batch pays one queue hop of latency, but shards
    # stop sharing a GIL (modelled upstream by the per-shard capacity).
    "multiproc": (1.05, 1.5e-4),
}


@dataclass(frozen=True)
class PipelineConfig:
    """One pipeline experiment."""

    profile: TestbedProfile
    duration: float = 30.0
    #: Event arrival rate; defaults to the testbed's maximum generation
    #: rate (Table 2 "Total Events").
    arrival_rate: Optional[float] = None
    num_mds: int = 1
    #: Records per collector read (and per d2path batch when > 1).
    batch_size: int = 1
    #: LRU entries for the parent-path cache (0 = off, paper's config).
    cache_size: int = 0
    #: Distinct parent directories in the workload.
    n_directories: int = 256
    dir_skew: float = 1.1
    transport: str = "pushpull"
    #: Robinhood-style centralized collection: a single reader drains
    #: every MDT sequentially instead of one collector per MDS (A3).
    centralized: bool = False
    #: Aggregator shards: collectors route each event to one of
    #: ``num_aggregators`` parallel aggregation servers by a stable
    #: hash of its directory (the cluster tier's MDT-affine routing).
    #: 1 models the paper's single aggregator.
    num_aggregators: int = 1
    #: Deterministic interarrival/service by default; seed drives only
    #: the directory-choice stream.
    seed: int = 0
    #: Exponential (rather than deterministic) interarrival times.
    stochastic_arrivals: bool = False
    #: Lognormal service times (mean preserved, sigma below) instead of
    #: deterministic — for checking results are not knife-edge.
    stochastic_service: bool = False
    service_sigma: float = 0.25
    #: Arrival-rate shape over time: "constant" (default), "diurnal"
    #: (sinusoidal around the mean with ``profile_amplitude`` relative
    #: swing and ``profile_period`` seconds), or "bursty" (base rate
    #: with ``profile_amplitude``-times bursts of ``profile_burst_len``
    #: seconds every ``profile_period`` seconds).  The §5.3 discussion
    #: notes real generation is sporadic, not uniform.
    arrival_profile: str = "constant"
    profile_amplitude: float = 0.5
    profile_period: float = 10.0
    profile_burst_len: float = 2.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.num_mds < 1:
            raise ValueError(f"num_mds must be >= 1: {self.num_mds}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1: {self.batch_size}")
        if self.num_aggregators < 1:
            raise ValueError(
                f"num_aggregators must be >= 1: {self.num_aggregators}"
            )
        if self.transport not in TRANSPORT_MODELS:
            raise ValueError(
                f"unknown transport {self.transport!r}; "
                f"known: {sorted(TRANSPORT_MODELS)}"
            )
        if self.arrival_profile not in ("constant", "diurnal", "bursty"):
            raise ValueError(
                f"unknown arrival profile {self.arrival_profile!r}"
            )
        if self.arrival_profile == "diurnal" and not (
            0 <= self.profile_amplitude < 1
        ):
            raise ValueError("diurnal amplitude must be in [0, 1)")


@dataclass
class PipelineResult:
    """Outputs of one pipeline run."""

    config: PipelineConfig
    generated: int = 0
    collected: int = 0
    delivered: int = 0
    duration: float = 0.0
    stage_busy: Dict[str, float] = field(default_factory=dict)
    d2path_invocations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    changelog_backlog_peak: int = 0
    resources: Dict[str, ResourceSample] = field(default_factory=dict)
    #: End-to-end event latency (generation -> consumer), seconds.
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def generation_rate(self) -> float:
        return self.generated / self.duration if self.duration else 0.0

    @property
    def delivered_rate(self) -> float:
        """End-to-end monitor throughput (events/s at the consumer)."""
        return self.delivered / self.duration if self.duration else 0.0

    @property
    def shortfall_percent(self) -> float:
        """How far below the generation rate the monitor ran (paper:
        14.91% on Iota)."""
        if self.generated == 0:
            return 0.0
        return 100.0 * (self.generated - self.delivered) / self.generated

    @property
    def keeps_up(self) -> bool:
        """True when the monitor matches the generation rate (within 2%)."""
        return self.shortfall_percent <= 2.0

    def stage_utilisation(self) -> Dict[str, float]:
        """Busy fraction of the run per stage."""
        if self.duration <= 0:
            return {name: 0.0 for name in self.stage_busy}
        return {
            name: busy / self.duration for name, busy in self.stage_busy.items()
        }

    @property
    def bottleneck(self) -> str:
        """The stage with the highest busy fraction."""
        if not self.stage_busy:
            return "none"
        return max(self.stage_busy, key=lambda name: self.stage_busy[name])

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


class _IntLru:
    """Tiny LRU over integer directory ids (the model-side path cache)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[int, bool] = OrderedDict()

    def hit(self, key: int) -> bool:
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        return False

    def put(self, key: int) -> None:
        self._entries[key] = True
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


def run_pipeline(config: PipelineConfig) -> PipelineResult:
    """Execute the pipeline model and return its measurements."""
    profile = config.profile
    env = Environment()
    streams = RandomStreams(config.seed)
    dir_stream = streams.get("dirs")
    arrival_stream = streams.get("arrivals")
    result = PipelineResult(config=config, duration=config.duration)
    resources = ResourceUsageModel(profile.component_costs())

    rate = config.arrival_rate or profile.combined_event_rate

    def _service(mean: float) -> float:
        """One service-time draw (deterministic unless configured)."""
        if not config.stochastic_service or mean <= 0:
            return mean
        return streams.lognormal("service", mean, sigma=config.service_sigma)
    # Centralized (Robinhood-style) collection: all MDT records are
    # drained sequentially by a single reader, which is equivalent in
    # service capacity to one queue with one server.  Distributed mode
    # gives each MDS its own buffer and collector.
    n_buffers = 1 if config.centralized else config.num_mds
    per_mdt_changelogs = [Store(env) for _ in range(n_buffers)]
    # One inbox per aggregator shard; collectors route each event by a
    # stable hash of its directory id, mirroring the cluster tier's
    # deterministic MDT-affine shard routing.
    aggregator_inboxes = [Store(env) for _ in range(config.num_aggregators)]
    consumer_inbox: Store = Store(env)

    # Zipf-like directory popularity (precomputed CDF).
    weights = [1.0 / (i + 1) ** config.dir_skew for i in range(config.n_directories)]
    total_weight = sum(weights)
    cdf = []
    acc = 0.0
    for weight in weights:
        acc += weight / total_weight
        cdf.append(acc)

    def _draw_dir() -> int:
        u = dir_stream.random()
        lo, hi = 0, len(cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    busy: Dict[str, float] = {
        "extract": 0.0,
        "process": 0.0,
        "report": 0.0,
        "aggregate": 0.0,
        "consume": 0.0,
    }

    # ------------------------------------------------------------------
    # Generator
    # ------------------------------------------------------------------

    def _rate_at(now: float) -> float:
        """Instantaneous arrival rate under the configured profile.

        Profiles preserve the long-run mean rate so results stay
        comparable with the constant-rate runs.
        """
        import math

        if config.arrival_profile == "diurnal":
            return rate * (
                1.0
                + config.profile_amplitude
                * math.sin(2 * math.pi * now / config.profile_period)
            )
        if config.arrival_profile == "bursty":
            burst_fraction = config.profile_burst_len / config.profile_period
            in_burst = (now % config.profile_period) < config.profile_burst_len
            burst_rate = rate * config.profile_amplitude
            # Off-burst rate chosen so the time-average equals `rate`.
            base = (rate - burst_rate * burst_fraction) / (1 - burst_fraction)
            return max(burst_rate if in_burst else base, 1e-9)
        return rate

    def generator():
        mdt = 0
        while env.now < config.duration:
            now_rate = _rate_at(env.now)
            if config.stochastic_arrivals:
                delay = arrival_stream.expovariate(now_rate)
            else:
                delay = 1.0 / now_rate
            yield env.timeout(delay)
            if env.now >= config.duration:
                break
            event = (_draw_dir(), env.now)
            buffer = per_mdt_changelogs[mdt % n_buffers]
            buffer.items.append(event)
            # Wake any waiting collector without the put/get event dance
            # (stores are unbounded here): re-dispatch pending gets.
            buffer._dispatch()
            mdt += 1
            result.generated += 1
            result.changelog_backlog_peak = max(
                result.changelog_backlog_peak,
                max(len(s) for s in per_mdt_changelogs),
            )

    # ------------------------------------------------------------------
    # Collectors (one per MDS)
    # ------------------------------------------------------------------

    report_multiplier, report_rtt = TRANSPORT_MODELS[config.transport]
    report_cost = profile.report_seconds_per_batch * report_multiplier + report_rtt

    def collector(changelog: Store):
        cache = _IntLru(config.cache_size) if config.cache_size else None
        while True:
            first = yield changelog.get()
            batch = [first]
            while changelog.items and len(batch) < config.batch_size:
                batch.append(changelog.items.popleft())
            # Extraction.
            extract_cost = _service(len(batch) * profile.extract_seconds_per_record)
            busy["extract"] += extract_cost
            yield env.timeout(extract_cost)
            # Processing: resolve parent FIDs.
            if config.batch_size > 1:
                missing = []
                seen = set()
                for dir_id, _ts in batch:
                    if dir_id in seen:
                        continue
                    seen.add(dir_id)
                    if cache is not None and cache.hit(dir_id):
                        result.cache_hits += 1
                        continue
                    if cache is not None:
                        result.cache_misses += 1
                    missing.append(dir_id)
                if missing:
                    cost = _service(profile.d2path_batch_seconds(len(missing)))
                    result.d2path_invocations += 1
                    busy["process"] += cost
                    yield env.timeout(cost)
                    if cache is not None:
                        for dir_id in missing:
                            cache.put(dir_id)
            else:
                for dir_id, _ts in batch:
                    if cache is not None and cache.hit(dir_id):
                        result.cache_hits += 1
                        continue
                    if cache is not None:
                        result.cache_misses += 1
                    cost = _service(profile.d2path_seconds_per_event)
                    result.d2path_invocations += 1
                    busy["process"] += cost
                    yield env.timeout(cost)
                    if cache is not None:
                        cache.put(dir_id)
            # Report to the aggregator.
            this_report = _service(report_cost)
            busy["report"] += this_report
            yield env.timeout(this_report)
            resources.account("collector", len(batch))
            result.collected += len(batch)
            touched = set()
            for item in batch:
                shard = item[0] % config.num_aggregators
                aggregator_inboxes[shard].items.append(item)
                touched.add(shard)
            for shard in touched:
                aggregator_inboxes[shard]._dispatch()

    # ------------------------------------------------------------------
    # Aggregator and consumer
    # ------------------------------------------------------------------

    def aggregator(inbox: Store):
        # Shards run in parallel; ``busy['aggregate']`` sums their work
        # (utilisation > 1.0 is possible and means the tier, not one
        # server, is the binding resource).
        while True:
            item = yield inbox.get()
            cost = _service(profile.aggregate_seconds_per_event)
            busy["aggregate"] += cost
            yield env.timeout(cost)
            resources.account("aggregator", 1)
            consumer_inbox.items.append(item)
            consumer_inbox._dispatch()

    def consumer():
        while True:
            item = yield consumer_inbox.get()
            cost = _service(profile.consume_seconds_per_event)
            busy["consume"] += cost
            yield env.timeout(cost)
            resources.account("consumer", 1)
            result.delivered += 1
            result.latency.record(max(0.0, env.now - item[1]))

    def sampler():
        while True:
            yield env.timeout(1.0)
            for component in ("collector", "aggregator", "consumer"):
                resources.sample_window(component, 1.0)

    env.process(generator(), name="generator")
    for changelog in per_mdt_changelogs:
        env.process(collector(changelog), name="collector")
    for inbox in aggregator_inboxes:
        env.process(aggregator(inbox), name="aggregator")
    env.process(consumer(), name="consumer")
    env.process(sampler(), name="sampler")
    env.run(until=config.duration)

    result.stage_busy = dict(busy)
    for component in ("collector", "aggregator", "consumer"):
        result.resources[component] = resources.peak_sample(component)
    return result
