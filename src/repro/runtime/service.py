"""The Service base class: one lifecycle for every pipeline component.

The monitor is a tree of long-running cooperating services — per-MDS
Collectors, the multi-threaded Aggregator, Consumers, watchdog
observers, serverless workers, Ripple agents.  Before this module each
of them re-implemented the same ad-hoc lifecycle (daemon thread +
``threading.Event`` + busy poll + manual join).  :class:`Service`
factors that out:

* **Idempotent lifecycle** — ``start()`` twice is a no-op, ``stop()``
  joins workers and runs the flush hook, ``close()`` after ``stop()``
  is safe and releases resources exactly once.
* **Named worker loops with idle backoff** — a worker repeatedly calls
  a step function; when the step reports no work the loop waits on the
  stop event with exponential backoff (``idle_wait`` up to
  ``max_idle_wait``), replacing the busy-spin ``continue`` loops the
  components used to ship.  Periodic workers (``interval=...``) instead
  wait a fixed period between steps (sweepers, samplers).
* **Crash detection** — an exception escaping a step marks the service
  ``CRASHED`` and records the error; a :class:`~repro.runtime.Supervisor`
  notices and applies its restart policy.
* **Uniform stats/health** — every service registers its counters in a
  shared :class:`~repro.metrics.MetricsRegistry` scope and answers
  :meth:`stats`/:meth:`health` the same way.

Deterministic single-stepping is untouched: services keep their
``poll_once``/``pump_once`` methods and tests drive them directly; the
worker loops are only the live-mode driver around those same steps.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, Optional, Union

from repro.errors import ReproError
from repro.metrics.registry import MetricsRegistry, ScopedRegistry
from repro.util.logging import get_logger


class ServiceCrash(ReproError):
    """An error that must crash the worker instead of being absorbed.

    Stage-level retry logic (e.g. a collector's report-failure path)
    swallows ordinary exceptions; raising :class:`ServiceCrash` — or
    letting any exception escape a worker step — escalates to the
    supervisor, which restarts the service under its policy.
    """


class ServiceState(str, Enum):
    """Lifecycle states a service moves through."""

    NEW = "new"
    RUNNING = "running"
    STOPPED = "stopped"
    CRASHED = "crashed"


@dataclass
class WorkerSpec:
    """One named worker loop of a service.

    step:
        Called repeatedly while the service runs.  Its return value is
        the amount of work done; falsy means idle, which triggers
        backoff.  An escaping exception crashes the service.
    idle_wait / max_idle_wait:
        Exponential-backoff bounds for idle polls.  Any completed work
        resets the backoff to ``idle_wait``.
    interval:
        When set, the worker is periodic instead of work-driven: it
        waits *interval* seconds (interruptible by stop) before every
        step, ignoring the step's return value.
    """

    name: str
    step: Callable[[], Any]
    idle_wait: float = 0.002
    max_idle_wait: float = 0.05
    interval: Optional[float] = None


class Service:
    """Base class for supervised, observable, long-running components."""

    def __init__(
        self,
        name: str,
        registry: Optional[MetricsRegistry] = None,
        scope: Optional[str] = None,
    ) -> None:
        self.name = name
        registry = registry or MetricsRegistry()
        #: Unique metrics scope within the shared registry.
        self.metrics: ScopedRegistry = registry.scoped(
            registry.unique_scope(scope or name)
        )
        self._service_log = get_logger(f"runtime.{name}")
        self._lifecycle_lock = threading.RLock()
        self._halt = threading.Event()
        self._worker_threads: list[threading.Thread] = []
        self._state = ServiceState.NEW
        self._closed = False
        #: Times this service was restarted by a supervisor.
        self.restart_count = 0
        #: The exception that crashed the service (if any).
        self.last_error: Optional[BaseException] = None

    # -- subclass hooks -----------------------------------------------------

    def worker_specs(self) -> list[WorkerSpec]:
        """The worker loops to run in live mode (override)."""
        return []

    def on_start(self) -> None:
        """Hook before worker threads launch."""

    def on_stop(self) -> None:
        """Flush hook after worker threads have joined."""

    def on_close(self) -> None:
        """Release-resources hook; runs exactly once."""

    # -- state --------------------------------------------------------------

    @property
    def state(self) -> ServiceState:
        return self._state

    @property
    def running(self) -> bool:
        return self._state is ServiceState.RUNNING

    @property
    def crashed(self) -> bool:
        return self._state is ServiceState.CRASHED

    def health(self) -> Dict[str, Any]:
        """The uniform per-service health record."""
        return {
            "state": self._state.value,
            "restart_count": self.restart_count,
            "workers": [t.name for t in self._worker_threads if t.is_alive()],
            "last_error": repr(self.last_error) if self.last_error else None,
        }

    def stats(self) -> Dict[str, Union[int, float, str, Any]]:
        """Health plus every metric registered in this service's scope."""
        return {**self.health(), **self.metrics.snapshot()}

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start every worker loop (idempotent)."""
        with self._lifecycle_lock:
            if self._state is ServiceState.RUNNING:
                return
            if self._closed:
                raise ServiceCrash(f"service {self.name!r} is closed")
            self._halt.clear()
            self.last_error = None
            self._worker_threads = []
            self._state = ServiceState.RUNNING
            self.on_start()
            for spec in self.worker_specs():
                thread = threading.Thread(
                    target=self._run_worker,
                    args=(spec,),
                    name=f"{self.name}-{spec.name}",
                    daemon=True,
                )
                thread.start()
                self._worker_threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop worker loops, join them, and flush (idempotent)."""
        with self._lifecycle_lock:
            if self._state not in (ServiceState.RUNNING, ServiceState.CRASHED):
                return
            self._halt.set()
            current = threading.current_thread()
            for thread in self._worker_threads:
                if thread is not current:
                    thread.join(timeout=timeout)
            self._worker_threads = []
            try:
                # Best-effort flush: a still-failing downstream must not
                # prevent the stop (or a supervisor restart) itself.
                self.on_stop()
            except Exception as exc:
                self.last_error = exc
                self._service_log.warning(
                    "flush on stop failed: %s: %s", type(exc).__name__, exc
                )
            finally:
                self._state = ServiceState.STOPPED

    def close(self) -> None:
        """Stop and release resources; safe after ``stop()`` and twice."""
        with self._lifecycle_lock:
            self.stop()
            if not self._closed:
                self._closed = True
                self.on_close()

    # -- worker loop --------------------------------------------------------

    def _run_worker(self, spec: WorkerSpec) -> None:
        backoff = spec.idle_wait
        try:
            while not self._halt.is_set():
                if spec.interval is not None:
                    if self._halt.wait(spec.interval):
                        break
                    spec.step()
                    continue
                if spec.step():
                    backoff = spec.idle_wait
                else:
                    self._halt.wait(backoff)
                    backoff = min(backoff * 2, spec.max_idle_wait)
        except BaseException as exc:
            self.last_error = exc
            self._state = ServiceState.CRASHED
            self.metrics.counter("crashes").inc()
            self._service_log.warning(
                "worker %s crashed: %s: %s", spec.name, type(exc).__name__, exc
            )


def call_with_pump(
    call: Callable[[], Any],
    pump: Callable[[], Any],
    join_interval: float = 0.001,
) -> Any:
    """Run *call* in a helper thread while *pump* serves it inline.

    The deterministic REQ/REP pattern: a client issues a blocking
    request from a helper thread while the caller pumps the server's
    ``serve_*_once`` loop until the reply lands.  Exceptions from *call*
    propagate to the caller.
    """
    box: list[Any] = []
    error: list[BaseException] = []

    def _ask() -> None:
        try:
            box.append(call())
        except BaseException as exc:  # re-raised below
            error.append(exc)

    asker = threading.Thread(target=_ask, name="call-with-pump", daemon=True)
    asker.start()
    while asker.is_alive():
        pump()
        asker.join(timeout=join_interval)
    if error:
        raise error[0]
    return box[0]
