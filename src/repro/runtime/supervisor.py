"""The Supervisor: composes services into a restartable tree.

Robinhood's policy engine and FSMonitor both treat supervised,
restartable pipeline stages with uniform health as the prerequisite for
production scale.  A :class:`Supervisor` owns an ordered set of child
services and provides:

* **dependency-ordered start** — children declare which siblings they
  must start after (``add_child(svc, after=[...])``); start order is a
  stable topological sort, stop order is its exact reverse, so a
  pipeline stops producers before the stages that drain them;
* **crash detection and restart** — a periodic supervise loop notices
  children in the ``CRASHED`` state and restarts them under a
  :class:`RestartPolicy` (exponential backoff, bounded attempts), so a
  collector that dies mid-poll is restarted instead of silently wedging
  the pipeline.  Report-before-purge semantics in the stages make such
  restarts at-least-once: nothing acknowledged is lost;
* **aggregate health/stats** — one call reports every child's uniform
  ``running/stopped/crashed/restart_count`` record plus its counters.

The supervisor is itself a :class:`~repro.runtime.Service`, so
supervision trees nest: a facility monitor can supervise per-filesystem
monitors which each supervise their collectors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.metrics.registry import MetricsRegistry
from repro.runtime.service import Service, ServiceState, WorkerSpec
from repro.util.logging import get_logger


@dataclass(frozen=True)
class RestartPolicy:
    """How crashed children are brought back.

    max_restarts:
        Total restart attempts per child before the supervisor gives up
        and leaves it ``crashed`` (visible in health output).
    backoff_base / backoff_multiplier / backoff_max:
        The n-th restart of a child waits
        ``min(backoff_base * backoff_multiplier**n, backoff_max)``
        seconds after the crash is observed.
    """

    max_restarts: int = 5
    backoff_base: float = 0.02
    backoff_multiplier: float = 2.0
    backoff_max: float = 2.0

    def delay(self, attempt: int) -> float:
        """Backoff before restart number *attempt* (0-based)."""
        return min(
            self.backoff_base * self.backoff_multiplier ** attempt,
            self.backoff_max,
        )


@dataclass
class _ChildRecord:
    service: Service
    after: List[str] = field(default_factory=list)
    attempts: int = 0
    next_attempt_at: Optional[float] = None
    gave_up: bool = False


class Supervisor(Service):
    """A service that runs, watches and restarts child services."""

    def __init__(
        self,
        name: str = "supervisor",
        policy: Optional[RestartPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        poll_interval: float = 0.01,
    ) -> None:
        super().__init__(name, registry)
        self.policy = policy or RestartPolicy()
        self.poll_interval = poll_interval
        self._children: Dict[str, _ChildRecord] = {}
        self._log = get_logger(f"runtime.supervisor.{name}")

    # -- composition --------------------------------------------------------

    def add_child(
        self,
        service: Service,
        after: Optional[Sequence[str]] = None,
        before: Optional[Sequence[str]] = None,
        key: Optional[str] = None,
    ) -> str:
        """Register *service* with ordering constraints.

        It starts after every sibling named in *after* and before every
        sibling named in *before* (both must already be registered);
        stop order is the exact reverse.  ``before`` is how a consumer
        added to a running pipeline still gets stopped *after* the
        stage that feeds it.  Returns the key the child is registered
        under (the service name, uniquified on collision).  Children
        added while the supervisor is running are started immediately.
        """
        deps = list(after or [])
        successors = list(before or [])
        for dep in deps + successors:
            if dep not in self._children:
                raise ValueError(
                    f"unknown dependency {dep!r} for child {service.name!r}"
                )
        child_key = key or service.name
        if child_key in self._children:
            suffix = 2
            while f"{child_key}#{suffix}" in self._children:
                suffix += 1
            child_key = f"{child_key}#{suffix}"
        self._children[child_key] = _ChildRecord(service, deps)
        for successor in successors:
            self._children[successor].after.append(child_key)
        if self.running:
            service.start()
        return child_key

    def child(self, key: str) -> Service:
        """Look up a child service by its registration key."""
        return self._children[key].service

    def children(self) -> List[Service]:
        """Children in start (dependency) order."""
        return [self._children[key].service for key in self._start_order()]

    def _start_order(self) -> List[str]:
        """Stable topological order: dependencies first, insertion order
        among unconstrained children."""
        keys = list(self._children)
        indegree = {key: 0 for key in keys}
        dependents: Dict[str, List[str]] = {key: [] for key in keys}
        for key, record in self._children.items():
            for dep in record.after:
                indegree[key] += 1
                dependents[dep].append(key)
        ready = [key for key in keys if indegree[key] == 0]
        order: List[str] = []
        while ready:
            key = ready.pop(0)
            order.append(key)
            for dependent in dependents[key]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(keys):
            cyclic = sorted(set(keys) - set(order))
            raise ValueError(f"dependency cycle among children: {cyclic}")
        # Re-impose insertion order among simultaneously-ready children.
        rank = {key: index for index, key in enumerate(keys)}
        return sorted(
            order,
            key=lambda k: (
                max(
                    (order.index(d) for d in self._children[k].after),
                    default=-1,
                ),
                rank[k],
            ),
        )

    # -- lifecycle ----------------------------------------------------------

    def worker_specs(self) -> list[WorkerSpec]:
        return [
            WorkerSpec(
                "supervise", self.supervise_once, interval=self.poll_interval
            )
        ]

    def on_start(self) -> None:
        for key in self._start_order():
            self._children[key].service.start()

    def on_stop(self) -> None:
        for key in reversed(self._start_order()):
            self._children[key].service.stop()

    def on_close(self) -> None:
        for key in reversed(self._start_order()):
            self._children[key].service.close()

    # -- supervision --------------------------------------------------------

    def supervise_once(self, now: Optional[float] = None) -> int:
        """One supervision sweep; returns the number of restarts issued.

        Called periodically by the supervise worker in live mode;
        deterministic tests call it directly (optionally with a fake
        *now* to step through backoff windows).
        """
        now = time.monotonic() if now is None else now
        restarted = 0
        for key, record in list(self._children.items()):
            service = record.service
            if service.state is not ServiceState.CRASHED or record.gave_up:
                continue
            if record.next_attempt_at is None:
                if record.attempts >= self.policy.max_restarts:
                    record.gave_up = True
                    self.metrics.counter("children_given_up").inc()
                    self._log.warning(
                        "child %s crashed %d times; giving up (%s)",
                        key, record.attempts, service.last_error,
                    )
                    continue
                record.next_attempt_at = now + self.policy.delay(record.attempts)
            if now < record.next_attempt_at:
                continue
            record.next_attempt_at = None
            record.attempts += 1
            self._log.info(
                "restarting crashed child %s (attempt %d/%d)",
                key, record.attempts, self.policy.max_restarts,
            )
            service.stop()
            service.restart_count += 1
            service.start()
            self.metrics.counter("restarts").inc()
            restarted += 1
        return restarted

    # -- aggregate health ---------------------------------------------------

    def health(self) -> Dict[str, Any]:
        record = super().health()
        record["services"] = {
            key: child.service.health() for key, child in self._children.items()
        }
        return record

    def stats(self) -> Dict[str, Any]:
        return {
            **super().health(),
            **self.metrics.snapshot(),
            "services": {
                key: child.service.stats()
                for key, child in self._children.items()
            },
        }
