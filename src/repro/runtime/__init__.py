"""Unified service runtime: lifecycle, supervision, stats protocol.

Every long-running pipeline component — Collectors, the Aggregator,
Consumers, watchdog Observers, serverless workers, Ripple agents —
runs on this runtime instead of hand-rolled daemon-thread loops:

* :class:`Service` — idempotent ``start()/stop()/close()``, named
  worker loops with exponential idle backoff, crash detection, and the
  uniform ``stats()``/``health()`` protocol over a shared
  :class:`~repro.metrics.MetricsRegistry`.
* :class:`Supervisor` — dependency-ordered start / reverse-order stop
  of child services, plus crash restart under a :class:`RestartPolicy`.
* :func:`call_with_pump` — the deterministic REQ/REP helper used to
  serve an inline API while a blocking request is in flight.
"""

from repro.runtime.service import (
    Service,
    ServiceCrash,
    ServiceState,
    WorkerSpec,
    call_with_pump,
)
from repro.runtime.supervisor import RestartPolicy, Supervisor

__all__ = [
    "Service",
    "ServiceCrash",
    "ServiceState",
    "WorkerSpec",
    "RestartPolicy",
    "Supervisor",
    "call_with_pump",
]
