"""repro — Ripple SDCI and a scalable Lustre ChangeLog monitor.

A from-scratch reproduction of *"Toward Scalable Monitoring on
Large-Scale Storage for Software Defined Cyberinfrastructure"*
(PDSW-DISCS'17).  See README.md for the tour, DESIGN.md for the system
inventory and EXPERIMENTS.md for paper-vs-measured results.

The most common entry points are re-exported here:

>>> from repro import LustreFilesystem, LustreMonitor, RippleService
"""

from repro.core import (
    Aggregator,
    Collector,
    Consumer,
    EventProcessor,
    EventStore,
    EventType,
    FileEvent,
    LustreMonitor,
    MonitorConfig,
)
from repro.fs import MemoryFilesystem, Observer
from repro.metrics import MetricsRegistry
from repro.lustre import (
    ChangeLog,
    ChangelogRecord,
    Fid,
    FidResolver,
    LustreFilesystem,
    RecordType,
)
from repro.ripple import (
    Action,
    RippleAgent,
    RippleService,
    Rule,
    Trigger,
)
from repro.runtime import (
    RestartPolicy,
    Service,
    ServiceCrash,
    Supervisor,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # filesystem substrates
    "LustreFilesystem",
    "MemoryFilesystem",
    "Observer",
    "Fid",
    "ChangeLog",
    "ChangelogRecord",
    "RecordType",
    "FidResolver",
    # the monitor
    "LustreMonitor",
    "MonitorConfig",
    "Collector",
    "Aggregator",
    "Consumer",
    "EventProcessor",
    "EventStore",
    "FileEvent",
    "EventType",
    # Ripple
    "RippleService",
    "RippleAgent",
    "Rule",
    "Trigger",
    "Action",
    # service runtime
    "Service",
    "ServiceCrash",
    "Supervisor",
    "RestartPolicy",
    "MetricsRegistry",
]
