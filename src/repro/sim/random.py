"""Deterministic named random streams for simulations.

Each named stream is an independent :class:`random.Random` seeded from the
root seed and the stream name, so adding a new consumer of randomness never
perturbs the draws seen by existing consumers — a standard DES
reproducibility technique.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A family of independent, reproducible random streams.

    >>> streams = RandomStreams(seed=42)
    >>> a1 = streams.get('arrivals').random()
    >>> b1 = streams.get('service').random()
    >>> a2 = RandomStreams(seed=42).get('arrivals').random()
    >>> a1 == a2
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return (creating if needed) the stream called *name*."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def exponential(self, name: str, mean: float) -> float:
        """One draw from Exp(mean) on stream *name*."""
        if mean <= 0:
            raise ValueError(f"mean must be positive: {mean}")
        return self.get(name).expovariate(1.0 / mean)

    def lognormal(self, name: str, mean: float, sigma: float = 0.25) -> float:
        """A lognormal service-time draw with the given *mean*.

        The underlying normal parameters are derived so the distribution's
        mean equals *mean* — convenient for calibrated latency models.
        """
        import math

        if mean <= 0:
            raise ValueError(f"mean must be positive: {mean}")
        mu = math.log(mean) - 0.5 * sigma * sigma
        return self.get(name).lognormvariate(mu, sigma)
