"""A small discrete-event simulation (DES) engine.

The engine drives the calibrated performance models in :mod:`repro.perf`.
It follows the familiar generator-as-process style: a process is a Python
generator that yields *events* (timeouts, store gets/puts, resource
requests); the environment resumes it when the event fires.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def proc(env):
...     yield env.timeout(1.5)
...     log.append(env.now)
>>> _ = env.process(proc(env))
>>> env.run()
>>> log
[1.5]
"""

from repro.sim.engine import Environment, Event, Interrupt, Process, Timeout
from repro.sim.random import RandomStreams
from repro.sim.resources import Resource, Store

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "Interrupt",
    "Store",
    "Resource",
    "RandomStreams",
]
