"""Shared resources for the DES engine: FIFO stores and capacity servers.

:class:`Store` models a bounded FIFO buffer (message queues, changelog
backlogs).  :class:`Resource` models a server with *capacity* concurrent
slots (a CPU, an MDS service thread); processes request a slot, hold it
for their service time, then release it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.errors import SimulationError
from repro.sim.engine import Environment, Event


class StorePut(Event):
    """Pending put of *item* into a store."""

    __slots__ = ("item", "_store")

    def __init__(self, env: Environment, item: Any, store: "Store") -> None:
        super().__init__(env)
        self.item = item
        self._store = store

    def cancel(self) -> None:
        """Withdraw an unfulfilled put (interrupted waiter)."""
        if not self.triggered:
            try:
                self._store._puts.remove(self)
            except ValueError:
                pass


class StoreGet(Event):
    """Pending get from a store; succeeds with the item."""

    __slots__ = ("_store",)

    def __init__(self, env: Environment, store: "Store") -> None:
        super().__init__(env)
        self._store = store

    def cancel(self) -> None:
        """Withdraw an unfulfilled get (interrupted waiter)."""
        if not self.triggered:
            try:
                self._store._gets.remove(self)
            except ValueError:
                pass


class Store:
    """A bounded FIFO of items with blocking put/get semantics.

    >>> from repro.sim import Environment, Store
    >>> env = Environment()
    >>> store = Store(env, capacity=1)
    >>> def producer(env, store):
    ...     yield store.put('a')
    ...     yield store.put('b')
    >>> got = []
    >>> def consumer(env, store):
    ...     for _ in range(2):
    ...         item = yield store.get()
    ...         got.append(item)
    >>> _ = env.process(producer(env, store))
    >>> _ = env.process(consumer(env, store))
    >>> env.run()
    >>> got
    ['a', 'b']
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive: {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._puts: Deque[StorePut] = deque()
        self._gets: Deque[StoreGet] = deque()
        #: Cumulative counters useful for pipeline instrumentation.
        self.total_put = 0
        self.total_got = 0
        self.peak_level = 0

    def __len__(self) -> int:
        return len(self.items)

    @property
    def level(self) -> int:
        """Number of items currently buffered."""
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Event that succeeds once *item* has been accepted."""
        event = StorePut(self.env, item, self)
        self._puts.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Event that succeeds with the next FIFO item."""
        event = StoreGet(self.env, self)
        self._gets.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit pending puts while there is room.
            while self._puts and len(self.items) < self.capacity:
                put = self._puts.popleft()
                self.items.append(put.item)
                self.total_put += 1
                self.peak_level = max(self.peak_level, len(self.items))
                put.succeed()
                progressed = True
            # Satisfy pending gets while items exist.
            while self._gets and self.items:
                get = self._gets.popleft()
                item = self.items.popleft()
                self.total_got += 1
                get.succeed(item)
                progressed = True


class ResourceRequest(Event):
    """Pending request for one slot of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, env: Environment, resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource

    def cancel(self) -> None:
        """Withdraw an ungranted request (interrupted waiter)."""
        if not self.triggered:
            try:
                self.resource._queue.remove(self)
            except ValueError:
                pass

    # Allow use as a context manager inside processes:
    #   with resource.request() as req: yield req; ...
    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)


class Resource:
    """A server with a fixed number of concurrent slots.

    Tracks utilisation: ``busy_time`` accumulates slot-seconds of service,
    letting the perf models derive CPU utilisation percentages.
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: list[ResourceRequest] = []
        self._queue: Deque[ResourceRequest] = deque()
        self.busy_time = 0.0
        self._last_change = env.now
        self.total_served = 0

    @property
    def count(self) -> int:
        """Slots currently in use."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Requests waiting for a slot."""
        return len(self._queue)

    def _account(self) -> None:
        now = self.env.now
        self.busy_time += self.count * (now - self._last_change)
        self._last_change = now

    def request(self) -> ResourceRequest:
        """Event that succeeds once a slot is granted."""
        event = ResourceRequest(self.env, self)
        self._account()
        if len(self._users) < self.capacity:
            self._users.append(event)
            event.succeed()
        else:
            self._queue.append(event)
        return event

    def release(self, request: ResourceRequest) -> None:
        """Return the slot held by *request* and admit the next waiter."""
        self._account()
        try:
            self._users.remove(request)
        except ValueError:
            raise SimulationError("release of a request that holds no slot")
        self.total_served += 1
        if self._queue:
            waiter = self._queue.popleft()
            self._users.append(waiter)
            waiter.succeed()

    def utilisation(self, elapsed: float | None = None) -> float:
        """Average fraction of capacity busy since construction.

        *elapsed* overrides the denominator (defaults to env.now).
        """
        self._account()
        horizon = elapsed if elapsed is not None else self.env.now
        if horizon <= 0:
            return 0.0
        return self.busy_time / (horizon * self.capacity)
