"""Core of the discrete-event engine: environment, events, processes.

The design mirrors the well-known generator-coroutine DES pattern:

* :class:`Event` — a one-shot occurrence with callbacks and a value.
* :class:`Timeout` — an event scheduled at ``now + delay``.
* :class:`Process` — wraps a generator; each yielded event suspends the
  generator until the event succeeds (or fails, in which case the
  exception is thrown into the generator).
* :class:`Environment` — the scheduler: a heap of ``(time, tiebreak,
  event)`` entries processed in order.

The engine is single-threaded and fully deterministic: two runs with the
same seed and process structure produce identical schedules.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError, StopSimulation

#: Sentinel priority classes: urgent events (process resumption bookkeeping)
#: fire before normal events scheduled at the same instant.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot event that may succeed with a value or fail with an error.

    Callbacks receive the event itself once it is processed by the
    environment.  Events are single-use: triggering twice is an error.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._defused = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None  # type: ignore[return-value]

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with *exception*."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True


class Timeout(Event):
    """An event that fires *delay* simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal event used to start a process at the current instant."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        env._schedule(self, URGENT)


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """Wraps a generator, resuming it as the events it yields fire.

    The process itself is an event: it triggers when the generator
    returns (success, with the return value) or raises (failure).
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        # Detach from whatever the process was waiting on so the original
        # event no longer resumes it; events that support cancellation
        # (store gets/puts, resource requests) also leave their queues so
        # they cannot consume items/slots nobody is waiting for.
        waiting = self._waiting_on
        if waiting is not None and waiting.callbacks is not None:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
            cancel = getattr(waiting, "cancel", None)
            if cancel is not None:
                cancel()
            self._waiting_on = None
        self.env._schedule(event, URGENT)

    # -- internal ---------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                event._defused = True
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded a non-event: {target!r}"
            )
        if target.processed:
            # Already-processed event: resume immediately at this instant.
            immediate = Event(self.env)
            immediate._ok = target._ok
            immediate._value = target._value
            immediate._defused = True
            immediate.callbacks.append(self._resume)
            self.env._schedule(immediate, URGENT)
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Condition(Event):
    """Succeeds when all of the given events have succeeded (``all_of``)."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self._events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self._events])


class AnyOf(Event):
    """Succeeds when the first of the given events succeeds (``any_of``)."""

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            self.succeed(None)
            return
        for event in self._events:
            if event.processed:
                self._on_child(event)
                break
            event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(event)


class Environment:
    """The DES scheduler: an event heap ordered by (time, priority, seq)."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between resumptions)."""
        return self._active_process

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing after *delay* simulated seconds."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        """Register *generator* as a new process starting now."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Condition:
        """Event that succeeds when every event in *events* has succeeded."""
        return Condition(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that succeeds when the first event in *events* succeeds."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def _step(self) -> None:
        when, _priority, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, None  # type: ignore[assignment]
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            raise event._value

    def run(self, until: float | Event | None = None) -> Any:
        """Process events until the heap drains, *until* time, or event.

        * ``until=None`` — run until no events remain.
        * ``until=<float>`` — run until simulated time reaches the value.
        * ``until=<Event>`` — run until that event is processed; its value
          is returned (its failure is raised).
        """
        stop_event: Optional[Event] = None
        horizon: Optional[float] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value

            def _halt(_event: Event) -> None:
                raise StopSimulation()

            stop_event.callbacks.append(_halt)
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"run(until={horizon}) is in the past (now={self._now})"
                )

        try:
            while self._heap:
                if horizon is not None and self._heap[0][0] > horizon:
                    self._now = horizon
                    return None
                self._step()
        except StopSimulation:
            assert stop_event is not None
            if stop_event._ok:
                return stop_event._value
            stop_event._defused = True
            raise stop_event._value from None
        if horizon is not None:
            self._now = horizon
        if stop_event is not None and not stop_event.triggered:
            raise SimulationError(
                "run() ran out of events before the until-event triggered"
            )
        return stop_event._value if stop_event is not None else None

    def peek(self) -> float:
        """Time of the next scheduled event (inf if none)."""
        return self._heap[0][0] if self._heap else float("inf")
