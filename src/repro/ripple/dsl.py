"""A small text DSL for If-Trigger-Then-Action rules.

The paper describes users "programming" their storage with simple
If-Trigger-Then-Action statements; this module gives that a concrete,
file-friendly syntax so rules can live in plain config files:

    # checksum new images on the lab machine
    WHEN created OF *.tiff UNDER /data/instrument ON lab
    THEN command ON lab WITH command=checksum dst={dir}/{stem}.sha

    WHEN created,moved OF * UNDER /inbox ON laptop
    THEN email ON laptop WITH to=pi@lab subject="arrived {name}"

Grammar (one rule = a WHEN line followed by a THEN line; ``#`` starts a
comment; blank lines separate rules):

    WHEN <event>[,<event>...] OF <glob> UNDER <path> ON <agent> [DIRS]
    THEN <action-type> ON <agent> [WITH key=value ...]

Values with spaces use double quotes.  ``DIRS`` lets directory events
match (files-only is the default, as in :class:`Trigger`).
"""

from __future__ import annotations

import shlex

from repro.core.events import EventType
from repro.errors import RuleValidationError
from repro.ripple.rules import Action, Rule, Trigger

_EVENT_NAMES = {e.value: e for e in EventType}


def _parse_when(tokens: list[str], line: str) -> Trigger:
    # WHEN <events> OF <glob> UNDER <path> ON <agent> [DIRS]
    try:
        assert tokens[0].upper() == "WHEN"
        events_token = tokens[1]
        assert tokens[2].upper() == "OF"
        pattern = tokens[3]
        assert tokens[4].upper() == "UNDER"
        prefix = tokens[5]
        assert tokens[6].upper() == "ON"
        agent_id = tokens[7]
        rest = [t.upper() for t in tokens[8:]]
    except (IndexError, AssertionError):
        raise RuleValidationError(f"malformed WHEN clause: {line!r}") from None
    include_dirs = "DIRS" in rest
    if rest and set(rest) - {"DIRS"}:
        raise RuleValidationError(
            f"unexpected tokens after WHEN clause: {line!r}"
        )
    event_types = set()
    for name in events_token.split(","):
        event = _EVENT_NAMES.get(name.strip().lower())
        if event is None:
            raise RuleValidationError(
                f"unknown event type {name!r}; "
                f"known: {sorted(_EVENT_NAMES)}"
            )
        event_types.add(event)
    return Trigger(
        agent_id=agent_id,
        path_prefix=prefix,
        event_types=frozenset(event_types),
        name_pattern=pattern,
        include_directories=include_dirs,
    )


def _parse_then(tokens: list[str], line: str) -> Action:
    # THEN <type> ON <agent> [WITH k=v ...]
    try:
        assert tokens[0].upper() == "THEN"
        action_type = tokens[1]
        assert tokens[2].upper() == "ON"
        agent_id = tokens[3]
    except (IndexError, AssertionError):
        raise RuleValidationError(f"malformed THEN clause: {line!r}") from None
    parameters = {}
    rest = tokens[4:]
    if rest:
        if rest[0].upper() != "WITH":
            raise RuleValidationError(
                f"expected WITH before parameters: {line!r}"
            )
        for pair in rest[1:]:
            if "=" not in pair:
                raise RuleValidationError(
                    f"parameter must be key=value, got {pair!r} in {line!r}"
                )
            key, value = pair.split("=", 1)
            parameters[key] = value
    return Action(action_type, agent_id, parameters)


def parse_rule(text: str, name: str = "", owner: str = "anonymous") -> Rule:
    """Parse one WHEN/THEN rule from *text*.

    >>> rule = parse_rule('''
    ...     WHEN created OF *.csv UNDER /in ON dev
    ...     THEN email ON dev WITH to=pi@lab
    ... ''')
    >>> rule.action.action_type
    'email'
    """
    lines = [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]
    if len(lines) != 2:
        raise RuleValidationError(
            f"a rule is exactly one WHEN line and one THEN line; "
            f"got {len(lines)} lines"
        )
    trigger = _parse_when(shlex.split(lines[0]), lines[0])
    action = _parse_then(shlex.split(lines[1]), lines[1])
    return Rule(trigger=trigger, action=action, name=name, owner=owner)


def parse_rules(text: str, owner: str = "anonymous") -> list[Rule]:
    """Parse a rules file: WHEN/THEN pairs separated by blank lines.

    A comment line directly above a WHEN becomes the rule's name.
    """
    rules = []
    pending_name = ""
    buffer: list[str] = []
    for raw in text.splitlines() + [""]:
        line = raw.strip()
        if line.startswith("#"):
            pending_name = line.lstrip("# ").strip()
            continue
        if not line:
            if buffer:
                rules.append(
                    parse_rule("\n".join(buffer), name=pending_name,
                               owner=owner)
                )
                buffer = []
                pending_name = ""
            continue
        buffer.append(line)
    return rules


def install_rules(service, text: str, owner: str = "anonymous") -> list[Rule]:
    """Parse *text* and register every rule on *service*."""
    installed = []
    for rule in parse_rules(text, owner=owner):
        installed.append(
            service.add_rule(rule.trigger, rule.action, name=rule.name,
                             owner=owner)
        )
    return installed


def format_rule(rule: Rule) -> str:
    """Render *rule* back into DSL text (inverse of :func:`parse_rule`)."""
    events = ",".join(sorted(e.value for e in rule.trigger.event_types))
    when = (
        f"WHEN {events} OF {rule.trigger.name_pattern} "
        f"UNDER {rule.trigger.path_prefix} ON {rule.trigger.agent_id}"
    )
    if rule.trigger.include_directories:
        when += " DIRS"
    then = f"THEN {rule.action.action_type} ON {rule.action.agent_id}"
    if rule.action.parameters:
        pairs = []
        for key, value in rule.action.parameters.items():
            value_text = str(value)
            if " " in value_text:
                value_text = f'"{value_text}"'
            pairs.append(f"{key}={value_text}")
        then += " WITH " + " ".join(pairs)
    lines = []
    if rule.name:
        lines.append(f"# {rule.name}")
    lines.extend([when, then])
    return "\n".join(lines)
