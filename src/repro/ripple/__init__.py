"""Ripple: the SDCI implementation (agents + cloud service + rules).

Ripple lets users express data-management policies as
*If-Trigger-Then-Action* rules (paper §3).  Agents deployed on storage
resources detect events (via watchdog on personal devices, via the
Lustre monitor on parallel filesystems), filter them against active
rules, and report matches to the cloud service; the service evaluates
rules reliably (SQS queue + Lambda workers + cleanup sweeper) and routes
actions back to agents for execution (transfers, emails, containers,
local commands).  Rule chains form pipelines: one rule's action emits
events that trigger the next rule.
"""

from repro.ripple.rules import Action, Rule, RuleSet, Trigger
from repro.ripple.index import (
    BucketProgram,
    CompiledTrigger,
    RuleIndex,
    eval_pressure,
)
from repro.ripple.actions import (
    ActionRequest,
    ActionResult,
    ExecutorRegistry,
    default_registry,
)
from repro.ripple.agent import RippleAgent
from repro.ripple.dsl import format_rule, install_rules, parse_rule, parse_rules
from repro.ripple.pipelines import PipelineBuilder, PipelineStage
from repro.ripple.service import RippleService, ServiceConfig

__all__ = [
    "Trigger",
    "Action",
    "Rule",
    "RuleSet",
    "RuleIndex",
    "BucketProgram",
    "CompiledTrigger",
    "eval_pressure",
    "ActionRequest",
    "ActionResult",
    "ExecutorRegistry",
    "default_registry",
    "RippleAgent",
    "RippleService",
    "ServiceConfig",
    "PipelineBuilder",
    "PipelineStage",
    "parse_rule",
    "parse_rules",
    "install_rules",
    "format_rule",
]
