"""The Ripple cloud service: reliable rule evaluation and action routing.

Paper §3: "A scalable cloud service processes events and orchestrates
the execution of actions.  Ripple emphasizes reliability ... Once an
event is reported it is immediately placed in a reliable SQS queue.
Serverless Lambda functions act on entries in this queue and remove them
once successfully processed.  A cleanup function periodically iterates
through the queue and initiates additional processing for events that
were unsuccessfully processed."

This module wires those pieces over :mod:`repro.cloudq`:

* :meth:`RippleService.report_event` → immediate enqueue (with optional
  fault injection to exercise agent-side report retries);
* a :class:`~repro.cloudq.ServerlessExecutor` evaluates queued events
  against the authoritative rule set and routes actions to agents;
* failed actions are retried up to a bound, then parked in
  ``failed_actions``;
* a :class:`~repro.cloudq.CleanupFunction` re-drives stalled entries.

Live mode is a :class:`~repro.runtime.Supervisor` composition: the
executor and the cleanup sweeper are supervised children sharing one
metrics registry, restarted if they crash, with uniform health via
:meth:`RippleService.health`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.cloudq import CleanupFunction, QueueService, ServerlessExecutor
from repro.core.events import FileEvent
from repro.errors import AgentNotFound, RippleError
from repro.metrics.registry import MetricsRegistry
from repro.ripple.actions import ActionRequest, ActionResult
from repro.ripple.agent import RippleAgent
from repro.ripple.rules import Action, Rule, RuleSet, Trigger
from repro.runtime import RestartPolicy, Supervisor
from repro.util.clock import Clock, WallClock
from repro.util.logging import get_logger


@dataclass(frozen=True)
class ServiceConfig:
    """Cloud-service knobs."""

    queue_name: str = "ripple-events"
    visibility_timeout: float = 30.0
    max_event_receives: int = 5
    lambda_concurrency: int = 2
    lambda_batch_size: int = 10
    max_action_attempts: int = 3
    cleanup_stall_threshold: float = 5.0
    cleanup_period: float = 10.0
    #: How crashed cloud-side services are restarted.
    restart_policy: RestartPolicy = field(default_factory=RestartPolicy)
    #: How often the supervisor sweeps for crashed children (seconds).
    supervise_interval: float = 0.01


class RippleService:
    """The cloud half of Ripple."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        clock: Clock | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.clock = clock or WallClock()
        #: One registry shared by the service and its supervised workers.
        self.registry = registry or MetricsRegistry()
        self.metrics = self.registry.scoped("service")
        self.queues = QueueService(clock=self.clock)
        self.event_queue = self.queues.create_queue(
            self.config.queue_name,
            visibility_timeout=self.config.visibility_timeout,
            max_receives=self.config.max_event_receives,
            with_dead_letter=True,
        )
        self.supervisor = Supervisor(
            "ripple",
            policy=self.config.restart_policy,
            registry=self.registry,
            poll_interval=self.config.supervise_interval,
        )
        self.executor = ServerlessExecutor(
            self.event_queue,
            self._process_event_entry,
            concurrency=self.config.lambda_concurrency,
            batch_size=self.config.lambda_batch_size,
            registry=self.registry,
        )
        self.cleanup = CleanupFunction(
            self.event_queue,
            stall_threshold=self.config.cleanup_stall_threshold,
            period=self.config.cleanup_period,
            registry=self.registry,
        )
        self.supervisor.add_child(self.executor)
        self.supervisor.add_child(self.cleanup)
        self.rules = RuleSet()
        self.agents: Dict[str, RippleAgent] = {}
        #: Simulated email outbox (email actions append here).
        self.outbox: list[dict[str, Any]] = []
        #: Completed action results, newest last.
        self.results: list[ActionResult] = []
        #: Actions that exhausted their retry budget.
        self.failed_actions: list[tuple[ActionRequest, ActionResult]] = []
        #: Optional fault hooks (tests): raise/True to simulate failures.
        self.report_fault: Optional[Callable[[str, FileEvent], bool]] = None
        self.dispatch_fault: Optional[Callable[[ActionRequest], bool]] = None
        # Counters (registry-backed; see the properties below).
        self._log = get_logger("ripple.service")
        self._events_accepted = self.metrics.counter("events_accepted")
        self._events_processed = self.metrics.counter("events_processed")
        self._actions_dispatched = self.metrics.counter("actions_dispatched")
        self._actions_retried = self.metrics.counter("actions_retried")
        self.metrics.gauge_fn(
            "queue_depth", lambda: self.event_queue.visible_depth
        )

    # -- counters (old attribute names kept readable) -------------------

    @property
    def events_accepted(self) -> int:
        return self._events_accepted.value

    @property
    def events_processed(self) -> int:
        return self._events_processed.value

    @property
    def actions_dispatched(self) -> int:
        return self._actions_dispatched.value

    @property
    def actions_retried(self) -> int:
        return self._actions_retried.value

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register_agent(self, agent: RippleAgent) -> None:
        """Connect *agent* to this service and push its current rules."""
        if agent.agent_id in self.agents:
            raise RippleError(f"duplicate agent id {agent.agent_id!r}")
        self.agents[agent.agent_id] = agent
        agent.service = self
        agent.set_rules(self.rules.for_agent(agent.agent_id))

    def agent(self, agent_id: str) -> RippleAgent:
        """Look up a registered agent."""
        agent = self.agents.get(agent_id)
        if agent is None:
            raise AgentNotFound(f"no agent registered as {agent_id!r}")
        return agent

    def add_rule(
        self,
        trigger: Trigger,
        action: Action,
        name: str = "",
        owner: str = "anonymous",
    ) -> Rule:
        """Register a rule and distribute it to the triggering agent."""
        rule = self.rules.add(Rule(trigger=trigger, action=action, name=name, owner=owner))
        watching_agent = self.agents.get(trigger.agent_id)
        if watching_agent is not None:
            watching_agent.set_rules(self.rules.for_agent(trigger.agent_id))
        return rule

    def export_rules(self) -> str:
        """Render every registered rule in the WHEN/THEN DSL.

        The output round-trips through
        :func:`repro.ripple.dsl.install_rules`, so a service's policy
        set can be dumped, versioned and re-applied elsewhere.
        """
        from repro.ripple.dsl import format_rule

        return "\n\n".join(format_rule(rule) for rule in self.rules) + (
            "\n" if len(self.rules) else ""
        )

    def remove_rule(self, rule_id: int) -> None:
        """Delete a rule and refresh the affected agent's filter set."""
        rule = self.rules.get(rule_id)
        self.rules.remove(rule_id)
        watching_agent = self.agents.get(rule.trigger.agent_id)
        if watching_agent is not None:
            watching_agent.set_rules(self.rules.for_agent(rule.trigger.agent_id))

    def set_rule_enabled(self, rule_id: int, enabled: bool) -> Rule:
        """Enable/disable a rule and refresh the affected agent.

        Goes through :meth:`RuleSet.set_enabled` (not direct attribute
        assignment) so the service's compiled index stays consistent,
        then re-pushes the agent's rule slice so its local index and
        filesystem watchers pick up the change.
        """
        rule = self.rules.set_enabled(rule_id, enabled)
        watching_agent = self.agents.get(rule.trigger.agent_id)
        if watching_agent is not None:
            watching_agent.set_rules(self.rules.for_agent(rule.trigger.agent_id))
        return rule

    # ------------------------------------------------------------------
    # Event intake (called by agents)
    # ------------------------------------------------------------------

    def report_event(
        self, agent_id: str, event: FileEvent, rule_ids: list[int]
    ) -> None:
        """Accept an event report; immediately enqueue it.

        Raises (simulating a transient network/service failure) when the
        ``report_fault`` hook fires — the agent retries.
        """
        if self.report_fault is not None and self.report_fault(agent_id, event):
            raise RippleError("injected report failure")
        self.event_queue.send(
            {"agent_id": agent_id, "event": event.to_dict(), "rule_ids": rule_ids}
        )
        self._events_accepted.inc()

    # ------------------------------------------------------------------
    # Lambda handler: evaluate + route
    # ------------------------------------------------------------------

    def _process_event_entry(self, entry: dict[str, Any]) -> None:
        event = FileEvent.from_dict(entry["event"])
        agent_id = entry["agent_id"]
        # Authoritative evaluation: the agent pre-filters, the service
        # re-evaluates against the current rule set (rules may have
        # changed between detection and processing).
        matching = self.rules.matching(agent_id, event)
        for rule in matching:
            request = ActionRequest(
                action_type=rule.action.action_type,
                agent_id=rule.action.agent_id,
                parameters=dict(rule.action.parameters),
                event=event,
                rule_id=rule.rule_id,
            )
            self._dispatch(request)
        self._events_processed.inc()

    def _dispatch(self, request: ActionRequest) -> None:
        if self.dispatch_fault is not None and self.dispatch_fault(request):
            raise RippleError("injected dispatch failure")
        target = self.agents.get(request.agent_id)
        if target is None:
            raise AgentNotFound(
                f"action routed to unknown agent {request.agent_id!r}"
            )
        target.enqueue_action(request)
        self._actions_dispatched.inc()

    # ------------------------------------------------------------------
    # Results and retries (called by agents)
    # ------------------------------------------------------------------

    def record_result(self, request: ActionRequest, result: ActionResult) -> None:
        """Record an action outcome; retry failures within the budget."""
        self.results.append(result)
        if result.success:
            return
        if request.attempts < self.config.max_action_attempts:
            self._actions_retried.inc()
            target = self.agents.get(request.agent_id)
            if target is not None:
                target.enqueue_action(request)
            return
        self._log.warning(
            "action %s (rule %d) failed permanently after %d attempts: %s",
            request.action_type, request.rule_id, request.attempts,
            result.detail,
        )
        self.failed_actions.append((request, result))

    # ------------------------------------------------------------------
    # Transfer routing (used by the transfer executor)
    # ------------------------------------------------------------------

    def deliver_file(self, agent_id: str, path: str, data: bytes) -> None:
        """Write *data* to *path* on the destination agent's filesystem."""
        self.agent(agent_id).write_file(path, data)

    # ------------------------------------------------------------------
    # Deterministic stepping / live operation
    # ------------------------------------------------------------------

    def step(self) -> int:
        """One synchronous processing round.

        Drains agent detection queues, processes one Lambda batch round
        and executes every routed action.  Returns the number of queue
        entries processed this round.
        """
        for agent in self.agents.values():
            agent.drain_detection()
        processed = self.executor.poll_once()
        for agent in self.agents.values():
            agent.execute_pending()
        return processed

    def run_until_quiet(self, max_rounds: int = 1000) -> int:
        """Step until no work remains (event queue empty, inboxes empty).

        Rule chains (pipelines) keep generating new events; this loops
        until the whole cascade settles.  Returns total entries processed.
        """
        total = 0
        for _ in range(max_rounds):
            processed = self.step()
            total += processed
            pending_actions = any(agent.inbox for agent in self.agents.values())
            if (
                processed == 0
                and not pending_actions
                and self.event_queue.visible_depth == 0
            ):
                # One more detection sweep in case actions created files.
                for agent in self.agents.values():
                    agent.drain_detection()
                if self.event_queue.visible_depth == 0:
                    break
        return total

    def start(self) -> None:
        """Start the supervised Lambda workers and cleanup sweeper."""
        self.supervisor.start()

    def stop(self) -> None:
        """Stop the supervision tree (workers flush, then stop)."""
        self.supervisor.stop()

    def shutdown(self) -> None:
        """Stop and release every supervised child."""
        self.supervisor.close()

    def health(self) -> dict:
        """Uniform per-service health for the cloud-side tree."""
        return self.supervisor.health()

    def stats(self) -> dict[str, Any]:
        """Service counters plus per-child health, from the registry."""
        return {
            **self.metrics.snapshot(),
            "services": self.supervisor.health()["services"],
        }
