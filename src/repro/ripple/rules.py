"""If-Trigger-Then-Action rules.

A :class:`Rule` pairs a :class:`Trigger` (the conditions under which the
action fires: monitored path, event types, filename pattern) with an
:class:`Action` (what to execute, on which agent, with what parameters).
The paper's example: "when an image file is created in a specific
directory of their laptop ... automatically analyzed and the results
replicated to their personal device".
"""

from __future__ import annotations

import fnmatch
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.events import EventType, FileEvent
from repro.errors import RuleValidationError
from repro.util.paths import normalize

#: Action types the stock executor registry understands.
KNOWN_ACTION_TYPES = frozenset(
    {"transfer", "email", "container", "command", "callable"}
)


@dataclass(frozen=True)
class Trigger:
    """The *If/Trigger* half of a rule.

    Parameters
    ----------
    agent_id:
        The agent whose events this trigger watches.
    path_prefix:
        Only events under this directory match.
    event_types:
        Normalized event kinds that match (default: created only, the
        most common data-ingestion trigger).
    name_pattern:
        ``fnmatch`` glob applied to the file name (e.g. ``*.tiff``).
    include_directories:
        Whether directory events can match (default files only).
    """

    agent_id: str
    path_prefix: str
    event_types: frozenset[EventType] = frozenset({EventType.CREATED})
    name_pattern: str = "*"
    include_directories: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "path_prefix", normalize(self.path_prefix))
        if not self.agent_id:
            raise RuleValidationError("trigger needs an agent_id")
        if not self.event_types:
            raise RuleValidationError("trigger needs at least one event type")

    def matches(self, event: FileEvent) -> bool:
        """True when *event* satisfies every trigger condition."""
        if event.event_type not in self.event_types:
            return False
        if event.is_dir and not self.include_directories:
            return False
        if not event.matches_prefix(self.path_prefix):
            return False
        name = event.name or (event.path or "").rsplit("/", 1)[-1]
        return fnmatch.fnmatch(name, self.name_pattern)


@dataclass(frozen=True)
class Action:
    """The *Then/Action* half of a rule.

    ``action_type`` selects the executor (transfer, email, container,
    command, callable); ``agent_id`` is the agent that runs it (actions
    are routed — the triggering agent and the executing agent may
    differ); ``parameters`` are executor-specific.
    """

    action_type: str
    agent_id: str
    parameters: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.action_type not in KNOWN_ACTION_TYPES:
            raise RuleValidationError(
                f"unknown action type {self.action_type!r}; "
                f"known: {sorted(KNOWN_ACTION_TYPES)}"
            )
        if not self.agent_id:
            raise RuleValidationError("action needs an agent_id")


_rule_ids = itertools.count(1)


@dataclass
class Rule:
    """A complete If-Trigger-Then-Action rule."""

    trigger: Trigger
    action: Action
    name: str = ""
    owner: str = "anonymous"
    enabled: bool = True
    rule_id: int = field(default_factory=lambda: next(_rule_ids))

    def matches(self, event: FileEvent) -> bool:
        """True when this rule should fire for *event*."""
        return self.enabled and self.trigger.matches(event)

    def describe(self) -> str:
        """One-line human description (for logs and UIs)."""
        types = "/".join(sorted(t.value for t in self.trigger.event_types))
        return (
            f"rule {self.rule_id} ({self.name or 'unnamed'}): "
            f"IF {types} of {self.trigger.name_pattern!r} under "
            f"{self.trigger.path_prefix} on {self.trigger.agent_id} "
            f"THEN {self.action.action_type} on {self.action.agent_id}"
        )


class RuleSet:
    """An indexed collection of rules, filterable by agent and event.

    Rules are indexed by the trigger's agent so agents receive only the
    rules relevant to them (the paper: "Ripple rules are distributed to
    agents to inform the event filtering process").  Per-agent
    :class:`~repro.ripple.index.RuleIndex` compilations back
    :meth:`matching`, so one event costs a trie walk plus its candidate
    evaluations instead of a sweep over the agent's whole rule list;
    the indexes are maintained incrementally on add/remove/
    :meth:`set_enabled`.
    """

    def __init__(self) -> None:
        self._rules: dict[int, Rule] = {}
        self._by_agent: dict[str, list[int]] = {}
        #: Lazily-compiled per-agent matching indexes.
        self._indexes: dict[str, "RuleIndex"] = {}
        #: Insertion-order stamps: a rule disabled and later re-enabled
        #: keeps its original position in matching results.
        self._order: dict[int, int] = {}
        self._next_order = 0
        #: Op counter for :meth:`matching_linear` (benchmark comparisons).
        self.linear_rules_evaluated = 0

    def add(self, rule: Rule) -> Rule:
        """Register *rule*; returns it (with its id)."""
        if rule.rule_id in self._rules:
            raise RuleValidationError(f"duplicate rule id {rule.rule_id}")
        self._rules[rule.rule_id] = rule
        self._by_agent.setdefault(rule.trigger.agent_id, []).append(rule.rule_id)
        self._order[rule.rule_id] = self._next_order
        self._next_order += 1
        index = self._indexes.get(rule.trigger.agent_id)
        if index is not None:
            index.add(rule, order=self._order[rule.rule_id])
        return rule

    def remove(self, rule_id: int) -> None:
        """Delete the rule with *rule_id* (unknown ids are an error)."""
        rule = self._rules.pop(rule_id, None)
        if rule is None:
            raise RuleValidationError(f"no rule with id {rule_id}")
        agent_id = rule.trigger.agent_id
        bucket = self._by_agent[agent_id]
        bucket.remove(rule_id)
        if not bucket:
            # Leaving the emptied list behind would leak one dict entry
            # per agent ever referenced, forever, under rule churn.
            del self._by_agent[agent_id]
            self._indexes.pop(agent_id, None)
        self._order.pop(rule_id, None)
        index = self._indexes.get(agent_id)
        if index is not None:
            index.remove(rule)

    def set_enabled(self, rule_id: int, enabled: bool) -> Rule:
        """Enable/disable a rule, keeping the matching index current.

        This is the supported way to flip ``Rule.enabled`` on a rule
        that lives in a set: assigning the attribute directly bypasses
        the compiled index (a directly-disabled rule is still correctly
        rejected at evaluation time, but a directly-enabled one is not
        discovered until the set is rebuilt).
        """
        rule = self.get(rule_id)
        if rule.enabled == enabled:
            return rule
        rule.enabled = enabled
        index = self._indexes.get(rule.trigger.agent_id)
        if index is not None:
            index.set_enabled(rule, order=self._order.get(rule_id))
        return rule

    def get(self, rule_id: int) -> Rule:
        """The rule with *rule_id*."""
        try:
            return self._rules[rule_id]
        except KeyError:
            raise RuleValidationError(f"no rule with id {rule_id}") from None

    def for_agent(self, agent_id: str) -> list[Rule]:
        """Rules whose trigger watches *agent_id* (the agent's filter set)."""
        return [self._rules[rid] for rid in self._by_agent.get(agent_id, [])]

    def index_for(self, agent_id: str) -> "RuleIndex":
        """The compiled matching index for *agent_id* (built on demand)."""
        index = self._indexes.get(agent_id)
        if index is None:
            from repro.ripple.index import RuleIndex

            index = RuleIndex()
            for rid in self._by_agent.get(agent_id, []):
                index.add(self._rules[rid], order=self._order[rid])
            self._indexes[agent_id] = index
        return index

    def matching(self, agent_id: str, event: FileEvent) -> list[Rule]:
        """Rules on *agent_id* that fire for *event* (compiled path)."""
        if agent_id not in self._by_agent:
            return []
        return self.index_for(agent_id).matching(event)

    def matching_linear(self, agent_id: str, event: FileEvent) -> list[Rule]:
        """The reference linear sweep :meth:`matching` must agree with.

        Kept for the equivalence property test and the indexed-vs-linear
        ablation benchmark; ``linear_rules_evaluated`` counts the full
        evaluations it pays (one per installed rule per event).
        """
        rules = self.for_agent(agent_id)
        self.linear_rules_evaluated += len(rules)
        return [rule for rule in rules if rule.matches(event)]

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(list(self._rules.values()))

    def watched_prefixes(self, agent_id: str) -> list[str]:
        """Distinct path prefixes the agent must monitor (watcher setup).

        Disabled rules are excluded: a watcher (or Lustre subscription)
        for a rule that can never fire is pure overhead.
        """
        prefixes = {
            rule.trigger.path_prefix
            for rule in self.for_agent(agent_id)
            if rule.enabled
        }
        return sorted(prefixes)
