"""If-Trigger-Then-Action rules.

A :class:`Rule` pairs a :class:`Trigger` (the conditions under which the
action fires: monitored path, event types, filename pattern) with an
:class:`Action` (what to execute, on which agent, with what parameters).
The paper's example: "when an image file is created in a specific
directory of their laptop ... automatically analyzed and the results
replicated to their personal device".
"""

from __future__ import annotations

import fnmatch
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.events import EventType, FileEvent
from repro.errors import RuleValidationError
from repro.util.paths import normalize

#: Action types the stock executor registry understands.
KNOWN_ACTION_TYPES = frozenset(
    {"transfer", "email", "container", "command", "callable"}
)


@dataclass(frozen=True)
class Trigger:
    """The *If/Trigger* half of a rule.

    Parameters
    ----------
    agent_id:
        The agent whose events this trigger watches.
    path_prefix:
        Only events under this directory match.
    event_types:
        Normalized event kinds that match (default: created only, the
        most common data-ingestion trigger).
    name_pattern:
        ``fnmatch`` glob applied to the file name (e.g. ``*.tiff``).
    include_directories:
        Whether directory events can match (default files only).
    """

    agent_id: str
    path_prefix: str
    event_types: frozenset[EventType] = frozenset({EventType.CREATED})
    name_pattern: str = "*"
    include_directories: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "path_prefix", normalize(self.path_prefix))
        if not self.agent_id:
            raise RuleValidationError("trigger needs an agent_id")
        if not self.event_types:
            raise RuleValidationError("trigger needs at least one event type")

    def matches(self, event: FileEvent) -> bool:
        """True when *event* satisfies every trigger condition."""
        if event.event_type not in self.event_types:
            return False
        if event.is_dir and not self.include_directories:
            return False
        if not event.matches_prefix(self.path_prefix):
            return False
        name = event.name or (event.path or "").rsplit("/", 1)[-1]
        return fnmatch.fnmatch(name, self.name_pattern)


@dataclass(frozen=True)
class Action:
    """The *Then/Action* half of a rule.

    ``action_type`` selects the executor (transfer, email, container,
    command, callable); ``agent_id`` is the agent that runs it (actions
    are routed — the triggering agent and the executing agent may
    differ); ``parameters`` are executor-specific.
    """

    action_type: str
    agent_id: str
    parameters: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.action_type not in KNOWN_ACTION_TYPES:
            raise RuleValidationError(
                f"unknown action type {self.action_type!r}; "
                f"known: {sorted(KNOWN_ACTION_TYPES)}"
            )
        if not self.agent_id:
            raise RuleValidationError("action needs an agent_id")


_rule_ids = itertools.count(1)


@dataclass
class Rule:
    """A complete If-Trigger-Then-Action rule."""

    trigger: Trigger
    action: Action
    name: str = ""
    owner: str = "anonymous"
    enabled: bool = True
    rule_id: int = field(default_factory=lambda: next(_rule_ids))

    def matches(self, event: FileEvent) -> bool:
        """True when this rule should fire for *event*."""
        return self.enabled and self.trigger.matches(event)

    def describe(self) -> str:
        """One-line human description (for logs and UIs)."""
        types = "/".join(sorted(t.value for t in self.trigger.event_types))
        return (
            f"rule {self.rule_id} ({self.name or 'unnamed'}): "
            f"IF {types} of {self.trigger.name_pattern!r} under "
            f"{self.trigger.path_prefix} on {self.trigger.agent_id} "
            f"THEN {self.action.action_type} on {self.action.agent_id}"
        )


class RuleSet:
    """An indexed collection of rules, filterable by agent and event.

    Rules are indexed by the trigger's agent so agents receive only the
    rules relevant to them (the paper: "Ripple rules are distributed to
    agents to inform the event filtering process").
    """

    def __init__(self) -> None:
        self._rules: dict[int, Rule] = {}
        self._by_agent: dict[str, list[int]] = {}

    def add(self, rule: Rule) -> Rule:
        """Register *rule*; returns it (with its id)."""
        if rule.rule_id in self._rules:
            raise RuleValidationError(f"duplicate rule id {rule.rule_id}")
        self._rules[rule.rule_id] = rule
        self._by_agent.setdefault(rule.trigger.agent_id, []).append(rule.rule_id)
        return rule

    def remove(self, rule_id: int) -> None:
        """Delete the rule with *rule_id* (unknown ids are an error)."""
        rule = self._rules.pop(rule_id, None)
        if rule is None:
            raise RuleValidationError(f"no rule with id {rule_id}")
        self._by_agent[rule.trigger.agent_id].remove(rule_id)

    def get(self, rule_id: int) -> Rule:
        """The rule with *rule_id*."""
        try:
            return self._rules[rule_id]
        except KeyError:
            raise RuleValidationError(f"no rule with id {rule_id}") from None

    def for_agent(self, agent_id: str) -> list[Rule]:
        """Rules whose trigger watches *agent_id* (the agent's filter set)."""
        return [self._rules[rid] for rid in self._by_agent.get(agent_id, [])]

    def matching(self, agent_id: str, event: FileEvent) -> list[Rule]:
        """Rules on *agent_id* that fire for *event*."""
        return [rule for rule in self.for_agent(agent_id) if rule.matches(event)]

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(list(self._rules.values()))

    def watched_prefixes(self, agent_id: str) -> list[str]:
        """Distinct path prefixes the agent must monitor (watcher setup)."""
        prefixes = {rule.trigger.path_prefix for rule in self.for_agent(agent_id)}
        return sorted(prefixes)
