"""The Ripple agent: event detection, rule filtering, action execution.

An agent is deployed per storage resource (paper §3).  It has three
responsibilities:

1. **Detect** events — on personal devices via the watchdog observer
   (:meth:`attach_local_filesystem`), on Lustre via a monitor
   subscription (:meth:`attach_lustre_monitor`).
2. **Filter** events against its active rules and **report** matches to
   the cloud service, retrying until the report is accepted ("agents
   repeatedly try to report events to the service").
3. **Execute** actions routed to it by the service (its execution
   component), against its local filesystem.

Filesystem access is abstracted so the same agent code runs over the
in-memory local filesystem and the Lustre model.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, TYPE_CHECKING

from repro.core.events import FileEvent
from repro.errors import RippleError
from repro.fs.memfs import MemoryFilesystem
from repro.fs.watchdog import FileSystemEvent, FileSystemEventHandler, Observer
from repro.lustre.filesystem import LustreFilesystem
from repro.ripple.actions import (
    ActionRequest,
    ActionResult,
    ExecutorRegistry,
    default_registry,
)
from repro.ripple.rules import Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ripple.service import RippleService


class _AgentHandler(FileSystemEventHandler):
    """Routes watchdog events into the agent's filter."""

    def __init__(self, agent: "RippleAgent") -> None:
        self.agent = agent

    def on_any_event(self, event: FileSystemEvent) -> None:
        if event.event_type == "overflow":
            self.agent.overflows += 1
            return
        self.agent.ingest_event(FileEvent.from_watchdog(event))


class RippleAgent:
    """One deployable Ripple agent."""

    def __init__(
        self,
        agent_id: str,
        filesystem: MemoryFilesystem | LustreFilesystem | None = None,
        executors: ExecutorRegistry | None = None,
        max_report_retries: int = 5,
    ) -> None:
        if not agent_id:
            raise RippleError("agent needs a non-empty id")
        self.agent_id = agent_id
        self.fs = filesystem if filesystem is not None else MemoryFilesystem()
        self.executors = executors or default_registry()
        self.max_report_retries = max_report_retries
        self.service: Optional["RippleService"] = None
        #: Optional action-rate limiter (a TokenBucket); when set,
        #: execute_pending() defers work once tokens run out instead of
        #: letting a rule storm starve the host.
        self.rate_limiter = None
        self.rules: list[Rule] = []
        self.observer: Optional[Observer] = None
        self._handler = _AgentHandler(self)
        self._scheduled_prefixes: set[str] = set()
        self._monitor_consumer = None
        self._storage_monitor = None
        #: Action requests routed to this agent, awaiting execution.
        self.inbox: Deque[ActionRequest] = deque()
        #: Named container images and callables available to actions.
        self.containers: Dict[str, Callable] = {}
        self.callables: Dict[str, Callable] = {}
        # Counters.
        self.events_seen = 0
        self.events_matched = 0
        self.events_reported = 0
        self.report_retries = 0
        self.reports_abandoned = 0
        self.actions_executed = 0
        self.action_failures = 0
        self.actions_deferred = 0
        self.overflows = 0

    # ------------------------------------------------------------------
    # Detection wiring
    # ------------------------------------------------------------------

    def attach_local_filesystem(self) -> Observer:
        """Start watchdog-style observation of the agent's local fs.

        Watchers are placed per rule prefix when rules arrive
        (:meth:`set_rules`); returns the Observer for lifecycle control.
        """
        if not isinstance(self.fs, MemoryFilesystem):
            raise RippleError(
                "watchdog observation requires a local MemoryFilesystem"
            )
        if self.observer is None:
            self.observer = Observer(self.fs)
        return self.observer

    def attach_lustre_monitor(self, monitor) -> None:
        """Subscribe this agent to a :class:`~repro.core.LustreMonitor`."""
        self._monitor_consumer = monitor.subscribe(
            lambda _seq, event: self.ingest_event(event),
            name=f"agent-{self.agent_id}",
        )

    def attach_storage_monitor(self, monitor) -> None:
        """Feed this agent from a :class:`~repro.core.StorageMonitor`.

        The facade delivers plain events (no sequence numbers); drain it
        via :meth:`drain_detection` like any other source.
        """
        monitor.subscribe(self.ingest_event)
        self._storage_monitor = monitor

    def drain_detection(self) -> None:
        """Deterministically deliver pending watchdog/monitor events."""
        if self.observer is not None:
            self.observer.drain()
        if self._monitor_consumer is not None:
            self._monitor_consumer.poll_once()
        if self._storage_monitor is not None:
            self._storage_monitor.drain()

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def set_rules(self, rules: list[Rule]) -> None:
        """Replace the active rule set (called by the service).

        For locally observed filesystems this also schedules watchers on
        each distinct rule prefix — "the agent employs Watchers on each
        directory relevant to a rule".
        """
        self.rules = list(rules)
        if self.observer is not None:
            prefixes = sorted({rule.trigger.path_prefix for rule in self.rules})
            for prefix in prefixes:
                already = any(
                    prefix == p or prefix.startswith(p.rstrip("/") + "/")
                    for p in self._scheduled_prefixes
                )
                if not already and self.fs.is_dir(prefix):
                    self.observer.schedule(self._handler, prefix, recursive=True)
                    self._scheduled_prefixes.add(prefix)

    # ------------------------------------------------------------------
    # Event filtering and reporting
    # ------------------------------------------------------------------

    def ingest_event(self, event: FileEvent) -> None:
        """Filter one detected event and report it if any rule matches."""
        self.events_seen += 1
        matched = [rule.rule_id for rule in self.rules if rule.matches(event)]
        if not matched:
            return
        self.events_matched += 1
        self._report_with_retry(event, matched)

    def _report_with_retry(self, event: FileEvent, rule_ids: list[int]) -> None:
        if self.service is None:
            raise RippleError(f"agent {self.agent_id} is not registered")
        for attempt in range(self.max_report_retries + 1):
            try:
                self.service.report_event(self.agent_id, event, rule_ids)
            except Exception:
                self.report_retries += 1
                continue
            self.events_reported += 1
            return
        self.reports_abandoned += 1

    # ------------------------------------------------------------------
    # Action execution
    # ------------------------------------------------------------------

    def enqueue_action(self, request: ActionRequest) -> None:
        """Accept a routed action request (called by the service)."""
        self.inbox.append(request)

    def execute_pending(self) -> list[ActionResult]:
        """Execute every queued action; report results to the service."""
        results: list[ActionResult] = []
        while self.inbox:
            if self.rate_limiter is not None and not self.rate_limiter.take():
                # Out of tokens: leave the rest queued for a later round.
                self.actions_deferred += 1
                break
            request = self.inbox.popleft()
            request.attempts += 1
            try:
                executor = self.executors.get(request.action_type)
                result = executor(request, self)
            except Exception as exc:
                self.action_failures += 1
                result = ActionResult(
                    request.request_id,
                    request.rule_id,
                    False,
                    detail=f"{type(exc).__name__}: {exc}",
                )
            else:
                self.actions_executed += 1
            results.append(result)
            if self.service is not None:
                self.service.record_result(request, result)
        return results

    # ------------------------------------------------------------------
    # Filesystem abstraction (used by executors)
    # ------------------------------------------------------------------

    def exists(self, path: str) -> bool:
        """True if *path* exists on the agent's filesystem."""
        return self.fs.exists(path)

    def read_file(self, path: str) -> bytes:
        """Read file content (Lustre files yield size-faithful zeros)."""
        if isinstance(self.fs, MemoryFilesystem):
            return self.fs.read(path)
        stat = self.fs.stat(path)
        return b"\x00" * stat.size

    def write_file(self, path: str, data: bytes) -> None:
        """Create/overwrite *path* with *data*, creating parents."""
        directory = path.rsplit("/", 1)[0] or "/"
        self.makedirs(directory)
        if isinstance(self.fs, MemoryFilesystem):
            self.fs.write(path, data)
        else:
            if not self.fs.exists(path):
                self.fs.create(path, size=len(data))
            else:
                self.fs.write(path, len(data))

    def delete_file(self, path: str) -> None:
        """Remove the file at *path*."""
        self.fs.unlink(path)

    def rename(self, src: str, dst: str) -> None:
        """Move *src* to *dst*."""
        self.fs.rename(src, dst)

    def makedirs(self, path: str) -> None:
        """Ensure directory *path* exists."""
        if path == "/":
            return
        if isinstance(self.fs, MemoryFilesystem):
            self.fs.makedirs(path, exist_ok=True)
        else:
            self.fs.makedirs(path)

    # ------------------------------------------------------------------
    # Extension points
    # ------------------------------------------------------------------

    def register_container(self, name: str, image: Callable) -> None:
        """Make container image *name* runnable by container actions."""
        self.containers[name] = image

    def register_callable(self, name: str, function: Callable) -> None:
        """Make *function* invokable by callable actions."""
        self.callables[name] = function
