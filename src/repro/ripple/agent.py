"""The Ripple agent: event detection, rule filtering, action execution.

An agent is deployed per storage resource (paper §3).  It has three
responsibilities:

1. **Detect** events — on personal devices via the watchdog observer
   (:meth:`attach_local_filesystem`), on Lustre via a monitor
   subscription (:meth:`attach_lustre_monitor`).
2. **Filter** events against its active rules and **report** matches to
   the cloud service, retrying until the report is accepted ("agents
   repeatedly try to report events to the service").
3. **Execute** actions routed to it by the service (its execution
   component), against its local filesystem.

Filesystem access is abstracted so the same agent code runs over the
in-memory local filesystem and the Lustre model.

The agent is a :class:`~repro.runtime.Service`: live mode runs one
``pump`` worker draining detection sources and executing routed
actions, and ``start()``/``stop()`` also manage the attached watchdog
observer.  Counters live in the agent's metrics registry; the old
attribute names (``events_reported`` etc.) remain readable properties.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, TYPE_CHECKING

from repro.core.events import FileEvent
from repro.errors import RippleError
from repro.fs.memfs import MemoryFilesystem
from repro.metrics.tracing import Tracer, make_tracer
from repro.fs.watchdog import FileSystemEvent, FileSystemEventHandler, Observer
from repro.lustre.filesystem import LustreFilesystem
from repro.ripple.actions import (
    ActionRequest,
    ActionResult,
    ExecutorRegistry,
    default_registry,
)
from repro.ripple.index import RuleIndex, eval_pressure
from repro.ripple.rules import Rule
from repro.runtime import Service, WorkerSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ripple.service import RippleService


class _AgentHandler(FileSystemEventHandler):
    """Routes watchdog events into the agent's filter."""

    def __init__(self, agent: "RippleAgent") -> None:
        self.agent = agent

    def on_any_event(self, event: FileSystemEvent) -> None:
        if event.event_type == "overflow":
            self.agent._overflows.inc()
            return
        self.agent.ingest_event(FileEvent.from_watchdog(event))


class RippleAgent(Service):
    """One deployable Ripple agent."""

    def __init__(
        self,
        agent_id: str,
        filesystem: MemoryFilesystem | LustreFilesystem | None = None,
        executors: ExecutorRegistry | None = None,
        max_report_retries: int = 5,
        registry=None,
        trace_sample_rate: float = 1.0,
    ) -> None:
        if not agent_id:
            raise RippleError("agent needs a non-empty id")
        super().__init__(
            f"agent-{agent_id}", registry, scope=f"agent.{agent_id}"
        )
        #: Stage tracer for the action path: sampled requests are
        #: stamped on enqueue and the ``action`` stage (inbox wait +
        #: execution) is recorded when they complete.
        self.tracer: Tracer = make_tracer(self.metrics, trace_sample_rate)
        self.agent_id = agent_id
        self.fs = filesystem if filesystem is not None else MemoryFilesystem()
        self.executors = executors or default_registry()
        self.max_report_retries = max_report_retries
        self.service: Optional["RippleService"] = None
        #: Optional action-rate limiter (a TokenBucket); when set,
        #: execute_pending() defers work once tokens run out instead of
        #: letting a rule storm starve the host.
        self.rate_limiter = None
        self.rules: list[Rule] = []
        #: Compiled matching engine over the active rules (rebuilt by
        #: :meth:`set_rules`); every detected event is filtered through
        #: its path trie instead of a linear sweep of ``self.rules``.
        self.rule_index = RuleIndex()
        self.observer: Optional[Observer] = None
        self._handler = _AgentHandler(self)
        self._scheduled_prefixes: set[str] = set()
        self._monitor_consumer = None
        self._storage_monitor = None
        #: Action requests routed to this agent, awaiting execution.
        self.inbox: Deque[ActionRequest] = deque()
        #: Named container images and callables available to actions.
        self.containers: Dict[str, Callable] = {}
        self.callables: Dict[str, Callable] = {}
        # Counters (registry-backed; see the properties below).
        self._events_seen = self.metrics.counter("events_seen")
        self._events_matched = self.metrics.counter("events_matched")
        self._events_reported = self.metrics.counter("events_reported")
        self._report_retries = self.metrics.counter("report_retries")
        self._reports_abandoned = self.metrics.counter("reports_abandoned")
        self._actions_executed = self.metrics.counter("actions_executed")
        self._action_failures = self.metrics.counter("action_failures")
        self._actions_deferred = self.metrics.counter("actions_deferred")
        self._overflows = self.metrics.counter("overflows")
        self.metrics.gauge_fn("inbox_depth", lambda: len(self.inbox))
        # Matching-engine op counters, surfaced from the index so the
        # hot path pays nothing extra (mirrors EventStore.events_scanned).
        self.metrics.gauge_fn(
            "candidates_considered",
            lambda: self.rule_index.candidates_considered,
        )
        self.metrics.gauge_fn(
            "rules_evaluated", lambda: self.rule_index.rules_evaluated
        )
        # The telemetry-facing ripple_* family: index size, pruning
        # volume, fused-evaluation volume, dirty-bucket recompiles, and
        # the evaluated/candidates pressure ratio the stock
        # rule-eval-pressure alert watches (0.0 below the floor).
        self.metrics.gauge_fn(
            "ripple_rules_indexed", lambda: len(self.rule_index)
        )
        self.metrics.gauge_fn(
            "ripple_candidates_considered",
            lambda: self.rule_index.candidates_considered,
        )
        self.metrics.gauge_fn(
            "ripple_rules_evaluated",
            lambda: self.rule_index.rules_evaluated,
        )
        self.metrics.gauge_fn(
            "ripple_program_recompiles",
            lambda: self.rule_index.program_recompiles,
        )
        self.metrics.gauge_fn(
            "ripple_eval_pressure", lambda: eval_pressure(self.rule_index)
        )

    # -- counters (old attribute names kept readable) -------------------

    @property
    def events_seen(self) -> int:
        return self._events_seen.value

    @property
    def events_matched(self) -> int:
        return self._events_matched.value

    @property
    def events_reported(self) -> int:
        return self._events_reported.value

    @property
    def report_retries(self) -> int:
        return self._report_retries.value

    @property
    def reports_abandoned(self) -> int:
        return self._reports_abandoned.value

    @property
    def actions_executed(self) -> int:
        return self._actions_executed.value

    @property
    def action_failures(self) -> int:
        return self._action_failures.value

    @property
    def actions_deferred(self) -> int:
        return self._actions_deferred.value

    @property
    def overflows(self) -> int:
        return self._overflows.value

    # ------------------------------------------------------------------
    # Detection wiring
    # ------------------------------------------------------------------

    def attach_local_filesystem(self) -> Observer:
        """Start watchdog-style observation of the agent's local fs.

        Watchers are placed per rule prefix when rules arrive
        (:meth:`set_rules`); returns the Observer for lifecycle control.
        """
        if not isinstance(self.fs, MemoryFilesystem):
            raise RippleError(
                "watchdog observation requires a local MemoryFilesystem"
            )
        if self.observer is None:
            self.observer = Observer(self.fs)
        return self.observer

    def attach_lustre_monitor(self, monitor) -> None:
        """Subscribe this agent to a :class:`~repro.core.LustreMonitor`.

        The subscription delivers whole published batches, so the agent
        filters each batch through the compiled index in one call
        (sharing trie walks across same-directory runs) instead of
        paying a full filter pass per event.
        """
        self._monitor_consumer = monitor.subscribe(
            lambda _seq, event: self.ingest_event(event),
            name=f"agent-{self.agent_id}",
            batch_callback=lambda entries: self.ingest_batch(
                [event for _seq, event in entries]
            ),
        )

    def attach_storage_monitor(self, monitor) -> None:
        """Feed this agent from a :class:`~repro.core.StorageMonitor`.

        The facade delivers plain events (no sequence numbers); drain it
        via :meth:`drain_detection` like any other source.
        """
        monitor.subscribe(self.ingest_event)
        self._storage_monitor = monitor

    def drain_detection(self) -> int:
        """Deterministically deliver pending watchdog/monitor events."""
        delivered = 0
        if self.observer is not None:
            delivered += self.observer.drain()
        if self._monitor_consumer is not None:
            delivered += self._monitor_consumer.poll_once()
        if self._storage_monitor is not None:
            delivered += self._storage_monitor.drain()
        return delivered

    # ------------------------------------------------------------------
    # Live operation (service runtime)
    # ------------------------------------------------------------------

    def pump_once(self) -> int:
        """One agent round: drain detection, execute routed actions."""
        moved = self.drain_detection()
        moved += len(self.execute_pending())
        return moved

    def worker_specs(self) -> list[WorkerSpec]:
        return [WorkerSpec("pump", self.pump_once)]

    def on_start(self) -> None:
        # The observer keeps its own pump; starting it here means a
        # started agent detects live without extra wiring.
        if self.observer is not None and not self.observer.running:
            self.observer.start()

    def on_stop(self) -> None:
        if self.observer is not None:
            self.observer.stop()
        self.pump_once()  # flush events detected before the stop

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    def set_rules(self, rules: list[Rule]) -> None:
        """Replace the active rule set (called by the service).

        For locally observed filesystems this also schedules watchers on
        each distinct rule prefix — "the agent employs Watchers on each
        directory relevant to a rule".
        """
        self.rules = list(rules)
        self.rule_index = RuleIndex(self.rules)
        if self.observer is not None:
            prefixes = sorted({
                rule.trigger.path_prefix
                for rule in self.rules
                if rule.enabled
            })
            for prefix in prefixes:
                already = any(
                    prefix == p or prefix.startswith(p.rstrip("/") + "/")
                    for p in self._scheduled_prefixes
                )
                if not already and self.fs.is_dir(prefix):
                    self.observer.schedule(self._handler, prefix, recursive=True)
                    self._scheduled_prefixes.add(prefix)

    # ------------------------------------------------------------------
    # Event filtering and reporting
    # ------------------------------------------------------------------

    def ingest_event(self, event: FileEvent) -> None:
        """Filter one detected event and report it if any rule matches."""
        self._events_seen.inc()
        matched = self.rule_index.matching(event)
        if not matched:
            return
        self._events_matched.inc()
        self._report_with_retry(event, [rule.rule_id for rule in matched])

    def ingest_batch(self, events: list[FileEvent]) -> int:
        """Filter a whole detected batch in one compiled-index pass.

        The index's per-batch walk cache shares the trie descent across
        same-directory runs (the dominant shape of a detected burst),
        and a sampled ``rules.match`` latency observation is recorded
        per batch, not per event.  Returns the number of events that
        matched at least one rule.
        """
        if not events:
            return 0
        self._events_seen.inc(len(events))
        sampled = self.tracer.sample()
        start = self.tracer.now() if sampled else 0.0
        matches = self.rule_index.matching_batch(events)
        if sampled:
            self.tracer.record("rules.match", self.tracer.now() - start)
        reported = 0
        for event, matched in matches:
            if not matched:
                continue
            self._events_matched.inc()
            self._report_with_retry(
                event, [rule.rule_id for rule in matched]
            )
            reported += 1
        return reported

    def _report_with_retry(self, event: FileEvent, rule_ids: list[int]) -> None:
        if self.service is None:
            raise RippleError(f"agent {self.agent_id} is not registered")
        for attempt in range(self.max_report_retries + 1):
            try:
                self.service.report_event(self.agent_id, event, rule_ids)
            except Exception:
                self._report_retries.inc()
                continue
            self._events_reported.inc()
            return
        self._reports_abandoned.inc()

    # ------------------------------------------------------------------
    # Action execution
    # ------------------------------------------------------------------

    def enqueue_action(self, request: ActionRequest) -> None:
        """Accept a routed action request (called by the service)."""
        if request.created_ts is None and self.tracer.sample():
            request.created_ts = self.tracer.now()
        self.inbox.append(request)

    def execute_pending(self) -> list[ActionResult]:
        """Execute every queued action; report results to the service."""
        results: list[ActionResult] = []
        while self.inbox:
            if self.rate_limiter is not None and not self.rate_limiter.take():
                # Out of tokens: leave the rest queued for a later round.
                self._actions_deferred.inc()
                break
            request = self.inbox.popleft()
            request.attempts += 1
            try:
                executor = self.executors.get(request.action_type)
                result = executor(request, self)
            except Exception as exc:
                self._action_failures.inc()
                result = ActionResult(
                    request.request_id,
                    request.rule_id,
                    False,
                    detail=f"{type(exc).__name__}: {exc}",
                )
            else:
                self._actions_executed.inc()
            if request.created_ts is not None and self.tracer.enabled:
                self.tracer.record(
                    "action", self.tracer.now() - request.created_ts
                )
            results.append(result)
            if self.service is not None:
                self.service.record_result(request, result)
        return results

    # ------------------------------------------------------------------
    # Filesystem abstraction (used by executors)
    # ------------------------------------------------------------------

    def exists(self, path: str) -> bool:
        """True if *path* exists on the agent's filesystem."""
        return self.fs.exists(path)

    def read_file(self, path: str) -> bytes:
        """Read file content (Lustre files yield size-faithful zeros)."""
        if isinstance(self.fs, MemoryFilesystem):
            return self.fs.read(path)
        stat = self.fs.stat(path)
        return b"\x00" * stat.size

    def write_file(self, path: str, data: bytes) -> None:
        """Create/overwrite *path* with *data*, creating parents."""
        directory = path.rsplit("/", 1)[0] or "/"
        self.makedirs(directory)
        if isinstance(self.fs, MemoryFilesystem):
            self.fs.write(path, data)
        else:
            if not self.fs.exists(path):
                self.fs.create(path, size=len(data))
            else:
                self.fs.write(path, len(data))

    def delete_file(self, path: str) -> None:
        """Remove the file at *path*."""
        self.fs.unlink(path)

    def rename(self, src: str, dst: str) -> None:
        """Move *src* to *dst*."""
        self.fs.rename(src, dst)

    def makedirs(self, path: str) -> None:
        """Ensure directory *path* exists."""
        if path == "/":
            return
        if isinstance(self.fs, MemoryFilesystem):
            self.fs.makedirs(path, exist_ok=True)
        else:
            self.fs.makedirs(path)

    # ------------------------------------------------------------------
    # Extension points
    # ------------------------------------------------------------------

    def register_container(self, name: str, image: Callable) -> None:
        """Make container image *name* runnable by container actions."""
        self.containers[name] = image

    def register_callable(self, name: str, function: Callable) -> None:
        """Make *function* invokable by callable actions."""
        self.callables[name] = function
