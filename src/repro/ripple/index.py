"""The compiled rule-matching engine: a path-component trie over triggers.

``RuleSet.matching`` and the agent filter are the system's hottest paths
— every detected event is checked against every installed rule, and the
ROADMAP's north star (millions of users, millions of rules) makes that
O(rules × events) product the first thing to collapse.  Robinhood makes
the same observation for policy engines over billions of entries: rule
evaluation at scale needs a purpose-built index, not a linear sweep.

:class:`RuleIndex` compiles a rule collection once and answers
"which rules fire for this event?" in O(path depth + candidate
triggers):

* Each enabled rule's trigger becomes a :class:`CompiledTrigger` — the
  path prefix pre-normalized once, the ``fnmatch`` name pattern
  pre-translated to a compiled regex (the default ``"*"`` special-cased
  to skip name matching entirely).
* Compiled triggers live in a **path-component trie**: the node for
  ``/proj/ml`` holds the triggers whose prefix is exactly ``/proj/ml``,
  bucketed per :class:`~repro.core.events.EventType`.  Matching an
  event walks the components of its path (and ``old_path`` for MOVED
  events), collecting the event-type bucket at every node on the way —
  rules watching unrelated subtrees are never touched.
* The index updates incrementally on rule add/remove/enable, so rule
  churn never triggers a full recompile.

Two operation counters mirror the :class:`~repro.core.store.EventStore`
discipline (``events_scanned``): ``candidates_considered`` counts
triggers the trie walk surfaced, ``rules_evaluated`` counts full
trigger evaluations performed.  The rule-matching micro-benchmark
asserts the indexed path evaluates a small fraction of what the linear
sweep pays.
"""

from __future__ import annotations

import fnmatch
import re
from typing import (
    TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple,
)

from repro.core.events import EventType, FileEvent, prefix_probe

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.ripple.rules import Rule

__all__ = ["CompiledTrigger", "RuleIndex"]


class CompiledTrigger:
    """One rule's trigger, pre-compiled for repeated matching.

    Everything ``Trigger.matches`` recomputes per event is hoisted to
    construction time: the prefix probe (``prefix + "/"``), the name
    pattern as a compiled regex (``None`` for the match-everything
    ``"*"``), and the cheap flag lookups as slots.
    """

    __slots__ = (
        "rule", "order", "prefix", "probe", "include_directories", "_regex",
    )

    def __init__(self, rule: Rule, order: int) -> None:
        self.rule = rule
        #: Insertion order within the owning index; matching sorts by it
        #: so indexed results come back in the same order a linear sweep
        #: over the rule list would produce them.
        self.order = order
        trigger = rule.trigger
        self.prefix = trigger.path_prefix
        self.probe = prefix_probe(trigger.path_prefix)
        self.include_directories = trigger.include_directories
        #: ``None`` means the pattern is ``"*"``: every name matches, so
        #: the hot path skips regex work entirely.
        self._regex: Optional[re.Pattern] = (
            None
            if trigger.name_pattern == "*"
            else re.compile(fnmatch.translate(trigger.name_pattern))
        )

    def matches(self, event: FileEvent, name: str) -> bool:
        """Full trigger evaluation for a trie-surfaced candidate.

        The event-type condition is implied by the bucket the candidate
        came from; the prefix condition is re-checked with the
        precomputed probe so correctness never depends on the trie walk
        being exact over unnormalized paths.
        """
        rule = self.rule
        if not rule.enabled:
            return False
        if event.is_dir and not self.include_directories:
            return False
        if not event.matches_prefix(self.prefix, self.probe):
            return False
        return self._regex is None or self._regex.match(name) is not None


class _TrieNode:
    """One path component: child components + per-event-type buckets."""

    __slots__ = ("children", "buckets")

    def __init__(self) -> None:
        self.children: Dict[str, "_TrieNode"] = {}
        self.buckets: Dict[EventType, List[CompiledTrigger]] = {}


def _match_name(event: FileEvent) -> str:
    """The name ``Trigger.matches`` applies the glob to, computed once."""
    return event.name or (event.path or "").rsplit("/", 1)[-1]


class RuleIndex:
    """A compiled, incrementally-maintained index over a rule collection.

    Matching one event costs a trie walk over its path components plus
    one full evaluation per surfaced candidate — independent of how many
    rules watch *other* subtrees.  Batch matching additionally reuses
    the per-directory walk across same-directory runs of a batch (the
    common shape of a detected burst).
    """

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self._root = _TrieNode()
        self._compiled: Dict[int, CompiledTrigger] = {}
        self._order = 0
        #: Op counters, mirroring ``EventStore.events_scanned``: how many
        #: candidate triggers trie walks surfaced, and how many full
        #: trigger evaluations ran.  The micro-benchmark asserts both
        #: stay O(candidates), not O(total rules).
        self.candidates_considered = 0
        self.rules_evaluated = 0
        for rule in rules:
            self.add(rule)

    def __len__(self) -> int:
        return len(self._compiled)

    def __contains__(self, rule_id: int) -> bool:
        return rule_id in self._compiled

    def __iter__(self) -> Iterator[Rule]:
        return iter(
            compiled.rule
            for compiled in sorted(
                self._compiled.values(), key=lambda c: c.order
            )
        )

    def reset_op_counters(self) -> None:
        """Zero the candidate/evaluation counters (benchmark hygiene)."""
        self.candidates_considered = 0
        self.rules_evaluated = 0

    # -- maintenance --------------------------------------------------------

    def _node_for(self, prefix: str, create: bool) -> Optional[_TrieNode]:
        node = self._root
        if prefix == "/":
            return node
        for component in prefix[1:].split("/"):
            child = node.children.get(component)
            if child is None:
                if not create:
                    return None
                child = node.children[component] = _TrieNode()
            node = child
        return node

    def add(self, rule: Rule, order: Optional[int] = None) -> None:
        """Index *rule* (disabled rules are recorded as a no-op).

        *order* pins the rule's result position; callers that maintain
        their own insertion order (``RuleSet``) pass the original stamp
        so a rule that is disabled and later re-enabled keeps its place.
        """
        if rule.rule_id in self._compiled:
            return
        if order is None:
            order = self._order
        self._order = max(self._order, order) + 1
        if not rule.enabled:
            return
        compiled = CompiledTrigger(rule, order)
        self._compiled[rule.rule_id] = compiled
        node = self._node_for(compiled.prefix, create=True)
        for event_type in rule.trigger.event_types:
            node.buckets.setdefault(event_type, []).append(compiled)

    def remove(self, rule: Rule) -> None:
        """Drop *rule* from the index (unknown rules are a no-op)."""
        compiled = self._compiled.pop(rule.rule_id, None)
        if compiled is None:
            return
        node = self._node_for(compiled.prefix, create=False)
        if node is None:  # pragma: no cover - defensive; add() built it
            return
        for event_type in rule.trigger.event_types:
            bucket = node.buckets.get(event_type)
            if bucket is None:
                continue
            bucket[:] = [c for c in bucket if c is not compiled]
            if not bucket:
                del node.buckets[event_type]
        # Empty trie branches are left in place: prefixes repeat under
        # rule churn and re-creating nodes costs more than keeping them.

    def set_enabled(self, rule: Rule, order: Optional[int] = None) -> None:
        """Re-index *rule* after its ``enabled`` flag changed."""
        self.remove(rule)
        if rule.enabled:
            self.add(rule, order=order)

    # -- matching ------------------------------------------------------------

    def _collect(
        self,
        path: str,
        event_type: EventType,
        out: List[CompiledTrigger],
        cache: Optional[dict] = None,
    ) -> None:
        """Append the candidate triggers for one candidate *path*.

        The walk visits the trie node of every ancestor of *path*
        (including the root and the terminal component), collecting the
        *event_type* bucket at each — exactly the prefixes that can
        satisfy ``matches_prefix``.  With *cache*, the walk up to the
        parent directory is memoized per ``(directory, event_type)``,
        so a batch of events in one directory pays for the walk once.
        """
        root_bucket = self._root.buckets.get(event_type)
        if root_bucket:
            out.extend(root_bucket)
        if not path.startswith("/"):
            # Relative/odd candidates only ever match the "/" prefix
            # (the special case in matches_prefix); nothing to walk.
            return
        if cache is None:
            node = self._root
            for component in path[1:].split("/"):
                node = node.children.get(component)
                if node is None:
                    return
                bucket = node.buckets.get(event_type)
                if bucket:
                    out.extend(bucket)
            return
        head, _, name = path.rpartition("/")
        key = (head, event_type)
        hit = cache.get(key)
        if hit is None:
            base: List[CompiledTrigger] = []
            node: Optional[_TrieNode] = self._root
            if head:
                for component in head[1:].split("/"):
                    node = node.children.get(component)
                    if node is None:
                        break
                    bucket = node.buckets.get(event_type)
                    if bucket:
                        base.extend(bucket)
            hit = cache[key] = (node, tuple(base))
        dir_node, base = hit
        out.extend(base)
        if dir_node is not None:
            terminal = dir_node.children.get(name)
            if terminal is not None:
                bucket = terminal.buckets.get(event_type)
                if bucket:
                    out.extend(bucket)

    def candidates(
        self, event: FileEvent, cache: Optional[dict] = None
    ) -> List[CompiledTrigger]:
        """The triggers whose prefix can cover *event* (deduplicated)."""
        out: List[CompiledTrigger] = []
        if event.path is not None:
            self._collect(event.path, event.event_type, out, cache)
        if event.old_path is not None and event.old_path != event.path:
            if out:
                seen = {compiled.order for compiled in out}
                extra: List[CompiledTrigger] = []
                self._collect(event.old_path, event.event_type, extra, cache)
                out.extend(c for c in extra if c.order not in seen)
            else:
                self._collect(event.old_path, event.event_type, out, cache)
        self.candidates_considered += len(out)
        return out

    def matching(
        self, event: FileEvent, cache: Optional[dict] = None
    ) -> List[Rule]:
        """Rules that fire for *event*, in rule-insertion order."""
        candidates = self.candidates(event, cache)
        if not candidates:
            return []
        name = _match_name(event)
        self.rules_evaluated += len(candidates)
        matched = [c for c in candidates if c.matches(event, name)]
        if len(matched) > 1:
            matched.sort(key=lambda c: c.order)
        return [c.rule for c in matched]

    def matching_batch(
        self, events: Iterable[FileEvent]
    ) -> List[Tuple[FileEvent, List[Rule]]]:
        """Match a whole batch, sharing trie walks across the batch.

        Detected bursts are dominated by same-directory runs (one job
        writing many files into one output directory); the shared
        per-``(directory, event type)`` cache walks the trie once per
        run instead of once per event.
        """
        cache: dict = {}
        return [(event, self.matching(event, cache)) for event in events]
