"""The compiled rule-matching engine: a spine-fused path-trie automaton.

``RuleSet.matching`` and the agent filter are the system's hottest paths
— every detected event is checked against every installed rule, and the
ROADMAP's north star (millions of users, millions of rules) makes that
O(rules × events) product the first thing to collapse.  Robinhood makes
the same observation for policy engines over billions of entries, and
Icicle (PAPERS.md) for metadata indexing + real-time monitoring done
together: rule evaluation at scale needs purpose-built evaluation
structure, not just candidate pruning.

The engine has two layers:

* **The path-component trie** prunes by subtree: the node for
  ``/proj/ml`` holds the triggers whose prefix is exactly ``/proj/ml``,
  bucketed per :class:`~repro.core.events.EventType`.  Matching an
  event walks the components of its path (and ``old_path`` for MOVED
  events), surfacing the event-type bucket at every node on the way —
  rules watching unrelated subtrees are never touched.  Each node also
  carries a **subtree event-type mask** (the types present in its own
  buckets or any descendant's), so a walk stops descending the moment
  no deeper rule can care about the event's type.

* **The fused bucket program** collapses cost *within* a bucket — the
  nested-spine worst case, where every ancestor of the event's path
  holds rules and plain pruning degrades to the linear sweep.  Each
  bucket compiles (lazily, and recompiled only when dirtied) into a
  :class:`BucketProgram` that dedupes identical predicates
  ``(prefix, name_pattern, include_directories)`` across rules and
  tenants into one evaluation fanning out to every owning rule, then
  partitions the deduped predicates into a **literal-name hash map**
  (non-glob patterns resolved by one dict lookup), **one merged
  lookahead-alternation regex** per chunk of glob patterns (all
  matching globs discovered in a single regex pass, group → predicate),
  and a **match-all list** that skips name work entirely.  Buckets also
  carry cheap pruning masks — a first-byte set over their patterns and
  an "accepts directories" flag — so spine walks skip buckets that
  cannot possibly match *before* collecting them.

Matching stays byte-identical to the linear sweep
(``RuleSet.matching_linear`` is the oracle; the hypothesis equivalence
property in ``tests/test_rule_index.py`` pins it across overlapping
prefixes, globs, disabled rules, MOVED old-paths and rule churn):
surfaced predicates still re-verify the full prefix/directory
condition, matched owners are filtered by ``rule.enabled`` and returned
in rule-insertion order.

Operation counters mirror the :class:`~repro.core.store.EventStore`
discipline (``events_scanned``): ``candidates_considered`` counts rules
the trie walk surfaced, ``rules_evaluated`` counts deduped predicate
evaluations actually performed (the fused automaton's whole point is
``rules_evaluated ≪ candidates_considered`` when rules share
predicates), and ``program_recompiles`` counts dirty-bucket program
compilations.  The rule-matching micro-benchmark asserts the fused path
evaluates a small fraction of what the linear sweep pays — on the
nested spine too, not just on disjoint prefixes.
"""

from __future__ import annotations

import fnmatch
import re
from typing import (
    TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple,
)

from repro.core.events import EventType, FileEvent, prefix_probe

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.ripple.rules import Rule

__all__ = ["BucketProgram", "CompiledTrigger", "RuleIndex", "eval_pressure"]

#: Bit per event type for the per-node subtree masks.
_TYPE_BIT: Dict[EventType, int] = {
    event_type: 1 << i for i, event_type in enumerate(EventType)
}

#: fnmatch metacharacters — a pattern without them is a literal name.
_GLOB_RE = re.compile(r"[*?\[]")

#: Glob predicates fused per merged alternation regex.  Chunking keeps
#: individual compiled patterns (and their group counts) bounded while
#: still evaluating up to this many globs in one C-level regex pass.
_GLOB_CHUNK = 64

#: Candidate volume below which :func:`eval_pressure` reports 0.0 — a
#: handful of rules cannot meaningfully be "under pressure", and tiny
#: denominators would make the stock alert fire on healthy idle agents.
_PRESSURE_FLOOR = 4096


class CompiledTrigger:
    """One rule's trigger, pre-compiled for repeated matching.

    Everything ``Trigger.matches`` recomputes per event is hoisted to
    construction time: the prefix probe (``prefix + "/"``), the name
    pattern as a compiled regex (``None`` for the match-everything
    ``"*"``), and the cheap flag lookups as slots.  Inside the index,
    compiled triggers are the *owner* records bucket programs fan out
    to; :meth:`matches` remains the single-trigger reference evaluation
    (the gateway property tests and ad-hoc callers use it directly).
    """

    __slots__ = (
        "rule", "order", "prefix", "probe", "include_directories",
        "pattern", "_regex",
    )

    def __init__(self, rule: Rule, order: int) -> None:
        self.rule = rule
        #: Insertion order within the owning index; matching sorts by it
        #: so indexed results come back in the same order a linear sweep
        #: over the rule list would produce them.
        self.order = order
        trigger = rule.trigger
        self.prefix = trigger.path_prefix
        self.probe = prefix_probe(trigger.path_prefix)
        self.include_directories = trigger.include_directories
        #: The raw fnmatch pattern — the bucket program's dedup key.
        self.pattern = trigger.name_pattern
        #: ``None`` means the pattern is ``"*"``: every name matches, so
        #: the hot path skips regex work entirely.
        self._regex: Optional[re.Pattern] = (
            None
            if trigger.name_pattern == "*"
            else re.compile(fnmatch.translate(trigger.name_pattern))
        )

    def matches(self, event: FileEvent, name: str) -> bool:
        """Full trigger evaluation for one surfaced candidate.

        The event-type condition is implied by the bucket the candidate
        came from; the prefix condition is re-checked with the
        precomputed probe so correctness never depends on the trie walk
        being exact over unnormalized paths.
        """
        rule = self.rule
        if not rule.enabled:
            return False
        if event.is_dir and not self.include_directories:
            return False
        if not event.matches_prefix(self.prefix, self.probe):
            return False
        return self._regex is None or self._regex.match(name) is not None


class _Predicate:
    """One deduped ``(prefix, pattern, include_directories)`` predicate.

    Identical predicates across rules (and tenants) collapse into one
    of these: the predicate is evaluated once per event and the result
    fans out to every owner trigger.  The name condition is resolved by
    the owning :class:`BucketProgram`'s partition (literal map / merged
    regex / match-all), so :meth:`evaluate` only re-verifies the
    prefix and directory conditions.
    """

    __slots__ = ("prefix", "probe", "include_directories", "pattern", "owners")

    def __init__(
        self, prefix: str, probe: str, include_directories: bool, pattern: str
    ) -> None:
        self.prefix = prefix
        self.probe = probe
        self.include_directories = include_directories
        self.pattern = pattern
        self.owners: List[CompiledTrigger] = []

    def evaluate(self, event: FileEvent) -> bool:
        if event.is_dir and not self.include_directories:
            return False
        return event.matches_prefix(self.prefix, self.probe)


class BucketProgram:
    """One bucket's triggers, fused into a three-way evaluation plan.

    Compiled from the raw trigger list of one ``(trie node, event
    type)`` bucket.  Construction dedupes identical predicates, then
    partitions them:

    * ``match_all`` — pattern ``"*"``: no name work at all;
    * ``literals`` — patterns without fnmatch metacharacters: the whole
      partition resolves with **one dict lookup** on the event name;
    * ``glob_chunks`` — remaining patterns merged into optional
      lookahead alternations ``(?:(?=(pat)))?…`` so **one regex pass**
      reports *every* matching glob via its capture group (a plain
      alternation would stop at the first).

    ``first_bytes``/``any_dirs`` are the bucket's pruning masks: the
    walk consults them before surfacing the bucket, so a spine node
    whose patterns cannot start with the event's first name byte (or
    that rejects directories outright) costs nothing.
    """

    __slots__ = (
        "match_all", "literals", "glob_chunks", "any_dirs", "first_bytes",
        "n_rules", "n_predicates",
    )

    def __init__(self, triggers: Iterable[CompiledTrigger]) -> None:
        predicates: Dict[Tuple[str, str, bool], _Predicate] = {}
        for trigger in triggers:
            key = (trigger.prefix, trigger.pattern, trigger.include_directories)
            predicate = predicates.get(key)
            if predicate is None:
                predicate = predicates[key] = _Predicate(
                    trigger.prefix, trigger.probe,
                    trigger.include_directories, trigger.pattern,
                )
            predicate.owners.append(trigger)
        self.match_all: List[_Predicate] = []
        self.literals: Dict[str, List[_Predicate]] = {}
        globs: List[_Predicate] = []
        any_dirs = False
        firsts: set = set()
        open_first = False
        for predicate in predicates.values():
            any_dirs = any_dirs or predicate.include_directories
            pattern = predicate.pattern
            if pattern == "*":
                self.match_all.append(predicate)
                open_first = True
            elif not _GLOB_RE.search(pattern):
                self.literals.setdefault(pattern, []).append(predicate)
                firsts.add(pattern[:1])
            else:
                globs.append(predicate)
                if pattern[0] in "*?[":
                    open_first = True  # conservative: any first byte
                else:
                    firsts.add(pattern[0])
        self.glob_chunks: List[Tuple[re.Pattern, List[_Predicate]]] = []
        for start in range(0, len(globs), _GLOB_CHUNK):
            chunk = globs[start:start + _GLOB_CHUNK]
            merged = "".join(
                "(?:(?=(%s)))?" % fnmatch.translate(predicate.pattern)
                for predicate in chunk
            )
            self.glob_chunks.append((re.compile(merged), chunk))
        self.any_dirs = any_dirs
        #: ``None`` = some predicate accepts any first byte; otherwise
        #: the set of first name characters that can possibly match.
        self.first_bytes: Optional[frozenset] = (
            None if open_first else frozenset(firsts)
        )
        self.n_predicates = len(predicates)
        self.n_rules = sum(
            len(predicate.owners) for predicate in predicates.values()
        )

    def evaluate(
        self, event: FileEvent, name: str
    ) -> Tuple[List[_Predicate], int]:
        """Predicates of this bucket matching *event*, plus how many
        full predicate evaluations resolving them cost."""
        matched: List[_Predicate] = []
        evaluated = 0
        for predicate in self.match_all:
            evaluated += 1
            if predicate.evaluate(event):
                matched.append(predicate)
        if self.literals:
            for predicate in self.literals.get(name, ()):
                evaluated += 1
                if predicate.evaluate(event):
                    matched.append(predicate)
        for regex, chunk in self.glob_chunks:
            groups = regex.match(name).groups()
            for hit, predicate in zip(groups, chunk):
                if hit is not None:
                    evaluated += 1
                    if predicate.evaluate(event):
                        matched.append(predicate)
        return matched, evaluated


class _TrieNode:
    """One path component: children + buckets + compiled programs.

    ``buckets`` (raw trigger lists per event type) are the source of
    truth; ``programs`` caches each bucket's compiled
    :class:`BucketProgram` and is invalidated per-bucket on mutation —
    the dirty-bucket recompile the tentpole requires (rule churn under
    one subtree never recompiles another's programs).  ``subtree_mask``
    ORs the event-type bits present in this node's buckets *or any
    descendant's*, maintained with ``subtree_counts`` so removals can
    clear bits exactly.
    """

    __slots__ = ("children", "buckets", "programs", "subtree_mask",
                 "subtree_counts")

    def __init__(self) -> None:
        self.children: Dict[str, "_TrieNode"] = {}
        self.buckets: Dict[EventType, List[CompiledTrigger]] = {}
        self.programs: Dict[EventType, BucketProgram] = {}
        self.subtree_mask = 0
        self.subtree_counts: Dict[EventType, int] = {}


def _match_name(event: FileEvent) -> str:
    """The name ``Trigger.matches`` applies the glob to, computed once.

    For MOVED events this is the *new* name (``event.name`` or the
    basename of ``path``) even when the rule's prefix only covers
    ``old_path`` — the linear oracle never looks at the old basename,
    so neither may the index's name partitions or first-byte masks.
    """
    return event.name or (event.path or "").rsplit("/", 1)[-1]


def eval_pressure(index: "RuleIndex", floor: int = _PRESSURE_FLOOR) -> float:
    """Evaluated/candidates ratio — the pruning-health alert signal.

    Near 0.0 means predicate dedup + fusion are collapsing candidate
    volume; near 1.0 at scale means installed rules share spines but
    not predicates and matching is tracking candidate volume.  Reports
    0.0 until *floor* candidates have been considered so small
    deployments (where 1 candidate → 1 evaluation is the healthy
    steady state) never trip the stock alert.
    """
    considered = index.candidates_considered
    if considered < floor:
        return 0.0
    return index.rules_evaluated / considered


class RuleIndex:
    """A compiled, incrementally-maintained index over a rule collection.

    Matching one event costs a trie walk over its path components plus
    one fused bucket-program evaluation per surfaced bucket —
    independent of how many rules watch *other* subtrees, and (via
    predicate dedup + the literal/merged-glob partitions) paying far
    fewer than one full evaluation per surfaced rule when rules stack
    on a shared spine.  Batch matching additionally reuses the
    per-directory walk across same-directory runs of a batch (the
    common shape of a detected burst); the walk cache composes with the
    fused programs — cached entries hold compiled programs, and the
    per-event pruning masks are applied at assembly time.
    """

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self._root = _TrieNode()
        self._compiled: Dict[int, CompiledTrigger] = {}
        #: Pinned order stamps for rules added while disabled, so a
        #: later enable lands at the rule's original insertion position
        #: and repeated disabled adds stay idempotent.
        self._disabled_orders: Dict[int, int] = {}
        self._order = 0
        #: Op counters, mirroring ``EventStore.events_scanned``:
        #: ``candidates_considered`` counts rules trie walks surfaced,
        #: ``rules_evaluated`` counts deduped predicate evaluations
        #: performed, ``program_recompiles`` counts dirty-bucket
        #: program compilations.  The micro-benchmark asserts evaluation
        #: cost stays O(distinct predicates on the ancestor chain), not
        #: O(total rules) — even when every rule shares one spine.
        self.candidates_considered = 0
        self.rules_evaluated = 0
        self.program_recompiles = 0
        for rule in rules:
            self.add(rule)

    def __len__(self) -> int:
        return len(self._compiled)

    def __contains__(self, rule_id: int) -> bool:
        return rule_id in self._compiled

    def __iter__(self) -> Iterator[Rule]:
        return iter(
            compiled.rule
            for compiled in sorted(
                self._compiled.values(), key=lambda c: c.order
            )
        )

    def reset_op_counters(self) -> None:
        """Zero the candidate/evaluation counters (benchmark hygiene).

        ``program_recompiles`` is deliberately left alone: it tracks
        index maintenance, not per-event matching work.
        """
        self.candidates_considered = 0
        self.rules_evaluated = 0

    # -- maintenance --------------------------------------------------------

    def _path_nodes(
        self, prefix: str, create: bool
    ) -> Optional[List[_TrieNode]]:
        """The nodes from the root to *prefix*'s node, inclusive."""
        node = self._root
        nodes = [node]
        if prefix == "/":
            return nodes
        for component in prefix[1:].split("/"):
            child = node.children.get(component)
            if child is None:
                if not create:
                    return None
                child = node.children[component] = _TrieNode()
            node = child
            nodes.append(node)
        return nodes

    @staticmethod
    def _adjust_subtree(
        nodes: List[_TrieNode], event_types: Iterable[EventType], delta: int
    ) -> None:
        """Shift the subtree type counts/masks along a prefix path."""
        for event_type in event_types:
            bit = _TYPE_BIT[event_type]
            for node in nodes:
                counts = node.subtree_counts
                count = counts.get(event_type, 0) + delta
                if count > 0:
                    counts[event_type] = count
                    node.subtree_mask |= bit
                else:
                    counts.pop(event_type, None)
                    node.subtree_mask &= ~bit

    def add(self, rule: Rule, order: Optional[int] = None) -> None:
        """Index *rule* (disabled rules are recorded, not indexed).

        *order* pins the rule's result position; callers that maintain
        their own insertion order (``RuleSet``) pass the original stamp
        so a rule that is disabled and later re-enabled keeps its place.
        A rule added while disabled has its stamp pinned on the *first*
        add — repeated disabled adds are idempotent and a later enable
        lands at the original insertion position, not wherever the
        order clock had drifted to.
        """
        rule_id = rule.rule_id
        if rule_id in self._compiled:
            return
        if not rule.enabled:
            if order is not None:
                self._disabled_orders[rule_id] = order
                self._order = max(self._order, order) + 1
            elif rule_id not in self._disabled_orders:
                self._disabled_orders[rule_id] = self._order
                self._order += 1
            return
        if order is None:
            order = self._disabled_orders.pop(rule_id, None)
            if order is None:
                order = self._order
        else:
            self._disabled_orders.pop(rule_id, None)
        self._order = max(self._order, order) + 1
        compiled = CompiledTrigger(rule, order)
        self._compiled[rule_id] = compiled
        nodes = self._path_nodes(compiled.prefix, create=True)
        node = nodes[-1]
        for event_type in rule.trigger.event_types:
            node.buckets.setdefault(event_type, []).append(compiled)
            node.programs.pop(event_type, None)  # dirty-bucket recompile
        self._adjust_subtree(nodes, rule.trigger.event_types, +1)

    def remove(self, rule: Rule) -> None:
        """Drop *rule* from the index (unknown rules are a no-op)."""
        self._disabled_orders.pop(rule.rule_id, None)
        compiled = self._compiled.pop(rule.rule_id, None)
        if compiled is None:
            return
        nodes = self._path_nodes(compiled.prefix, create=False)
        if nodes is None:  # pragma: no cover - defensive; add() built it
            return
        node = nodes[-1]
        for event_type in rule.trigger.event_types:
            bucket = node.buckets.get(event_type)
            if bucket is None:
                continue
            bucket[:] = [c for c in bucket if c is not compiled]
            if not bucket:
                del node.buckets[event_type]
            node.programs.pop(event_type, None)  # dirty-bucket recompile
        self._adjust_subtree(nodes, rule.trigger.event_types, -1)
        # Empty trie branches are left in place: prefixes repeat under
        # rule churn and re-creating nodes costs more than keeping them.

    def set_enabled(self, rule: Rule, order: Optional[int] = None) -> None:
        """Re-index *rule* after its ``enabled`` flag changed.

        Without an explicit *order*, the rule keeps its existing stamp
        across the disable/enable round-trip (pinned while disabled),
        so flipping a rule never reorders matching results.
        """
        if order is None:
            compiled = self._compiled.get(rule.rule_id)
            if compiled is not None:
                order = compiled.order
            else:
                order = self._disabled_orders.get(rule.rule_id)
        self.remove(rule)
        self.add(rule, order=order)

    # -- program access ------------------------------------------------------

    def _program(
        self, node: _TrieNode, event_type: EventType
    ) -> Optional[BucketProgram]:
        """The node's compiled program for *event_type* (lazy, cached)."""
        program = node.programs.get(event_type)
        if program is None:
            bucket = node.buckets.get(event_type)
            if not bucket:
                return None
            program = node.programs[event_type] = BucketProgram(bucket)
            self.program_recompiles += 1
        return program

    def _surface(
        self,
        node: _TrieNode,
        event_type: EventType,
        is_dir: bool,
        first: str,
        out: List[BucketProgram],
    ) -> None:
        """Append the node's program if its pruning masks allow *event*."""
        if event_type not in node.buckets:
            return
        program = self._program(node, event_type)
        if program is None:  # pragma: no cover - bucket emptied mid-walk
            return
        if is_dir and not program.any_dirs:
            return
        if program.first_bytes is not None and first not in program.first_bytes:
            return
        out.append(program)

    # -- matching ------------------------------------------------------------

    def _collect(
        self,
        path: str,
        event_type: EventType,
        is_dir: bool,
        first: str,
        out: List[BucketProgram],
        cache: Optional[dict] = None,
    ) -> None:
        """Append the surviving bucket programs for one candidate *path*.

        The walk visits the trie node of every ancestor of *path*
        (including the root and the terminal component) — exactly the
        prefixes that can satisfy ``matches_prefix`` — stopping early
        when a node's subtree mask shows no rule below it watches this
        event type, and skipping buckets whose pruning masks exclude
        the event before they are collected.  With *cache*, the walk up
        to the parent directory is memoized per ``(directory,
        event_type)`` — the cached entry holds compiled programs, and
        the per-event masks are applied at assembly time, so a batch of
        events in one directory pays for the walk once.
        """
        bit = _TYPE_BIT[event_type]
        root = self._root
        if not (root.subtree_mask & bit):
            return
        if not path.startswith("/"):
            # Relative/odd candidates only ever match the "/" prefix
            # (the special case in matches_prefix); nothing to walk.
            self._surface(root, event_type, is_dir, first, out)
            return
        if cache is None:
            self._surface(root, event_type, is_dir, first, out)
            node = root
            for component in path[1:].split("/"):
                node = node.children.get(component)
                if node is None or not (node.subtree_mask & bit):
                    return
                self._surface(node, event_type, is_dir, first, out)
            return
        head, _, terminal = path.rpartition("/")
        key = (head, event_type)
        hit = cache.get(key)
        if hit is None:
            base: List[BucketProgram] = []
            node: Optional[_TrieNode] = root
            if root.subtree_mask & bit:
                program = self._program(root, event_type)
                if program is not None:
                    base.append(program)
                if head:
                    for component in head[1:].split("/"):
                        node = node.children.get(component)
                        if node is None or not (node.subtree_mask & bit):
                            node = None
                            break
                        program = self._program(node, event_type)
                        if program is not None:
                            base.append(program)
            else:  # pragma: no cover - guarded by the caller's mask check
                node = None
            hit = cache[key] = (node, tuple(base))
        dir_node, base = hit
        for program in base:
            if is_dir and not program.any_dirs:
                continue
            if (
                program.first_bytes is not None
                and first not in program.first_bytes
            ):
                continue
            out.append(program)
        if dir_node is not None:
            terminal_node = dir_node.children.get(terminal)
            if terminal_node is not None and terminal_node.subtree_mask & bit:
                self._surface(terminal_node, event_type, is_dir, first, out)

    def _programs_for(
        self, event: FileEvent, name: str, cache: Optional[dict] = None
    ) -> List[BucketProgram]:
        """The bucket programs whose node lies on the event's ancestor
        chain(s) and whose pruning masks admit the event."""
        first = name[:1]
        out: List[BucketProgram] = []
        if event.path is not None:
            self._collect(
                event.path, event.event_type, event.is_dir, first, out, cache
            )
        if event.old_path is not None and event.old_path != event.path:
            if out:
                seen = set(map(id, out))
                extra: List[BucketProgram] = []
                self._collect(
                    event.old_path, event.event_type, event.is_dir, first,
                    extra, cache,
                )
                out.extend(p for p in extra if id(p) not in seen)
            else:
                self._collect(
                    event.old_path, event.event_type, event.is_dir, first,
                    out, cache,
                )
        self.candidates_considered += sum(p.n_rules for p in out)
        return out

    def candidates(
        self, event: FileEvent, cache: Optional[dict] = None
    ) -> List[CompiledTrigger]:
        """The triggers whose bucket can cover *event* (deduplicated).

        Kept for introspection and ad-hoc callers: the hot path works
        on whole bucket programs and never materialises this list.
        """
        out: List[CompiledTrigger] = []
        for program in self._programs_for(event, _match_name(event), cache):
            for predicate in program.match_all:
                out.extend(predicate.owners)
            for hits in program.literals.values():
                for predicate in hits:
                    out.extend(predicate.owners)
            for _regex, chunk in program.glob_chunks:
                for predicate in chunk:
                    out.extend(predicate.owners)
        return out

    def matching(
        self, event: FileEvent, cache: Optional[dict] = None
    ) -> List[Rule]:
        """Rules that fire for *event*, in rule-insertion order."""
        name = _match_name(event)
        programs = self._programs_for(event, name, cache)
        if not programs:
            return []
        matched: List[CompiledTrigger] = []
        evaluated = 0
        for program in programs:
            predicates, cost = program.evaluate(event, name)
            evaluated += cost
            for predicate in predicates:
                # One predicate evaluation fans out to every owner; the
                # per-owner enabled check keeps directly-disabled rules
                # (flipped without set_enabled) correctly rejected.
                matched.extend(
                    owner for owner in predicate.owners if owner.rule.enabled
                )
        self.rules_evaluated += evaluated
        if len(matched) > 1:
            matched.sort(key=lambda c: c.order)
        return [c.rule for c in matched]

    def matching_batch(
        self, events: Iterable[FileEvent]
    ) -> List[Tuple[FileEvent, List[Rule]]]:
        """Match a whole batch, sharing trie walks across the batch.

        Detected bursts are dominated by same-directory runs (one job
        writing many files into one output directory); the shared
        per-``(directory, event type)`` cache walks the trie once per
        run instead of once per event — and composes with the fused
        programs, since cached entries hold the compiled programs and
        only the cheap per-event masks are re-applied.
        """
        cache: dict = {}
        return [(event, self.matching(event, cache)) for event in events]
