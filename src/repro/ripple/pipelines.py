"""Pipeline builder: compose rule chains declaratively.

The paper: "These simple rules can be used to implement complex
pipelines whereby the output of one rule triggers a subsequent action."
Hand-wiring chains means getting each stage's output pattern and the
next stage's trigger pattern to agree; :class:`PipelineBuilder` makes
the handoff explicit — each stage declares the glob its outputs match,
and the next stage triggers on exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.core.events import EventType
from repro.errors import RuleValidationError
from repro.ripple.rules import Action, Rule, Trigger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ripple.service import RippleService


@dataclass(frozen=True)
class PipelineStage:
    """One stage: where it listens, what it matches, what it runs.

    output_pattern:
        Glob matched by the files this stage's action produces; the
        next stage's trigger uses it (None for terminal stages such as
        notifications).
    output_agent / output_prefix:
        Where the outputs land, when the action routes them to another
        agent or directory (default: same agent, same prefix).
    """

    name: str
    agent_id: str
    path_prefix: str
    match_pattern: str
    action: Action
    output_pattern: Optional[str] = None
    output_agent: Optional[str] = None
    output_prefix: Optional[str] = None
    event_types: frozenset = frozenset({EventType.CREATED})


class PipelineBuilder:
    """Builds and installs a chain of rules on a RippleService.

    >>> # doctest-style sketch (see tests for a runnable version):
    >>> # pipeline = (PipelineBuilder("tomo")
    >>> #     .first("stage", "beamline", "/detector", "*.tiff",
    >>> #            transfer_action, output_agent="cluster",
    >>> #            output_prefix="/staging", output_pattern="*.tiff")
    >>> #     .then("reconstruct", analyze_action, output_pattern="*.h5")
    >>> #     .then("notify", email_action))
    >>> # rules = pipeline.install(service)
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.stages: list[PipelineStage] = []

    # -- construction ------------------------------------------------------

    def first(
        self,
        stage_name: str,
        agent_id: str,
        path_prefix: str,
        match_pattern: str,
        action: Action,
        output_pattern: Optional[str] = None,
        output_agent: Optional[str] = None,
        output_prefix: Optional[str] = None,
        event_types: frozenset = frozenset({EventType.CREATED}),
    ) -> "PipelineBuilder":
        """Define the entry stage (what kicks the pipeline off)."""
        if self.stages:
            raise RuleValidationError(
                f"pipeline {self.name!r} already has an entry stage"
            )
        self.stages.append(
            PipelineStage(
                name=stage_name,
                agent_id=agent_id,
                path_prefix=path_prefix,
                match_pattern=match_pattern,
                action=action,
                output_pattern=output_pattern,
                output_agent=output_agent,
                output_prefix=output_prefix,
                event_types=event_types,
            )
        )
        return self

    def then(
        self,
        stage_name: str,
        action: Action,
        output_pattern: Optional[str] = None,
        output_agent: Optional[str] = None,
        output_prefix: Optional[str] = None,
    ) -> "PipelineBuilder":
        """Append a stage triggered by the previous stage's outputs."""
        if not self.stages:
            raise RuleValidationError(
                f"pipeline {self.name!r} needs first() before then()"
            )
        previous = self.stages[-1]
        if previous.output_pattern is None:
            raise RuleValidationError(
                f"stage {previous.name!r} declared no output_pattern; "
                "nothing can chain after it"
            )
        agent_id = previous.output_agent or previous.agent_id
        path_prefix = previous.output_prefix or previous.path_prefix
        self.stages.append(
            PipelineStage(
                name=stage_name,
                agent_id=agent_id,
                path_prefix=path_prefix,
                match_pattern=previous.output_pattern,
                action=action,
                output_pattern=output_pattern,
                output_agent=output_agent,
                output_prefix=output_prefix,
            )
        )
        return self

    # -- installation --------------------------------------------------------

    def install(self, service: "RippleService") -> list[Rule]:
        """Register one rule per stage; returns them in stage order."""
        if not self.stages:
            raise RuleValidationError(f"pipeline {self.name!r} has no stages")
        rules = []
        for stage in self.stages:
            rule = service.add_rule(
                Trigger(
                    agent_id=stage.agent_id,
                    path_prefix=stage.path_prefix,
                    name_pattern=stage.match_pattern,
                    event_types=stage.event_types,
                ),
                stage.action,
                name=f"{self.name}/{stage.name}",
            )
            rules.append(rule)
        return rules

    def describe(self) -> str:
        """A one-line-per-stage summary of the chain."""
        lines = [f"pipeline {self.name!r}:"]
        for index, stage in enumerate(self.stages):
            arrow = "entry" if index == 0 else "  then"
            lines.append(
                f"  {arrow}: [{stage.name}] {stage.match_pattern} under "
                f"{stage.path_prefix} on {stage.agent_id} -> "
                f"{stage.action.action_type}"
            )
        return "\n".join(lines)
