"""Action execution: the agent-side executors and their registry.

The paper lists example actions: "initiating a transfer, sending an
email, running a docker container, or executing a local bash command".
Each is modelled against the in-memory substrates:

* ``transfer`` — Globus-style copy of a file from the triggering agent's
  filesystem to another agent's filesystem (via the service's routing).
* ``email`` — appends a message to the service's outbox.
* ``container`` — runs a named image from the container registry (a
  callable operating on the agent's filesystem) with parameters.
* ``command`` — runs a small shell-like command against the agent's
  filesystem (``copy``, ``move``, ``delete``, ``checksum``, ``touch``).
* ``callable`` — invokes a user-registered Python callable (tests and
  custom integrations).

Executors receive an :class:`ActionRequest` (the rule's action plus the
triggering event) and the executing agent, and return an
:class:`ActionResult`.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.core.events import FileEvent
from repro.errors import ActionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ripple.agent import RippleAgent

_request_ids = itertools.count(1)


@dataclass
class ActionRequest:
    """A routed action: what to run, where, and why (the trigger event)."""

    action_type: str
    agent_id: str
    parameters: dict[str, Any]
    event: FileEvent
    rule_id: int
    request_id: int = field(default_factory=lambda: next(_request_ids))
    attempts: int = 0
    #: Tracing stamp: when the request entered the executing agent's
    #: inbox (set by the agent's tracer on sampled requests; None when
    #: tracing is disabled or the request was not sampled).
    created_ts: Optional[float] = None


@dataclass(frozen=True)
class ActionResult:
    """Outcome of one action execution."""

    request_id: int
    rule_id: int
    success: bool
    detail: str = ""
    output: Any = None


def _expand(template: str, event: FileEvent) -> str:
    """Substitute event fields into parameter templates.

    Supported placeholders: ``{path}``, ``{name}``, ``{dir}``,
    ``{stem}`` (name without its last extension).
    """
    path = event.path or ""
    name = event.name or path.rsplit("/", 1)[-1]
    directory = path.rsplit("/", 1)[0] or "/"
    stem = name.rsplit(".", 1)[0] if "." in name else name
    return template.format(path=path, name=name, dir=directory, stem=stem)


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------


def execute_transfer(request: ActionRequest, agent: "RippleAgent") -> ActionResult:
    """Globus-style transfer: copy the triggering file to another agent.

    Parameters: ``destination_agent``, ``destination_path`` (templated).
    """
    params = request.parameters
    dest_agent_id = params.get("destination_agent")
    dest_template = params.get("destination_path")
    if not dest_agent_id or not dest_template:
        raise ActionError(
            "transfer needs destination_agent and destination_path"
        )
    source_path = params.get("source_path") or request.event.path
    if source_path is None:
        raise ActionError("transfer source path is unresolved")
    source_path = _expand(source_path, request.event)
    dest_path = _expand(dest_template, request.event)
    data = agent.read_file(source_path)
    if agent.service is None:
        raise ActionError("agent is not connected to a service")
    agent.service.deliver_file(dest_agent_id, dest_path, data)
    return ActionResult(
        request.request_id,
        request.rule_id,
        True,
        detail=f"transferred {source_path} -> {dest_agent_id}:{dest_path}",
        output={"bytes": len(data)},
    )


def execute_email(request: ActionRequest, agent: "RippleAgent") -> ActionResult:
    """Send a (simulated) email via the service outbox.

    Parameters: ``to``, ``subject`` (templated), ``body`` (templated).
    """
    params = request.parameters
    to = params.get("to")
    if not to:
        raise ActionError("email needs a 'to' address")
    subject = _expand(params.get("subject", "Ripple notification"), request.event)
    body = _expand(
        params.get("body", "Event {path}"), request.event
    )
    if agent.service is None:
        raise ActionError("agent is not connected to a service")
    agent.service.outbox.append(
        {"to": to, "subject": subject, "body": body, "agent": agent.agent_id}
    )
    return ActionResult(
        request.request_id, request.rule_id, True, detail=f"emailed {to}"
    )


def execute_container(request: ActionRequest, agent: "RippleAgent") -> ActionResult:
    """Run a named container image (a registered callable).

    Parameters: ``image`` plus anything the image expects.  The image
    callable receives ``(agent, event, parameters)``.
    """
    image_name = request.parameters.get("image")
    if not image_name:
        raise ActionError("container needs an 'image' parameter")
    image = agent.containers.get(image_name)
    if image is None:
        raise ActionError(f"unknown container image {image_name!r}")
    output = image(agent, request.event, request.parameters)
    return ActionResult(
        request.request_id,
        request.rule_id,
        True,
        detail=f"ran container {image_name}",
        output=output,
    )


def execute_command(request: ActionRequest, agent: "RippleAgent") -> ActionResult:
    """Run a local command against the agent's filesystem.

    Parameters: ``command`` (copy|move|delete|checksum|touch|mkdir),
    ``src``/``dst`` templated paths as applicable.
    """
    params = request.parameters
    command = params.get("command")
    event = request.event
    src = _expand(params.get("src", event.path or ""), event)
    dst = _expand(params["dst"], event) if "dst" in params else None
    if command == "copy":
        if dst is None:
            raise ActionError("copy needs a dst")
        agent.write_file(dst, agent.read_file(src))
        detail = f"copied {src} -> {dst}"
        output = None
    elif command == "move":
        if dst is None:
            raise ActionError("move needs a dst")
        agent.rename(src, dst)
        detail = f"moved {src} -> {dst}"
        output = None
    elif command == "delete":
        agent.delete_file(src)
        detail = f"deleted {src}"
        output = None
    elif command == "checksum":
        digest = hashlib.sha256(agent.read_file(src)).hexdigest()
        detail = f"sha256({src})"
        output = digest
        if dst is not None:
            agent.write_file(dst, f"{digest}  {src}\n".encode())
    elif command == "touch":
        agent.write_file(src, agent.read_file(src) if agent.exists(src) else b"")
        detail = f"touched {src}"
        output = None
    elif command == "mkdir":
        agent.makedirs(src)
        detail = f"mkdir {src}"
        output = None
    else:
        raise ActionError(f"unknown command {command!r}")
    return ActionResult(
        request.request_id, request.rule_id, True, detail=detail, output=output
    )


def execute_callable(request: ActionRequest, agent: "RippleAgent") -> ActionResult:
    """Invoke a registered Python callable.

    Parameters: ``function`` (registry name); the callable receives
    ``(agent, event, parameters)`` and its return value becomes the
    result output.
    """
    function_name = request.parameters.get("function")
    if not function_name:
        raise ActionError("callable needs a 'function' parameter")
    function = agent.callables.get(function_name)
    if function is None:
        raise ActionError(f"unknown callable {function_name!r}")
    output = function(agent, request.event, request.parameters)
    return ActionResult(
        request.request_id,
        request.rule_id,
        True,
        detail=f"called {function_name}",
        output=output,
    )


Executor = Callable[[ActionRequest, "RippleAgent"], ActionResult]


class ExecutorRegistry:
    """Maps action types to executors; agents consult it to run actions."""

    def __init__(self, executors: Optional[Dict[str, Executor]] = None) -> None:
        self._executors: Dict[str, Executor] = dict(executors or {})

    def register(self, action_type: str, executor: Executor) -> None:
        """Add or replace the executor for *action_type*."""
        self._executors[action_type] = executor

    def get(self, action_type: str) -> Executor:
        """The executor for *action_type* (raises ActionError if absent)."""
        executor = self._executors.get(action_type)
        if executor is None:
            raise ActionError(f"no executor for action type {action_type!r}")
        return executor

    def known_types(self) -> list[str]:
        return sorted(self._executors)


def default_registry() -> ExecutorRegistry:
    """The stock registry covering the paper's example actions."""
    return ExecutorRegistry(
        {
            "transfer": execute_transfer,
            "email": execute_email,
            "container": execute_container,
            "command": execute_command,
            "callable": execute_callable,
        }
    )
