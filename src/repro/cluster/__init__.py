"""Sharded aggregation tier: N aggregator shards as one logical monitor.

Takes the reproduction past the paper's single-aggregator design (its
§6 scaling wall): a deterministic :class:`ShardRouter` spreads each
MDT's report stream across :class:`ClusterMonitor`'s supervised
aggregator shards, and :class:`ClusterClient` scatter-gathers the
per-shard APIs back into one answer.
"""

from repro.cluster.client import (
    AsyncClusterClient,
    ClusterClient,
    ClusterPage,
    decode_cursor,
    encode_cursor,
)
from repro.cluster.monitor import (
    ClusterConfig,
    ClusterMonitor,
    ClusterStats,
    ShardRoutingSink,
)
from repro.cluster.router import ShardMap, ShardRouter, rendezvous_score

__all__ = [
    "AsyncClusterClient",
    "ClusterClient",
    "ClusterPage",
    "decode_cursor",
    "encode_cursor",
    "ClusterConfig",
    "ClusterMonitor",
    "ClusterStats",
    "ShardRoutingSink",
    "ShardMap",
    "ShardRouter",
    "rendezvous_score",
]
