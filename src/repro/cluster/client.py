"""ClusterClient: scatter-gather queries over the per-shard REP APIs.

Each shard answers its own historic-event API exactly as a
single-aggregator monitor would; this client fans a query out to every
shard and reassembles one logical answer:

* ``events_since``/``query`` return ``(shard, seq, event)`` triples
  merged into the cluster's **total order** — shards in membership
  order, then per-shard sequence order.  (Per-shard seqs are each
  monotone but mutually incomparable; the ``(shard, seq)`` pair is the
  cluster-wide cursor, exactly what consumers' per-shard watermarks
  track.)
* ``recent`` gathers each shard's tail, keeps the *count* newest
  events by timestamp, and returns them in the same total order.
* ``stats`` sums every numeric counter across the per-shard registry
  snapshots (the per-shard answers ride along unsummed).
* ``catch_up`` pages every shard's ``since`` API from the consumer's
  per-shard watermark — the cluster-wide recovery primitive.

Built purely from :class:`~repro.core.client.MonitorClient` instances,
one per shard, so deterministic (pumped) and live (API-thread) modes
both work unchanged.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.core.client import MonitorClient
from repro.core.events import EventType, FileEvent

__all__ = ["ClusterClient"]

#: A cluster cursor: either one seq applied to every shard, or an
#: explicit per-shard mapping (missing shards default to 0).
Cursors = Union[int, dict[str, int]]


class ClusterClient:
    """Query-only, scatter-gather access to a sharded cluster."""

    def __init__(self, clients: dict[str, MonitorClient]) -> None:
        if not clients:
            raise ValueError("a ClusterClient needs at least one shard")
        #: Per-shard clients in membership order — the order that
        #: defines the merged total order.
        self.clients = dict(clients)
        self._order = {sid: i for i, sid in enumerate(self.clients)}

    @classmethod
    def for_cluster(cls, cluster, timeout: float = 5.0) -> "ClusterClient":
        """Build a client over every shard of a ClusterMonitor
        (deterministic mode: requests pumped inline per shard)."""
        return cls(
            {
                shard_id: MonitorClient.for_aggregator(
                    cluster.context, shard, timeout=timeout
                )
                for shard_id, shard in getattr(
                    cluster, "shard_handles", cluster.shards
                ).items()
            }
        )

    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(self.clients)

    def _merge(
        self, per_shard: dict[str, list[tuple[int, FileEvent]]]
    ) -> list[tuple[str, int, FileEvent]]:
        """Flatten per-shard pages into the (shard, seq) total order."""
        merged = [
            (shard_id, seq, event)
            for shard_id, page in per_shard.items()
            for seq, event in page
        ]
        merged.sort(key=lambda entry: (self._order[entry[0]], entry[1]))
        return merged

    # -- cursors -----------------------------------------------------------

    def _cursor(self, cursors: Cursors, shard_id: str) -> int:
        if isinstance(cursors, dict):
            return cursors.get(shard_id, 0)
        return cursors

    def last_seq(self) -> dict[str, int]:
        """Each shard's highest stored sequence number — the cluster
        cursor to resume :meth:`events_since` from."""
        return {
            shard_id: client.last_seq()
            for shard_id, client in self.clients.items()
        }

    # -- queries -----------------------------------------------------------

    def events_since(
        self, cursors: Cursors = 0, page_size: int = 1024
    ) -> list[tuple[str, int, FileEvent]]:
        """Every event past the cursor on every shard, merged.

        *cursors* is one seq for all shards or a per-shard dict (the
        shape :meth:`last_seq` returns).  Each shard is paged with
        bounded requests, so no reply materialises a whole window.
        """
        return self._merge(
            {
                shard_id: client.events_since_all(
                    self._cursor(cursors, shard_id), page_size=page_size
                )
                for shard_id, client in self.clients.items()
            }
        )

    def recent(self, count: int) -> list[tuple[str, int, FileEvent]]:
        """The *count* newest events cluster-wide.

        Gathers each shard's own ``recent(count)`` tail (any shard
        could hold all of the newest events), keeps the newest *count*
        by event timestamp, and returns them in ``(shard, seq)``
        order.
        """
        gathered = []
        for shard_id, client in self.clients.items():
            for seq, event in client.recent(count):
                gathered.append((shard_id, seq, event))
        gathered.sort(
            key=lambda e: (e[2].timestamp, self._order[e[0]], e[1])
        )
        newest = gathered[-count:] if count > 0 else []
        newest.sort(key=lambda e: (self._order[e[0]], e[1]))
        return newest

    def query(
        self,
        path_prefix: Optional[str] = None,
        event_type: Optional[EventType] = None,
        since_time: Optional[float] = None,
        until_time: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[str, int, FileEvent]]:
        """Filtered retrieval scattered to every shard and merged.

        *limit* applies per shard at the store scan (bounding each
        reply) and again to the merged result.
        """
        merged = self._merge(
            {
                shard_id: client.query(
                    path_prefix=path_prefix,
                    event_type=event_type,
                    since_time=since_time,
                    until_time=until_time,
                    limit=limit,
                )
                for shard_id, client in self.clients.items()
            }
        )
        return merged[:limit] if limit is not None else merged

    def activity_summary(self, path_prefix: str = "/") -> dict[str, int]:
        """Counts by event type under *path_prefix*, cluster-wide."""
        counts: dict[str, int] = {}
        for _shard, _seq, event in self.query(path_prefix=path_prefix):
            key = event.event_type.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    # -- aggregation -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Summed counters plus the raw per-shard stats answers.

        ``totals`` sums every numeric metric present in any shard's
        registry snapshot (``events_stored``, ``api_requests`` …);
        non-numeric entries (the ``health`` record) stay per-shard
        only.
        """
        per_shard = {
            shard_id: client.stats()
            for shard_id, client in self.clients.items()
        }
        totals: dict[str, Any] = {}
        for snapshot in per_shard.values():
            for name, value in snapshot.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                totals[name] = totals.get(name, 0) + value
        return {"totals": totals, "per_shard": per_shard}

    def metrics(self) -> dict[str, Any]:
        """The cluster's metrics exposition.

        Every shard shares one registry, so any shard's ``metrics``
        answer already covers the whole tree — this asks the first
        shard and returns its exposition verbatim.
        """
        first = next(iter(self.clients.values()))
        return first.metrics()

    # -- recovery ----------------------------------------------------------

    def catch_up(self, consumer, page_size: int = 1024) -> int:
        """Backfill *consumer* from every shard's historic API.

        Pages each shard's ``since`` API from the consumer's watermark
        for that shard, delivering through the consumer's dedup with
        the shard as the source — the cluster analogue of
        :meth:`Consumer.catch_up`.  Returns the number of events
        fetched (the consumer's watermarks decide what is new).
        """
        recovered = 0
        for shard_id, client in self.clients.items():
            while True:
                page = client.events_since(
                    consumer.watermark(shard_id), limit=page_size
                )
                for seq, event in page:
                    consumer.deliver(seq, event, source=shard_id)
                    # Advance over redeliveries too, so paging ends.
                    consumer.advance_watermark(shard_id, seq)
                recovered += len(page)
                if len(page) < page_size:
                    break
        return recovered

    def close(self) -> None:
        for client in self.clients.values():
            client.close()
