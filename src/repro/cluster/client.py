"""ClusterClient: scatter-gather queries over the per-shard REP APIs.

Each shard answers its own historic-event API exactly as a
single-aggregator monitor would; this client fans a query out to every
shard and reassembles one logical answer:

* ``events_since``/``query`` return ``(shard, seq, event)`` triples
  merged into the cluster's **total order** — shards in membership
  order, then per-shard sequence order.  (Per-shard seqs are each
  monotone but mutually incomparable; the ``(shard, seq)`` pair is the
  cluster-wide cursor, exactly what consumers' per-shard watermarks
  track.)
* ``recent`` gathers each shard's tail, keeps the *count* newest
  events by timestamp, and returns them in the same total order.
* ``stats`` sums every numeric counter across the per-shard registry
  snapshots (the per-shard answers ride along unsummed).
* ``catch_up`` pages every shard's ``since`` API from the consumer's
  per-shard watermark — the cluster-wide recovery primitive.

Built purely from :class:`~repro.core.client.MonitorClient` instances,
one per shard, so deterministic (pumped) and live (API-thread) modes
both work unchanged.

**Opaque cursors.**  Callers used to hold per-shard watermark dicts to
resume paging; now the per-shard state travels as one *opaque cursor*
string — URL-safe base64 of the watermark map — minted by
:func:`encode_cursor` and consumed by :meth:`ClusterClient.page` /
:meth:`events_since_all` / :meth:`catch_up`.  A cursor is resumable
across client instances (and across the HTTP gateway boundary, which
is why it exists): feed the cursor a previous page returned and you
get everything stored after it, exactly once per shard stream.  The
merged order within one page is the ``(shard, seq)`` total order;
events appended to an *earlier* shard after a later shard was paged
surface on the next resume, so cross-shard order is only meaningful
within a page — per-shard order is strict always.

:class:`AsyncClusterClient` is the asyncio facade: every blocking
scatter-gather call runs on the default executor behind one lock (the
underlying REQ sockets are strictly lock-step), so async services —
the gateway tier — await cluster answers without stalling their loop.
"""

from __future__ import annotations

import asyncio
import base64
import functools
import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from repro.core.client import MonitorClient
from repro.core.events import EventType, FileEvent

__all__ = [
    "AsyncClusterClient",
    "ClusterClient",
    "ClusterPage",
    "decode_cursor",
    "encode_cursor",
]

#: A cluster cursor: either one seq applied to every shard, or an
#: explicit per-shard mapping (missing shards default to 0).
Cursors = Union[int, dict[str, int]]


def encode_cursor(watermarks: Mapping[str, int]) -> str:
    """Pack per-shard watermarks into one opaque resumable token."""
    payload = json.dumps(
        {shard: int(seq) for shard, seq in sorted(watermarks.items())},
        separators=(",", ":"),
    ).encode("ascii")
    return base64.urlsafe_b64encode(payload).decode("ascii").rstrip("=")


def decode_cursor(
    token: Optional[str], shard_ids: Optional[tuple[str, ...]] = None
) -> dict[str, int]:
    """Unpack an opaque cursor back into per-shard watermarks.

    ``None``/empty means "from the beginning" ({}).  Raises
    :class:`ValueError` on malformed tokens and, when *shard_ids* is
    given, on watermarks naming unknown shards — a cursor from another
    cluster must fail loudly, not silently replay everything.
    """
    if not token:
        return {}
    try:
        padded = token + "=" * (-len(token) % 4)
        data = json.loads(base64.urlsafe_b64decode(padded.encode("ascii")))
    except Exception:
        raise ValueError(f"malformed cursor {token!r}") from None
    if not isinstance(data, dict):
        raise ValueError(f"malformed cursor {token!r}")
    watermarks: dict[str, int] = {}
    for shard, seq in data.items():
        if not isinstance(shard, str) or not isinstance(seq, int) or seq < 0:
            raise ValueError(f"malformed cursor {token!r}")
        watermarks[shard] = seq
    if shard_ids is not None:
        unknown = set(watermarks) - set(shard_ids)
        if unknown:
            raise ValueError(
                f"cursor names unknown shard(s) {sorted(unknown)}"
            )
    return watermarks


@dataclass(frozen=True)
class ClusterPage:
    """One bounded page of the cluster-wide event sequence.

    ``cursor`` resumes after the page's last consumed event;
    ``exhausted`` is True when the page provably drained every shard
    at request time (a False may still be followed by an empty page).
    """

    entries: tuple[tuple[str, int, FileEvent], ...]
    cursor: str
    exhausted: bool

    def __post_init__(self) -> None:
        if not isinstance(self.entries, tuple):
            object.__setattr__(self, "entries", tuple(self.entries))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)


class ClusterClient:
    """Query-only, scatter-gather access to a sharded cluster."""

    def __init__(self, clients: dict[str, MonitorClient]) -> None:
        if not clients:
            raise ValueError("a ClusterClient needs at least one shard")
        #: Per-shard clients in membership order — the order that
        #: defines the merged total order.
        self.clients = dict(clients)
        self._order = {sid: i for i, sid in enumerate(self.clients)}

    @classmethod
    def for_cluster(
        cls, cluster, timeout: float = 5.0, live: bool = False
    ) -> "ClusterClient":
        """Build a client over every shard of a ClusterMonitor.

        Deterministic mode (the default) pumps each shard's API inline
        per request; ``live=True`` instead issues real REQ/REP requests
        answered by the shards' running API threads — required when a
        service (the gateway) queries a *started* cluster, where inline
        pumping would race the shard's own worker.
        """
        if live:
            return cls(
                {
                    shard_id: MonitorClient(
                        cluster.context, config, timeout=timeout
                    )
                    for shard_id, config in cluster.shard_configs.items()
                }
            )
        return cls(
            {
                shard_id: MonitorClient.for_aggregator(
                    cluster.context, shard, timeout=timeout
                )
                for shard_id, shard in getattr(
                    cluster, "shard_handles", cluster.shards
                ).items()
            }
        )

    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(self.clients)

    def _merge(
        self, per_shard: dict[str, list[tuple[int, FileEvent]]]
    ) -> list[tuple[str, int, FileEvent]]:
        """Flatten per-shard pages into the (shard, seq) total order."""
        merged = [
            (shard_id, seq, event)
            for shard_id, page in per_shard.items()
            for seq, event in page
        ]
        merged.sort(key=lambda entry: (self._order[entry[0]], entry[1]))
        return merged

    # -- cursors -----------------------------------------------------------

    def _cursor(self, cursors: Cursors, shard_id: str) -> int:
        if isinstance(cursors, dict):
            return cursors.get(shard_id, 0)
        return cursors

    def last_seq(self) -> dict[str, int]:
        """Each shard's highest stored sequence number — the cluster
        cursor to resume :meth:`events_since` from."""
        return {
            shard_id: client.last_seq()
            for shard_id, client in self.clients.items()
        }

    # -- queries -----------------------------------------------------------

    def head_cursor(self) -> str:
        """The opaque cursor at the current cluster head — resume from
        here to stream only events stored after this call."""
        return encode_cursor(self.last_seq())

    def cursor_for(self, consumer) -> str:
        """A consumer's per-shard watermarks as an opaque cursor."""
        return encode_cursor(
            {shard_id: consumer.watermark(shard_id) for shard_id in self.clients}
        )

    def page(
        self, cursor: Optional[str] = None, limit: int = 1024
    ) -> ClusterPage:
        """One bounded page of events past *cursor*, plus its resume
        token.

        Shards are paged in membership order; the returned cursor
        reflects exactly the entries consumed, so paging never skips
        or duplicates an event no matter where the page boundary
        falls.  ``None`` starts from the beginning of retention.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1: {limit}")
        resumed = decode_cursor(cursor, self.shard_ids)
        watermarks = {
            shard_id: resumed.get(shard_id, 0) for shard_id in self.clients
        }
        out: list[tuple[str, int, FileEvent]] = []
        exhausted = True
        shard_list = list(self.clients.items())
        for index, (shard_id, client) in enumerate(shard_list):
            drained = False
            while len(out) < limit and not drained:
                need = limit - len(out)
                chunk = client.events_since(watermarks[shard_id], limit=need)
                for seq, event in chunk:
                    out.append((shard_id, seq, event))
                    watermarks[shard_id] = seq
                drained = len(chunk) < need
            if len(out) >= limit:
                exhausted = drained and index == len(shard_list) - 1
                break
        return ClusterPage(tuple(out), encode_cursor(watermarks), exhausted)

    def events_since_all(
        self, cursor: Optional[str] = None, page_size: int = 1024
    ) -> tuple[list[tuple[str, int, FileEvent]], str]:
        """Everything past *cursor* in bounded pages, plus the resume
        token — the cluster analogue of
        :meth:`MonitorClient.events_since_all`, minus the per-shard
        bookkeeping callers used to carry themselves."""
        collected: list[tuple[str, int, FileEvent]] = []
        while True:
            page = self.page(cursor, limit=page_size)
            collected.extend(page.entries)
            cursor = page.cursor
            if page.exhausted:
                return collected, cursor

    def events_since(
        self, cursors: Cursors = 0, page_size: int = 1024
    ) -> list[tuple[str, int, FileEvent]]:
        """Every event past the cursor on every shard, merged.

        *cursors* is one seq for all shards or a per-shard dict (the
        shape :meth:`last_seq` returns).  Each shard is paged with
        bounded requests, so no reply materialises a whole window.
        """
        return self._merge(
            {
                shard_id: client.events_since_all(
                    self._cursor(cursors, shard_id), page_size=page_size
                )
                for shard_id, client in self.clients.items()
            }
        )

    def recent(self, count: int) -> list[tuple[str, int, FileEvent]]:
        """The *count* newest events cluster-wide.

        Gathers each shard's own ``recent(count)`` tail (any shard
        could hold all of the newest events), keeps the newest *count*
        by event timestamp, and returns them in ``(shard, seq)``
        order.
        """
        gathered = []
        for shard_id, client in self.clients.items():
            for seq, event in client.recent(count):
                gathered.append((shard_id, seq, event))
        gathered.sort(
            key=lambda e: (e[2].timestamp, self._order[e[0]], e[1])
        )
        newest = gathered[-count:] if count > 0 else []
        newest.sort(key=lambda e: (self._order[e[0]], e[1]))
        return newest

    def query(
        self,
        path_prefix: Optional[str] = None,
        event_type: Optional[EventType] = None,
        since_time: Optional[float] = None,
        until_time: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> list[tuple[str, int, FileEvent]]:
        """Filtered retrieval scattered to every shard and merged.

        *limit* applies per shard at the store scan (bounding each
        reply) and again to the merged result.
        """
        merged = self._merge(
            {
                shard_id: client.query(
                    path_prefix=path_prefix,
                    event_type=event_type,
                    since_time=since_time,
                    until_time=until_time,
                    limit=limit,
                )
                for shard_id, client in self.clients.items()
            }
        )
        return merged[:limit] if limit is not None else merged

    def activity_summary(self, path_prefix: str = "/") -> dict[str, int]:
        """Counts by event type under *path_prefix*, cluster-wide."""
        counts: dict[str, int] = {}
        for _shard, _seq, event in self.query(path_prefix=path_prefix):
            key = event.event_type.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    # -- aggregation -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Summed counters plus the raw per-shard stats answers.

        ``totals`` sums every numeric metric present in any shard's
        registry snapshot (``events_stored``, ``api_requests`` …);
        non-numeric entries (the ``health`` record) stay per-shard
        only.
        """
        per_shard = {
            shard_id: client.stats()
            for shard_id, client in self.clients.items()
        }
        totals: dict[str, Any] = {}
        for snapshot in per_shard.values():
            for name, value in snapshot.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                totals[name] = totals.get(name, 0) + value
        return {"totals": totals, "per_shard": per_shard}

    def metrics(self) -> dict[str, Any]:
        """The cluster's metrics exposition.

        Every shard shares one registry, so any shard's ``metrics``
        answer already covers the whole tree — this asks the first
        shard and returns its exposition verbatim.
        """
        first = next(iter(self.clients.values()))
        return first.metrics()

    # -- recovery ----------------------------------------------------------

    def catch_up(
        self,
        consumer,
        page_size: int = 1024,
        cursor: Optional[str] = None,
    ) -> int:
        """Backfill *consumer* from every shard's historic API.

        Pages the cluster sequence through :meth:`page` — from
        *cursor* when given, else from the consumer's own per-shard
        watermarks — delivering through the consumer's dedup with the
        shard as the source; the cluster analogue of
        :meth:`Consumer.catch_up`.  Returns the number of events
        fetched (the consumer's watermarks decide what is new); the
        resumable position afterwards is :meth:`cursor_for`, so a
        caller restarting later needs the cursor string, not per-shard
        state of its own.
        """
        if cursor is None:
            cursor = self.cursor_for(consumer)
        recovered = 0
        while True:
            page = self.page(cursor, limit=page_size)
            for shard_id, seq, event in page.entries:
                consumer.deliver(seq, event, source=shard_id)
                # Advance over redeliveries too, so paging ends.
                consumer.advance_watermark(shard_id, seq)
            recovered += len(page)
            cursor = page.cursor
            if page.exhausted:
                return recovered

    def as_async(self) -> "AsyncClusterClient":
        """This client behind an awaitable facade (gateway tier)."""
        return AsyncClusterClient(self)

    def close(self) -> None:
        for client in self.clients.values():
            client.close()


class AsyncClusterClient:
    """Awaitable facade over a :class:`ClusterClient`.

    Every call runs the blocking scatter-gather on the event loop's
    default executor, serialised by one async lock — REQ/REP sockets
    are strictly lock-step, so two in-flight requests on one client
    would interleave replies.  Handlers that need parallel queries use
    separate underlying clients.
    """

    def __init__(self, client: ClusterClient) -> None:
        self.client = client
        self._lock = asyncio.Lock()

    @property
    def shard_ids(self) -> tuple[str, ...]:
        return self.client.shard_ids

    async def _call(self, fn, /, *args, **kwargs):
        async with self._lock:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                None, functools.partial(fn, *args, **kwargs)
            )

    async def page(
        self, cursor: Optional[str] = None, limit: int = 1024
    ) -> ClusterPage:
        return await self._call(self.client.page, cursor, limit)

    async def events_since_all(
        self, cursor: Optional[str] = None, page_size: int = 1024
    ) -> tuple[list[tuple[str, int, FileEvent]], str]:
        return await self._call(
            self.client.events_since_all, cursor, page_size
        )

    async def head_cursor(self) -> str:
        return await self._call(self.client.head_cursor)

    async def last_seq(self) -> dict[str, int]:
        return await self._call(self.client.last_seq)

    async def recent(self, count: int) -> list[tuple[str, int, FileEvent]]:
        return await self._call(self.client.recent, count)

    async def query(self, **kwargs) -> list[tuple[str, int, FileEvent]]:
        return await self._call(functools.partial(self.client.query, **kwargs))

    async def stats(self) -> dict[str, Any]:
        return await self._call(self.client.stats)

    def close(self) -> None:
        self.client.close()
