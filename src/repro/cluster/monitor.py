"""ClusterMonitor: N aggregator shards behind one logical monitor.

The paper's monitor funnels every collector into a single aggregator —
its §6 scaling wall.  This module runs **N aggregator shards under one
supervisor** and presents them as one monitor:

* Each shard is a stock :class:`~repro.core.aggregator.Aggregator`
  with its own inbound/PUB/API endpoints and a ``shard_label`` stamped
  on every published batch (consumers keep per-shard watermarks).
* Collectors are stock :class:`~repro.core.collector.Collector`\\ s
  whose sink is a :class:`ShardRoutingSink`: each report batch (always
  a single MDT's events) is routed to its owning shard by rendezvous
  hashing over the :class:`~repro.cluster.router.ShardRouter`'s
  versioned map.  The wire formats (``ReportBatch``/``EventBatch``)
  are reused unchanged.
* Failover is the existing supervision story, cluster-wide: a crashed
  shard is restarted by the supervisor; its inbound mailbox and the
  crash-safe pump requeue preserve drained-but-unstored batches, and
  collectors re-report anything unpurged — at-least-once delivery
  holds across shard crashes.

One metrics registry and one tracer span the whole tree, so per-shard
counters appear side by side under their shard scopes
(``shard0.events_stored`` …) in one snapshot / Prometheus exposition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.cluster.router import ShardMap, ShardRouter
from repro.core.aggregator import Aggregator, AggregatorConfig
from repro.core.collector import Collector, CollectorConfig
from repro.core.consumer import Consumer, EventCallback
from repro.core.events import FileEvent
from repro.core.monitor import PushSink
from repro.core.storage import shard_store_url
from repro.lustre.fid2path import FidResolver
from repro.lustre.filesystem import LustreFilesystem
from repro.metrics.adaptive import AdaptiveFlushController, FlushTuning
from repro.metrics.registry import MetricsRegistry
from repro.metrics.tracing import TRACE_SCOPE, Tracer, make_tracer
from repro.msgq import Transport, make_transport
from repro.runtime import RestartPolicy, ServiceCrash, Supervisor
from repro.telemetry import TelemetryConfig, TelemetryPlane

__all__ = [
    "ClusterConfig",
    "ClusterMonitor",
    "ClusterStats",
    "ShardRoutingSink",
]


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster-wide configuration.

    ``aggregator`` is the *base* shard config: every shard derives its
    own endpoints (``inproc://<namespace>.<shard>.{reports,events,api}``)
    and ``shard_label`` from it, inheriting all other knobs (store
    size, flush policy, tracing rate …) unchanged.  A durable
    ``store_url`` (``segments:///path``) is likewise derived per shard
    — each shard logs to ``<path>/<shard_id>`` so restarted shards
    (and respawned multiproc children) recover their own history.
    """

    num_shards: int = 2
    #: Endpoint namespace, so several clusters can share one Context.
    namespace: str = "cluster"
    collector: CollectorConfig = field(default_factory=CollectorConfig)
    aggregator: AggregatorConfig = field(default_factory=AggregatorConfig)
    shared_resolver: bool = False
    report_timeout: float = 5.0
    restart_policy: RestartPolicy = field(default_factory=RestartPolicy)
    supervise_interval: float = 0.01
    #: Transport backend: ``"inproc"`` runs every shard as an
    #: in-process Aggregator (the default, byte-identical to the
    #: pre-transport cluster); ``"multiproc"`` runs each shard's
    #: store+publish work in its own child process behind a
    #: :class:`~repro.msgq.multiproc.ProcessShardBridge`.
    transport: str = "inproc"
    #: When True, an :class:`~repro.metrics.AdaptiveFlushController`
    #: retunes each shard's flush batching from inbound occupancy and
    #: the ``pipeline.publish`` stage histogram.
    autotune: bool = False
    autotune_interval: float = 0.25
    tuning: FlushTuning = field(default_factory=FlushTuning)
    #: TCP port for the operator telemetry plane's HTTP scrape server
    #: (``/metrics``, ``/health``, ``/alerts``); ``None`` leaves the
    #: plane off, ``0`` binds an ephemeral port (read it back from
    #: ``monitor.telemetry.port``).
    telemetry_port: int | None = None
    #: Full telemetry-plane configuration; overrides ``telemetry_port``.
    telemetry: TelemetryConfig | None = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1: {self.num_shards}")
        if self.transport not in ("inproc", "multiproc"):
            raise ValueError(
                f"transport must be 'inproc' or 'multiproc': "
                f"{self.transport!r}"
            )


class ShardRoutingSink:
    """An EventSink that routes each report batch to its owning shard.

    Every collector report carries events from exactly one MDT (the
    collector reports per MDT), so the batch routes *whole* by its
    first event's key — no splitting, and an MDT's events always land
    on one shard, keeping per-shard sequence numbers meaningful per
    MDT stream.
    """

    def __init__(
        self, router: ShardRouter, sinks: dict[str, PushSink]
    ) -> None:
        self.router = router
        self.sinks = sinks

    @staticmethod
    def route_key(payload) -> str:
        """The routing key of one report batch (its first event)."""
        event: FileEvent = payload[0]
        if event.mdt_index is not None:
            return f"mdt:{event.mdt_index}"
        # Local-filesystem events carry no MDT identity; their path
        # keeps related events together well enough.
        return f"path:{event.path or event.name or ''}"

    def shard_for(self, payload) -> str:
        return self.router.route(self.route_key(payload))

    def send(self, payload) -> None:
        self.sinks[self.shard_for(payload)].send(payload)

    def send_many(self, payloads) -> None:
        """Group chunks by owning shard, one fabric round-trip each."""
        groups: dict[str, list] = {}
        for payload in payloads:
            groups.setdefault(self.shard_for(payload), []).append(payload)
        for shard, group in groups.items():
            sink = self.sinks[shard]
            if len(group) == 1:
                sink.send(group[0])
            else:
                sink.send_many(group)


@dataclass
class ClusterStats:
    """Cluster-wide pipeline counters (derived from the registry)."""

    records_read: int = 0
    events_reported: int = 0
    events_stored: int = 0
    events_published: int = 0
    store_len: int = 0
    #: Current routing-map version (bumps on retire/restore).
    shard_map_version: int = 1
    per_shard: dict = field(default_factory=dict)
    per_collector: dict = field(default_factory=dict)
    services: dict = field(default_factory=dict)
    stage_latency: dict = field(default_factory=dict)


class ClusterMonitor:
    """N supervised aggregator shards presented as one logical monitor.

    Mirrors :class:`~repro.core.monitor.LustreMonitor`'s surface —
    ``subscribe``/``pump``/``drain``/``start``/``stop``/``shutdown``/
    ``health``/``stats`` — so callers scale from one aggregator to N
    by swapping the class.
    """

    def __init__(
        self,
        filesystem: LustreFilesystem,
        config: ClusterConfig | None = None,
        context: Transport | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.fs = filesystem
        self.config = config or ClusterConfig()
        self.context = context or make_transport(self.config.transport)
        self.registry = registry or MetricsRegistry()
        self.tracer: Tracer = make_tracer(
            self.registry,
            self.config.aggregator.trace_sample_rate,
            clock=getattr(filesystem, "clock", None),
        )
        self.shard_ids = tuple(
            f"shard{i}" for i in range(self.config.num_shards)
        )
        self.router = ShardRouter(ShardMap(self.shard_ids))
        self.supervisor = Supervisor(
            "cluster",
            policy=self.config.restart_policy,
            registry=self.registry,
            poll_interval=self.config.supervise_interval,
        )
        #: Per-shard aggregator configs (derived endpoints + label).
        self.shard_configs: dict[str, AggregatorConfig] = {}
        #: In-process shard aggregators, keyed by shard id (empty on
        #: the multiproc backend — look there for the bridges).
        self.shards: dict[str, Aggregator] = {}
        #: Process-shard bridges, keyed by shard id (multiproc only).
        self.bridges: dict = {}
        #: Every shard handle regardless of backend — the pump/stats/
        #: client surface iterates this.
        self.shard_handles: dict = {}
        self._shard_keys: list[str] = []
        namespace = self.config.namespace
        multiproc = self.config.transport == "multiproc"
        for shard_id in self.shard_ids:
            shard_config = replace(
                self.config.aggregator,
                inbound_endpoint=f"inproc://{namespace}.{shard_id}.reports",
                publish_endpoint=f"inproc://{namespace}.{shard_id}.events",
                api_endpoint=f"inproc://{namespace}.{shard_id}.api",
                shard_label=shard_id,
                # Shards never share a log directory: a durable base
                # store_url gains the shard id as a path component.
                store_url=shard_store_url(
                    self.config.aggregator.store_url, shard_id
                ),
            )
            if multiproc:
                shard = self._make_bridge(shard_id, shard_config)
                self.bridges[shard_id] = shard
            else:
                shard = Aggregator(
                    self.context,
                    shard_config,
                    registry=self.registry,
                    name=shard_id,
                    tracer=self.tracer,
                )
                self.shards[shard_id] = shard
            self.shard_configs[shard_id] = shard_config
            self.shard_handles[shard_id] = shard
            self._shard_keys.append(self.supervisor.add_child(shard))
        shared = (
            FidResolver(filesystem) if self.config.shared_resolver else None
        )
        self.collectors: list[Collector] = []
        for server in filesystem.cluster.servers:
            sinks: dict[str, PushSink] = {}
            for shard_id, shard_config in self.shard_configs.items():
                push = self.context.push(
                    hwm=self.config.aggregator.hwm
                ).connect(shard_config.inbound_endpoint)
                sinks[shard_id] = PushSink(
                    push, timeout=self.config.report_timeout
                )
            collector = Collector(
                name=server.name,
                filesystem=filesystem,
                mds=server,
                sink=ShardRoutingSink(self.router, sinks),
                config=self.config.collector,
                resolver=shared or FidResolver(filesystem),
                registry=self.registry,
                tracer=self.tracer,
            )
            self.supervisor.add_child(
                collector, after=list(self._shard_keys),
                key=collector.metrics.scope,
            )
            self.collectors.append(collector)
        self.consumers: list[Consumer] = []
        #: The closed-loop flush tuner (``config.autotune``); drive it
        #: deterministically with :meth:`autotune_once` or let the
        #: supervisor run it as a periodic service.
        self.autotuner: AdaptiveFlushController | None = None
        if self.config.autotune:
            self.autotuner = AdaptiveFlushController(
                self.registry,
                targets=dict(self.shard_handles),
                tuning=self.config.tuning,
                interval=self.config.autotune_interval,
            )
            self.supervisor.add_child(self.autotuner)
        #: The operator telemetry plane (scrape server + alert
        #: evaluator + flight recorder); its services run under this
        #: cluster's supervisor.  ``None`` unless configured.  On the
        #: multiproc backend the child→parent metrics relay puts every
        #: shard child's series in the scraped exposition too.
        self.telemetry: TelemetryPlane | None = None
        telemetry_config = self.config.telemetry
        if telemetry_config is None and self.config.telemetry_port is not None:
            telemetry_config = TelemetryConfig(port=self.config.telemetry_port)
        if telemetry_config is not None:
            self.telemetry = TelemetryPlane(
                self.registry,
                telemetry_config,
                health_provider=self.supervisor.health,
            )
            self.telemetry.add_to(self.supervisor)

    def _make_bridge(self, shard_id: str, shard_config: AggregatorConfig):
        """One process-shard bridge, via the transport's factory when it
        has one (so the transport can track and close its bridges)."""
        factory = getattr(self.context, "process_shard", None)
        if factory is not None:
            return factory(shard_id, shard_config, registry=self.registry)
        from repro.msgq.multiproc import ProcessShardBridge

        return ProcessShardBridge(
            shard_id, shard_config, self.context, registry=self.registry
        )

    def autotune_once(self) -> int:
        """One adaptive-flush control step (0 when autotune is off)."""
        if self.autotuner is None:
            return 0
        return self.autotuner.tick()

    # -- consumers -----------------------------------------------------------

    def subscribe(
        self,
        callback: EventCallback,
        name: str = "consumer",
        batch_callback=None,
    ) -> Consumer:
        """Attach a consumer subscribed to *every* shard's live stream.

        One SUB socket connected to all shard PUB endpoints; published
        batches carry their ``shard`` label, so the consumer's
        per-shard watermarks dedup each stream independently.  The
        consumer's ``api`` socket points at shard0 — cluster-wide
        catch-up goes through ``ClusterClient.catch_up``, which pages
        every shard.  *batch_callback* passes through to the
        :class:`~repro.core.consumer.Consumer`; a two-parameter
        callback also receives each batch's shard label (the gateway
        fan-out hub consumes the stream this way).
        """
        first = self.shard_configs[self.shard_ids[0]]
        consumer = Consumer(
            self.context,
            callback,
            config=first,
            name=name,
            registry=self.registry,
            tracer=self.tracer,
            batch_callback=batch_callback,
        )
        for shard_id in self.shard_ids[1:]:
            consumer.subscription.connect(
                self.shard_configs[shard_id].publish_endpoint
            )
        self.consumers.append(consumer)
        self.supervisor.add_child(
            consumer, before=list(self._shard_keys),
            key=consumer.metrics.scope,
        )
        return consumer

    # -- deterministic stepping ----------------------------------------------

    def pump(self, consumer_poll: bool = True) -> int:
        """One synchronous sweep: collect, pump every shard, deliver."""
        for collector in self.collectors:
            collector.poll_once()
        handled = 0
        for shard in self.shard_handles.values():
            handled += shard.pump_once()
        if consumer_poll:
            for consumer in self.consumers:
                consumer.poll_once()
        return handled

    def drain(self, max_rounds: int = 10_000, settle: float = 0.002) -> int:
        """Pump until no events remain anywhere in the pipeline.

        On the multiproc backend a quiet pump does not mean done — a
        batch may still be crossing a process boundary — so the drain
        keeps settling while any bridge reports in-flight work.
        """
        total = 0
        for _ in range(max_rounds):
            moved = self.pump()
            total += moved
            if moved == 0:
                if any(
                    getattr(shard, "busy", False)
                    for shard in self.shard_handles.values()
                ):
                    time.sleep(settle)
                    continue
                break
        return total

    # -- failover ------------------------------------------------------------

    def crash_shard(self, shard_id: str) -> None:
        """Arm a one-shot injected crash on *shard_id*'s store path.

        The next batch that shard tries to store raises
        :class:`~repro.runtime.ServiceCrash` *before* anything is
        stored — the worst spot for the old pump (batch drained from
        the mailbox, nothing durable yet).  The crash-safe pump
        requeues the batch, the supervisor restarts the shard, and the
        replay stores it — which is what the failover tests assert.

        On the multiproc backend the equivalent fault is the real
        thing: the shard's child process is SIGKILLed; the bridge
        respawns it and replays unacked batches at their original
        sequence numbers.
        """
        handle = self.shard_handles[shard_id]
        kill = getattr(handle, "kill_child", None)
        if kill is not None:
            kill()
            return
        store = handle.store
        original = store.extend

        def crash_once(events):
            store.extend = original
            raise ServiceCrash(f"injected crash on {shard_id}")

        store.extend = crash_once

    def retire_shard(self, shard_id: str) -> ShardMap:
        """Route *shard_id*'s keys away (planned drain / dead shard).

        Only that shard's keys move (rendezvous property); its stored
        history stays queryable through the scatter-gather client.
        Returns the map that was replaced.
        """
        return self.router.retire(shard_id)

    def restore_shard(self, shard_id: str) -> ShardMap:
        """Route *shard_id*'s keys back after recovery."""
        return self.router.restore(shard_id)

    # -- live supervised mode --------------------------------------------------

    def start(self) -> None:
        """Start the supervision tree (consumers → shards → collectors)."""
        self.supervisor.start()

    def stop(self) -> None:
        """Stop in reverse dependency order, flushing in-flight events."""
        self.supervisor.stop()

    def shutdown(self) -> None:
        """Stop and release changelog users and sockets."""
        self.supervisor.close()

    def health(self) -> dict:
        """Uniform per-service health for the whole tree."""
        return self.supervisor.health()

    # -- statistics ------------------------------------------------------------

    def stats(self) -> ClusterStats:
        """Cluster counters: totals plus a per-shard breakdown."""
        stats = ClusterStats(shard_map_version=self.router.version)
        for collector in self.collectors:
            snap = collector.metrics.snapshot()
            stats.records_read += snap.get("records_read", 0)
            stats.events_reported += snap.get("events_reported", 0)
            stats.per_collector[collector.name] = {
                "records_read": snap.get("records_read", 0),
                "events_reported": snap.get("events_reported", 0),
            }
        for shard_id, shard in self.shard_handles.items():
            snap = shard.metrics.snapshot()
            stats.events_stored += snap.get("events_stored", 0)
            stats.events_published += snap.get("events_published", 0)
            stats.store_len += snap.get("store_len", 0)
            stats.per_shard[shard_id] = {
                "events_stored": snap.get("events_stored", 0),
                "events_published": snap.get("events_published", 0),
                "store_len": snap.get("store_len", 0),
                "batches_received": snap.get("batches_received", 0),
                "restart_count": shard.restart_count,
            }
        stats.services = self.supervisor.health()["services"]
        prefix = TRACE_SCOPE + "."
        stats.stage_latency = {
            name[len(prefix):]: histogram.summary()
            for name, histogram in self.registry.histograms().items()
            if name.startswith(prefix)
        }
        return stats

    # -- convenience -----------------------------------------------------------

    def shard_of(self, mdt_index: int) -> str:
        """Which shard owns *mdt_index* under the current map."""
        return self.router.map.route(f"mdt:{mdt_index}")

    def client(self, timeout: float = 5.0):
        """A scatter-gather :class:`~repro.cluster.client.ClusterClient`."""
        from repro.cluster.client import ClusterClient

        return ClusterClient.for_cluster(self, timeout=timeout)
