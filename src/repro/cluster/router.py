"""Deterministic shard routing: versioned shard maps + rendezvous hashing.

The sharded aggregation tier needs every report for one MDT to land on
the *same* aggregator shard — sequence numbers are per-shard, and the
scatter-gather client reassembles a total order from ``(shard, seq)``
pairs, so a key that wandered between shards would interleave its
events unpredictably.  Routing is therefore a pure function of
``(key, shard_map)``:

* **Rendezvous (highest-random-weight) hashing** scores every
  ``(key, shard)`` pair with a keyed ``blake2b`` digest and routes the
  key to the highest-scoring shard.  Unlike ``hash() % n``, removing a
  shard only reassigns the keys that lived on it — every other key's
  top-scoring shard is unchanged — and the digest is stable across
  processes and runs (Python's ``hash`` is salted per process).

* A **versioned** :class:`ShardMap` makes membership changes explicit:
  ``without()``/``with_shards()`` return a *new* map with a bumped
  version, and :class:`ShardRouter` refuses to swap in a stale one.
  Every routing decision can be attributed to exactly one map version,
  which is what makes rebalances deterministic and debuggable.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

__all__ = ["ShardMap", "ShardRouter", "rendezvous_score"]


def rendezvous_score(key: str, shard: str) -> int:
    """The highest-random-weight score of *key* on *shard*.

    A 64-bit keyed digest — stable across processes (unlike ``hash``)
    and uniform enough that K keys spread ~K/N per shard.
    """
    digest = hashlib.blake2b(
        f"{key}|{shard}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class ShardMap:
    """An immutable, versioned view of cluster membership.

    Membership edits never mutate a map — they derive a new one with a
    higher ``version``, so concurrent readers always see a coherent
    membership and the router can reject stale swaps.
    """

    shards: tuple[str, ...] = field(default=())
    version: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.shards, tuple):
            object.__setattr__(self, "shards", tuple(self.shards))
        if not self.shards:
            raise ValueError("a ShardMap needs at least one shard")
        if len(set(self.shards)) != len(self.shards):
            raise ValueError(f"duplicate shard ids: {self.shards}")

    def __contains__(self, shard: str) -> bool:
        return shard in self.shards

    def __len__(self) -> int:
        return len(self.shards)

    def route(self, key: str) -> str:
        """The shard owning *key* under this membership."""
        return max(
            self.shards, key=lambda shard: rendezvous_score(key, shard)
        )

    def without(self, shard: str) -> "ShardMap":
        """A successor map with *shard* removed (e.g. retired/crashed).

        Rendezvous property: only keys that routed to *shard* move.
        """
        if shard not in self.shards:
            raise KeyError(f"unknown shard: {shard!r}")
        return ShardMap(
            tuple(s for s in self.shards if s != shard), self.version + 1
        )

    def with_shards(self, *shards: str) -> "ShardMap":
        """A successor map with *shards* added (scale-out / recovery).

        Rendezvous property: only keys won by a new shard move.
        """
        additions = tuple(s for s in shards if s not in self.shards)
        return ShardMap(self.shards + additions, self.version + 1)


class ShardRouter:
    """Thread-safe routing against the current :class:`ShardMap`.

    Producers call :meth:`route` on the hot path (lock-free read of an
    immutable map); membership changes go through :meth:`swap`, which
    enforces monotone versions so a delayed retire can never clobber a
    newer recovery.
    """

    def __init__(self, shard_map: ShardMap) -> None:
        self._map = shard_map
        self._lock = threading.Lock()
        #: Total routing decisions taken (observability, not control).
        self.routed = 0

    @property
    def map(self) -> ShardMap:
        return self._map

    @property
    def version(self) -> int:
        return self._map.version

    @property
    def shards(self) -> tuple[str, ...]:
        return self._map.shards

    def route(self, key: str) -> str:
        """The shard that owns *key* under the current map."""
        shard = self._map.route(key)
        self.routed += 1
        return shard

    def swap(self, new_map: ShardMap) -> ShardMap:
        """Install *new_map*; returns the map it replaced.

        Rejects non-monotone versions: a rebalance computed against a
        membership that has since changed must be recomputed.
        """
        with self._lock:
            if new_map.version <= self._map.version:
                raise ValueError(
                    f"stale shard map: version {new_map.version} <= "
                    f"current {self._map.version}"
                )
            previous, self._map = self._map, new_map
            return previous

    def retire(self, shard: str) -> ShardMap:
        """Remove *shard* from the routing map (its keys rebalance)."""
        with self._lock:
            previous, self._map = self._map, self._map.without(shard)
            return previous

    def restore(self, shard: str) -> ShardMap:
        """Return *shard* to the routing map (its keys route back)."""
        with self._lock:
            previous, self._map = self._map, self._map.with_shards(shard)
            return previous
