"""Cloud substrate: a reliable queue (SQS model) and serverless workers.

Ripple's cloud service places every reported event in a reliable Simple
Queue Service queue; Lambda functions process entries and delete them on
success; a periodic cleanup function re-drives entries whose processing
failed.  This package models the semantics that reliability story
depends on:

* :class:`ReliableQueue` — at-least-once delivery with visibility
  timeouts, receipt handles, per-message receive counts and an optional
  dead-letter queue.
* :class:`ServerlessExecutor` — a pool of Lambda-style workers that pull
  a queue and invoke a handler; success deletes the message, failure
  leaves it to reappear after its visibility timeout.
* :class:`CleanupFunction` — the paper's periodic sweeper: re-drives
  stuck (in-flight too long) messages immediately.
"""

from repro.cloudq.sqs import Message, QueueService, ReliableQueue
from repro.cloudq.serverless import CleanupFunction, ServerlessExecutor

__all__ = [
    "ReliableQueue",
    "QueueService",
    "Message",
    "ServerlessExecutor",
    "CleanupFunction",
]
