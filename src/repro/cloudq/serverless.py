"""Lambda-style workers over a reliable queue, plus the cleanup sweeper.

Ripple's cloud service (Figure 1) is: events land in an SQS queue,
serverless functions act on queue entries and remove them once
successfully processed, and a cleanup function periodically re-drives
entries whose processing failed.  :class:`ServerlessExecutor` and
:class:`CleanupFunction` model exactly that loop.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.errors import ReceiptInvalid
from repro.cloudq.sqs import ReliableQueue
from repro.util.logging import get_logger


class ServerlessExecutor:
    """A pool of Lambda-style workers pulling *queue* and calling *handler*.

    On handler success the message is deleted; on handler exception the
    message is left in flight and reappears after its visibility timeout
    (at-least-once processing).  Workers run as daemon threads in live
    mode; tests can instead call :meth:`poll_once` for deterministic
    single-stepping.
    """

    def __init__(
        self,
        queue: ReliableQueue,
        handler: Callable[[Any], None],
        concurrency: int = 2,
        batch_size: int = 10,
        poll_interval: float = 0.005,
        on_error: Optional[Callable[[Any, BaseException], None]] = None,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1: {concurrency}")
        self.queue = queue
        self.handler = handler
        self.concurrency = concurrency
        self.batch_size = batch_size
        self.poll_interval = poll_interval
        self.on_error = on_error
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        # Counters.
        self.invocations = 0
        self.successes = 0
        self.failures = 0
        self._counter_lock = threading.Lock()

    # -- deterministic single-step mode -----------------------------------

    def poll_once(self) -> int:
        """Receive one batch and process it synchronously.

        Returns the number of successfully processed messages.  Used by
        tests and virtual-time drivers.
        """
        processed = 0
        for message in self.queue.receive(max_messages=self.batch_size):
            with self._counter_lock:
                self.invocations += 1
            try:
                self.handler(message.body)
            except Exception as exc:
                with self._counter_lock:
                    self.failures += 1
                if self.on_error is not None:
                    self.on_error(message.body, exc)
                continue  # leave in flight; visibility timeout re-drives
            try:
                assert message.receipt is not None
                self.queue.delete(message.receipt)
            except ReceiptInvalid:
                # Someone else already completed this delivery (the
                # at-least-once race); the work was done, count success.
                pass
            with self._counter_lock:
                self.successes += 1
            processed += 1
        return processed

    def drain(self, max_rounds: int = 1000) -> int:
        """Poll until the queue shows no visible messages; returns total."""
        total = 0
        for _ in range(max_rounds):
            processed = self.poll_once()
            total += processed
            if self.queue.visible_depth == 0:
                break
        return total

    # -- live threaded mode -----------------------------------------------

    def start(self) -> None:
        """Start *concurrency* daemon worker threads."""
        if self._threads:
            return
        self._stop.clear()
        for index in range(self.concurrency):
            thread = threading.Thread(
                target=self._worker_loop, name=f"lambda-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            if self.poll_once() == 0:
                self._stop.wait(self.poll_interval)

    def stop(self) -> None:
        """Stop the worker threads."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads.clear()


class CleanupFunction:
    """The periodic sweeper that re-drives stalled in-flight messages.

    The paper: "A cleanup function periodically iterates through the
    queue and initiates additional processing for events that were
    unsuccessfully processed."
    """

    def __init__(
        self,
        queue: ReliableQueue,
        stall_threshold: float = 5.0,
        period: float = 10.0,
    ) -> None:
        self.queue = queue
        self.stall_threshold = stall_threshold
        self.period = period
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.total_redriven = 0

    def sweep_once(self) -> int:
        """One sweep: re-drive messages in flight longer than the threshold."""
        redriven = self.queue.redrive_stuck(self.stall_threshold)
        if redriven:
            get_logger("cloudq.cleanup").info(
                "re-drove %d stalled message(s) on %s", redriven,
                self.queue.name,
            )
        self.total_redriven += redriven
        return redriven

    def start(self) -> None:
        """Run sweeps every *period* seconds in a daemon thread."""
        if self._thread is not None:
            return
        self._stop.clear()

        def _loop() -> None:
            while not self._stop.is_set():
                self._stop.wait(self.period)
                if not self._stop.is_set():
                    self.sweep_once()

        self._thread = threading.Thread(target=_loop, name="cleanup", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5)
        self._thread = None
