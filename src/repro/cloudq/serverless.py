"""Lambda-style workers over a reliable queue, plus the cleanup sweeper.

Ripple's cloud service (Figure 1) is: events land in an SQS queue,
serverless functions act on queue entries and remove them once
successfully processed, and a cleanup function periodically re-drives
entries whose processing failed.  :class:`ServerlessExecutor` and
:class:`CleanupFunction` model exactly that loop.

Both are :class:`~repro.runtime.Service`\\ s: the executor runs one
named worker per unit of *concurrency* and the cleanup function runs a
single periodic worker, so they can be composed under a
:class:`~repro.runtime.Supervisor` (see ``repro.ripple.service``).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import ReceiptInvalid
from repro.cloudq.sqs import ReliableQueue
from repro.runtime import Service, WorkerSpec
from repro.util.logging import get_logger


class ServerlessExecutor(Service):
    """A pool of Lambda-style workers pulling *queue* and calling *handler*.

    On handler success the message is deleted; on handler exception the
    message is left in flight and reappears after its visibility timeout
    (at-least-once processing).  Live mode runs *concurrency* named
    workers; tests can instead call :meth:`poll_once` for deterministic
    single-stepping.
    """

    def __init__(
        self,
        queue: ReliableQueue,
        handler: Callable[[Any], None],
        concurrency: int = 2,
        batch_size: int = 10,
        poll_interval: float = 0.005,
        on_error: Optional[Callable[[Any, BaseException], None]] = None,
        registry=None,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1: {concurrency}")
        super().__init__("executor", registry)
        self.queue = queue
        self.handler = handler
        self.concurrency = concurrency
        self.batch_size = batch_size
        self.poll_interval = poll_interval
        self.on_error = on_error
        self._invocations = self.metrics.counter("invocations")
        self._successes = self.metrics.counter("successes")
        self._failures = self.metrics.counter("failures")
        self.metrics.gauge_fn("queue_depth", lambda: queue.visible_depth)

    # -- counters (registry-backed; old attribute names kept readable) ------

    @property
    def invocations(self) -> int:
        return self._invocations.value

    @property
    def successes(self) -> int:
        return self._successes.value

    @property
    def failures(self) -> int:
        return self._failures.value

    # -- deterministic single-step mode -----------------------------------

    def poll_once(self) -> int:
        """Receive one batch and process it synchronously.

        Returns the number of successfully processed messages.  Used by
        tests and virtual-time drivers.
        """
        processed = 0
        for message in self.queue.receive(max_messages=self.batch_size):
            self._invocations.inc()
            try:
                self.handler(message.body)
            except Exception as exc:
                self._failures.inc()
                if self.on_error is not None:
                    self.on_error(message.body, exc)
                continue  # leave in flight; visibility timeout re-drives
            try:
                assert message.receipt is not None
                self.queue.delete(message.receipt)
            except ReceiptInvalid:
                # Someone else already completed this delivery (the
                # at-least-once race); the work was done, count success.
                pass
            self._successes.inc()
            processed += 1
        return processed

    def drain(self, max_rounds: int = 1000) -> int:
        """Poll until the queue shows no visible messages; returns total."""
        total = 0
        for _ in range(max_rounds):
            processed = self.poll_once()
            total += processed
            if self.queue.visible_depth == 0:
                break
        return total

    # -- live mode (service runtime) ----------------------------------------

    def worker_specs(self) -> list[WorkerSpec]:
        return [
            WorkerSpec(
                f"lambda-{index}",
                self.poll_once,
                idle_wait=self.poll_interval,
                max_idle_wait=max(self.poll_interval, 0.05),
            )
            for index in range(self.concurrency)
        ]


class CleanupFunction(Service):
    """The periodic sweeper that re-drives stalled in-flight messages.

    The paper: "A cleanup function periodically iterates through the
    queue and initiates additional processing for events that were
    unsuccessfully processed."
    """

    def __init__(
        self,
        queue: ReliableQueue,
        stall_threshold: float = 5.0,
        period: float = 10.0,
        registry=None,
    ) -> None:
        super().__init__("cleanup", registry)
        self.queue = queue
        self.stall_threshold = stall_threshold
        self.period = period
        self._total_redriven = self.metrics.counter("total_redriven")

    @property
    def total_redriven(self) -> int:
        return self._total_redriven.value

    def sweep_once(self) -> int:
        """One sweep: re-drive messages in flight longer than the threshold."""
        redriven = self.queue.redrive_stuck(self.stall_threshold)
        if redriven:
            get_logger("cloudq.cleanup").info(
                "re-drove %d stalled message(s) on %s", redriven,
                self.queue.name,
            )
        self._total_redriven.inc(redriven)
        return redriven

    def worker_specs(self) -> list[WorkerSpec]:
        # Periodic: wait a full period before the first sweep, matching
        # the original daemon-thread behaviour.
        return [WorkerSpec("sweep", self.sweep_once, interval=self.period)]
