"""An SQS-style reliable queue: at-least-once, visibility timeouts, DLQ."""

from __future__ import annotations

import threading
import uuid
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.errors import QueueNotFound, ReceiptInvalid
from repro.util.clock import Clock, WallClock


@dataclass
class Message:
    """A queued message with delivery bookkeeping."""

    message_id: str
    body: Any
    enqueued_at: float
    receive_count: int = 0
    #: When the message becomes visible again (0 = visible now).
    visible_at: float = 0.0
    #: Receipt handle of the in-flight delivery (None when visible).
    receipt: Optional[str] = None
    #: When the in-flight delivery was handed out.
    received_at: float = 0.0


class ReliableQueue:
    """At-least-once queue with visibility timeouts.

    ``receive()`` hides the message for *visibility_timeout* seconds and
    hands back a receipt handle; ``delete(receipt)`` acknowledges it.
    Un-deleted messages reappear — the property that makes Ripple's
    event processing lossless in the face of worker crashes.

    With *max_receives* set, messages that have been received that many
    times without deletion move to the *dead_letter* queue instead of
    reappearing (the standard SQS redrive policy).
    """

    def __init__(
        self,
        name: str,
        visibility_timeout: float = 30.0,
        clock: Clock | None = None,
        max_receives: Optional[int] = None,
        dead_letter: Optional["ReliableQueue"] = None,
    ) -> None:
        if max_receives is not None and max_receives < 1:
            raise ValueError(f"max_receives must be >= 1: {max_receives}")
        self.name = name
        self.visibility_timeout = visibility_timeout
        self.clock = clock or WallClock()
        self.max_receives = max_receives
        self.dead_letter = dead_letter
        self._lock = threading.Lock()
        self._messages: Dict[str, Message] = {}
        self._order: list[str] = []  # FIFO-ish ordering of message ids
        self._receipts: Dict[str, str] = {}  # receipt -> message id
        # Counters.
        self.total_sent = 0
        self.total_deleted = 0
        self.total_dead_lettered = 0
        self.total_receives = 0

    # -- producer ------------------------------------------------------------

    def send(self, body: Any) -> str:
        """Enqueue *body*; returns the message id."""
        with self._lock:
            message_id = uuid.uuid4().hex
            self._messages[message_id] = Message(
                message_id=message_id,
                body=body,
                enqueued_at=self.clock.now(),
            )
            self._order.append(message_id)
            self.total_sent += 1
            return message_id

    # -- consumer -----------------------------------------------------------

    def receive(
        self, max_messages: int = 1, visibility_timeout: Optional[float] = None
    ) -> list[Message]:
        """Receive up to *max_messages* visible messages.

        Each returned message is hidden until its visibility timeout
        expires and carries a fresh receipt handle in ``receipt``.
        """
        if max_messages < 1:
            raise ValueError(f"max_messages must be >= 1: {max_messages}")
        timeout = (
            visibility_timeout
            if visibility_timeout is not None
            else self.visibility_timeout
        )
        now = self.clock.now()
        received: list[Message] = []
        with self._lock:
            for message_id in list(self._order):
                if len(received) >= max_messages:
                    break
                message = self._messages.get(message_id)
                if message is None or message.visible_at > now:
                    continue
                # Redrive policy: too many receives -> dead letter.
                if (
                    self.max_receives is not None
                    and message.receive_count >= self.max_receives
                ):
                    self._drop(message_id)
                    self.total_dead_lettered += 1
                    if self.dead_letter is not None:
                        self.dead_letter.send(message.body)
                    continue
                message.receive_count += 1
                message.visible_at = now + timeout
                message.received_at = now
                receipt = uuid.uuid4().hex
                if message.receipt is not None:
                    self._receipts.pop(message.receipt, None)
                message.receipt = receipt
                self._receipts[receipt] = message_id
                self.total_receives += 1
                # Hand back a snapshot: later redeliveries must not
                # mutate the receipt the current holder is using.
                received.append(replace(message))
        return received

    def delete(self, receipt: str) -> None:
        """Acknowledge (permanently remove) the delivery for *receipt*.

        Raises :class:`~repro.errors.ReceiptInvalid` if the receipt is
        unknown or superseded — e.g. the message timed out and was
        redelivered to someone else, the fundamental at-least-once race.
        """
        with self._lock:
            message_id = self._receipts.pop(receipt, None)
            if message_id is None:
                raise ReceiptInvalid(f"unknown or expired receipt {receipt[:8]}...")
            message = self._messages.get(message_id)
            if message is None or message.receipt != receipt:
                raise ReceiptInvalid(f"superseded receipt {receipt[:8]}...")
            self._drop(message_id)
            self.total_deleted += 1

    def change_visibility(self, receipt: str, timeout: float) -> None:
        """Extend/shrink the in-flight message's invisibility window."""
        with self._lock:
            message_id = self._receipts.get(receipt)
            if message_id is None:
                raise ReceiptInvalid(f"unknown receipt {receipt[:8]}...")
            message = self._messages[message_id]
            message.visible_at = self.clock.now() + timeout

    def redrive_stuck(self, older_than: float) -> int:
        """Make in-flight messages invisible for > *older_than* visible now.

        This is the primitive Ripple's cleanup function uses: rather than
        waiting the full visibility timeout, a sweeper can immediately
        re-drive messages whose processing has clearly stalled.  Returns
        the number of messages re-driven.
        """
        now = self.clock.now()
        redriven = 0
        with self._lock:
            for message in self._messages.values():
                in_flight = message.visible_at > now and message.receipt is not None
                if in_flight and now - message.received_at >= older_than:
                    message.visible_at = now
                    self._receipts.pop(message.receipt, None)
                    message.receipt = None
                    redriven += 1
        return redriven

    def _drop(self, message_id: str) -> None:
        message = self._messages.pop(message_id, None)
        if message and message.receipt:
            self._receipts.pop(message.receipt, None)
        try:
            self._order.remove(message_id)
        except ValueError:
            pass

    # -- introspection -----------------------------------------------------

    @property
    def approximate_depth(self) -> int:
        """Messages currently stored (visible + in flight)."""
        with self._lock:
            return len(self._messages)

    @property
    def visible_depth(self) -> int:
        """Messages deliverable right now."""
        now = self.clock.now()
        with self._lock:
            return sum(1 for m in self._messages.values() if m.visible_at <= now)

    @property
    def in_flight(self) -> int:
        """Messages currently hidden by a visibility timeout."""
        return self.approximate_depth - self.visible_depth


class QueueService:
    """A named registry of queues (the 'SQS account')."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or WallClock()
        self._lock = threading.Lock()
        self._queues: Dict[str, ReliableQueue] = {}

    def create_queue(
        self,
        name: str,
        visibility_timeout: float = 30.0,
        max_receives: Optional[int] = None,
        with_dead_letter: bool = False,
    ) -> ReliableQueue:
        """Create (or return the existing) queue called *name*."""
        with self._lock:
            existing = self._queues.get(name)
            if existing is not None:
                return existing
            dead_letter = None
            if with_dead_letter:
                dead_letter = ReliableQueue(
                    f"{name}-dlq", visibility_timeout, clock=self.clock
                )
                self._queues[f"{name}-dlq"] = dead_letter
            queue = ReliableQueue(
                name,
                visibility_timeout,
                clock=self.clock,
                max_receives=max_receives,
                dead_letter=dead_letter,
            )
            self._queues[name] = queue
            return queue

    def queue(self, name: str) -> ReliableQueue:
        """Look up an existing queue."""
        with self._lock:
            queue = self._queues.get(name)
            if queue is None:
                raise QueueNotFound(f"no queue named {name!r}")
            return queue

    def list_queues(self) -> list[str]:
        with self._lock:
            return sorted(self._queues)
