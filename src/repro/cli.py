"""Command-line interface: run experiments and demos from a shell.

Usage (also via ``python -m repro``):

    repro experiments list
    repro experiments run table2 --testbed iota
    repro experiments run all
    repro throughput --testbed aws --duration 20 --batch-size 64
    repro figure3 --days 36
    repro changelog-demo
    repro metrics-demo --events 500 --prometheus

Every subcommand prints the same tables the paper reports.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.harness import (
    experiment_figure3,
    experiment_table1,
    experiment_table2,
    experiment_table3,
    experiment_throughput,
)
from repro.perf import AWS, IOTA, TestbedProfile

_PROFILES: Dict[str, TestbedProfile] = {"aws": AWS, "iota": IOTA}


def _profile(name: str) -> TestbedProfile:
    try:
        return _PROFILES[name.lower()]
    except KeyError:
        raise SystemExit(
            f"unknown testbed {name!r}; choose from {sorted(_PROFILES)}"
        ) from None


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------


def cmd_experiments(args: argparse.Namespace) -> int:
    runners: Dict[str, Callable[[], str]] = {
        "table1": lambda: "\n".join(experiment_table1()),
        "table2": lambda: "\n\n".join(
            experiment_table2(profile).render() for profile in (AWS, IOTA)
        ),
        "throughput": lambda: "\n\n".join(
            experiment_throughput(profile, duration=args.duration).render()
            for profile in (AWS, IOTA)
        ),
        "table3": lambda: experiment_table3(duration=args.duration).render(),
        "figure3": lambda: experiment_figure3().render(),
    }
    if args.action == "list":
        print("available experiments:")
        for name in runners:
            print(f"  {name}")
        print("  all")
        return 0
    targets = list(runners) if args.name == "all" else [args.name]
    for target in targets:
        runner = runners.get(target)
        if runner is None:
            print(
                f"unknown experiment {target!r}; try 'experiments list'",
                file=sys.stderr,
            )
            return 2
        print(f"=== {target} ===")
        print(runner())
        print()
    return 0


def cmd_throughput(args: argparse.Namespace) -> int:
    report = experiment_throughput(
        _profile(args.testbed),
        duration=args.duration,
        batch_size=args.batch_size,
        cache_size=args.cache_size,
        num_mds=args.num_mds,
        transport=args.transport,
    )
    print(report.render())
    return 0


def cmd_figure3(args: argparse.Namespace) -> int:
    report = experiment_figure3(days=args.days, base_files=args.base_files,
                                seed=args.seed)
    print(report.render())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Generate or replay operation traces."""
    from repro.workloads.traces import TraceOp, TraceReplayer, synthetic_trace

    if args.trace_action == "generate":
        count = 0
        with open(args.output, "w", encoding="utf-8") as handle:
            for op in synthetic_trace(args.ops, seed=args.seed,
                                      n_directories=args.directories):
                handle.write(op.to_line() + "\n")
                count += 1
        print(f"wrote {count} operations to {args.output}")
        return 0
    # replay
    from repro.lustre import LustreFilesystem
    from repro.util.clock import ManualClock

    fs = LustreFilesystem(num_mds=args.num_mds, clock=ManualClock())
    replayer = TraceReplayer(fs)
    with open(args.path, "r", encoding="utf-8") as handle:
        ops = [TraceOp.from_line(line) for line in handle if line.strip()]
    applied = replayer.replay(ops)
    print(f"replayed {applied}/{len(ops)} operations "
          f"({replayer.skipped} skipped)")
    print(f"changelog records generated: {fs.total_changelog_records()}")
    for changelog in fs.changelogs():
        print(f"  MDT{changelog.mdt_index}: {changelog.total_appended}")
    return 0


def cmd_rules(args: argparse.Namespace) -> int:
    """Validate a rules file written in the WHEN/THEN DSL."""
    from repro.errors import RuleValidationError
    from repro.ripple.dsl import parse_rules

    try:
        with open(args.path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    try:
        rules = parse_rules(text)
    except RuleValidationError as exc:
        print(f"invalid rules file: {exc}", file=sys.stderr)
        return 1
    print(f"{len(rules)} rule(s) OK")
    for rule in rules:
        print(f"  {rule.describe()}")
    return 0


def cmd_changelog_demo(args: argparse.Namespace) -> int:
    """Create a tiny filesystem and dump its ChangeLog (Table 1 style)."""
    from repro.lustre import LustreFilesystem
    from repro.util.clock import ManualClock

    fs = LustreFilesystem(num_mds=args.num_mds, clock=ManualClock())
    fs.makedirs("/demo/data")
    with fs.job("demo.1"):
        fs.create("/demo/data/data1.txt", size=1024)
        fs.write("/demo/data/data1.txt", 2048)
        fs.rename("/demo/data/data1.txt", "/demo/data/data2.txt")
        fs.unlink("/demo/data/data2.txt")
    for changelog in fs.changelogs():
        if changelog.backlog:
            print(f"-- MDT{changelog.mdt_index} ChangeLog --")
            for line in changelog.dump():
                print(line)
    return 0


def cmd_health_demo(args: argparse.Namespace) -> int:
    """Run a live supervised monitor briefly and print its health tree."""
    from repro.core import LustreMonitor
    from repro.lustre import LustreFilesystem

    fs = LustreFilesystem(num_mds=args.num_mds)
    fs.makedirs("/demo/data")
    monitor = LustreMonitor(fs)
    monitor.subscribe(lambda _seq, _event: None, name="demo")
    monitor.start()
    try:
        for index in range(args.events):
            fs.create(f"/demo/data/f{index}")
        monitor.drain()
        print("== supervision tree ==")
        for key, record in monitor.health()["services"].items():
            workers = ", ".join(record["workers"]) or "-"
            print(
                f"{key:24s} {record['state']:8s} "
                f"restarts={record['restart_count']} workers=[{workers}]"
            )
        print("\n== registry snapshot ==")
        for name, value in sorted(monitor.registry.snapshot().items()):
            print(f"{name:44s} {value}")
    finally:
        monitor.shutdown()
    return 0


def cmd_metrics_demo(args: argparse.Namespace) -> int:
    """Run the sim pipeline and print per-stage latency percentiles."""
    from repro.core import (
        AggregatorConfig,
        LustreMonitor,
        MonitorClient,
        MonitorConfig,
    )
    from repro.lustre import LustreFilesystem

    # Default wall clock: event timestamps and tracer stamps share a
    # clock domain, so the collect stage is meaningful.
    fs = LustreFilesystem(num_mds=args.num_mds)
    fs.makedirs("/demo/data")
    monitor = LustreMonitor(
        fs,
        MonitorConfig(
            aggregator=AggregatorConfig(
                trace_sample_rate=args.sample_rate
            )
        ),
    )
    monitor.subscribe(lambda _seq, _event: None, name="demo")
    try:
        for index in range(args.events):
            fs.create(f"/demo/data/f{index}")
            if args.batch and (index + 1) % args.batch == 0:
                monitor.pump()
        monitor.drain()
        stages = monitor.stats().stage_latency
        print("== per-stage latency (seconds) ==")
        header = (
            f"{'stage':10s} {'count':>7s} {'p50':>10s} {'p95':>10s} "
            f"{'p99':>10s} {'mean':>10s} {'max':>10s}"
        )
        print(header)
        if not stages:
            print("(tracing disabled: sample rate 0)")
        for stage in ("collect", "aggregate", "publish", "deliver",
                      "relay", "action"):
            summary = stages.get(stage)
            if summary is None:
                continue
            print(
                f"{stage:10s} {summary['count']:7d} "
                f"{summary['p50']:10.6f} {summary['p95']:10.6f} "
                f"{summary['p99']:10.6f} {summary['mean']:10.6f} "
                f"{summary['max']:10.6f}"
            )
        if args.prometheus:
            client = MonitorClient.for_monitor(monitor)
            print("\n== prometheus exposition ==")
            print(client.metrics()["prometheus"], end="")
            client.close()
    finally:
        monitor.shutdown()
    return 0


def cmd_cluster_demo(args: argparse.Namespace) -> int:
    """Run a sharded cluster, kill a shard, recover, print merged stats."""
    from repro.cluster import ClusterConfig, ClusterMonitor
    from repro.lustre import LustreFilesystem
    from repro.lustre.mds import DnePolicy
    from repro.runtime import ServiceCrash
    from repro.util.clock import ManualClock

    fs = LustreFilesystem(
        num_mds=args.num_mds,
        mdts_per_mds=2,
        dne_policy=DnePolicy.ROUND_ROBIN,
        clock=ManualClock(),
    )
    from repro.core.aggregator import AggregatorConfig

    cluster = ClusterMonitor(
        fs,
        ClusterConfig(
            num_shards=args.shards,
            transport=args.transport,
            aggregator=AggregatorConfig(store_url=args.store_url),
            telemetry_port=args.telemetry_port,
        ),
    )
    delivered = []
    cluster.subscribe(lambda _seq, event: delivered.append(event))
    try:
        print(
            f"== cluster: {args.shards} shard(s), {args.num_mds} MDS, "
            f"map v{cluster.router.version} =="
        )
        if cluster.telemetry is not None:
            # This demo steps the pipeline deterministically (no
            # supervisor), so the scrape server's worker needs an
            # explicit start to answer HTTP during the run.
            cluster.telemetry.server.start()
            print(f"telemetry: {cluster.telemetry.url}/metrics")
        for index in range(args.events):
            fs.makedirs(f"/demo/d{index % 8}")
            fs.create(f"/demo/d{index % 8}/f{index}")
        cluster.drain()
        print(f"generated+delivered: {len(delivered)} events")

        # Kill the shard that owns the directory we keep writing to,
        # so the crash provably hits the in-flight batch.
        target_mdt = next(
            event.mdt_index
            for event in delivered
            if event.path and event.path.startswith("/demo/d0/")
        )
        victim = cluster.shard_of(target_mdt)
        print(f"\n== killing {victim} mid-batch ==")
        cluster.crash_shard(victim)
        for index in range(args.events, args.events + 10):
            fs.create(f"/demo/d0/f{index}")
        try:
            cluster.drain()
        except ServiceCrash as crash:
            print(f"shard crashed: {crash}")
        recovered_before = len(delivered)
        cluster.drain()  # requeued batches replay after the restart
        print(
            f"recovered: +{len(delivered) - recovered_before} events "
            "replayed, none lost"
        )
        unique = len({event.path for event in delivered})
        print(f"delivered {len(delivered)} events, {unique} unique paths")

        print("\n== merged cluster stats ==")
        client = cluster.client()
        answer = client.stats()
        totals = answer["totals"]
        for metric in (
            "events_stored", "events_published", "batches_received",
            "api_requests",
        ):
            if metric in totals:
                print(f"{metric:24s} {totals[metric]}")
        print("\n== per-shard ==")
        stats = cluster.stats()
        for shard_id, record in stats.per_shard.items():
            print(
                f"{shard_id:8s} stored={record['events_stored']:6d} "
                f"published={record['events_published']:6d} "
                f"restarts={record['restart_count']}"
            )
        client.close()
        if cluster.telemetry is not None:
            import urllib.request

            with urllib.request.urlopen(
                f"{cluster.telemetry.url}/metrics"
            ) as response:
                exposition = response.read().decode("utf-8")
            shard_lines = [
                line for line in exposition.splitlines()
                if "scope=" in line and not line.startswith("#")
            ]
            print(f"\n== scraped {cluster.telemetry.url}/metrics "
                  f"({len(exposition.splitlines())} lines) ==")
            for line in shard_lines[:10]:
                print(line)
    finally:
        cluster.shutdown()
    return 0


def cmd_telemetry_demo(args: argparse.Namespace) -> int:
    """Exercise the telemetry plane: scrape, induce an alert, resolve it."""
    import json
    import time
    import urllib.request

    from repro.cluster import ClusterConfig, ClusterMonitor
    from repro.lustre import LustreFilesystem
    from repro.telemetry import TelemetryConfig

    fs = LustreFilesystem(num_mds=args.num_mds)
    fs.makedirs("/demo/data")
    cluster = ClusterMonitor(
        fs,
        ClusterConfig(
            num_shards=args.shards,
            transport=args.transport,
            telemetry=TelemetryConfig(
                port=args.port,
                # Fires while events flow, resolves when the load stops.
                rules=("demo-ingest: rate(*.events_stored) > 0",),
                eval_interval=0.1,
                flight_interval=0.1,
            ),
        ),
    )
    cluster.subscribe(lambda _seq, _event: None, name="demo")
    url = cluster.telemetry.url

    def fetch(path):
        with urllib.request.urlopen(url + path, timeout=5.0) as response:
            body = response.read().decode("utf-8")
        if path == "/metrics":
            return body
        return json.loads(body)

    def demo_states():
        return {
            inst["state"]
            for inst in fetch("/alerts")["instances"]
            if inst["rule"] == "demo-ingest"
        }

    cluster.start()
    try:
        print(f"== telemetry plane at {url} ==")
        print("routes: /metrics /health /alerts /flight")

        print("\n== inducing the demo-ingest alert (sustained load) ==")
        deadline = time.monotonic() + 20.0
        index = 0
        while time.monotonic() < deadline and "firing" not in demo_states():
            for _ in range(20):
                fs.create(f"/demo/data/f{index}")
                index += 1
            time.sleep(0.05)
        states = demo_states()
        print(f"alert states under load: {sorted(states) or ['(none)']}")

        print("\n== load stopped; waiting for resolution ==")
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline and "resolved" not in demo_states():
            time.sleep(0.1)
        print(f"alert states after: {sorted(demo_states()) or ['(none)']}")

        print("\n== scrape ==")
        exposition = fetch("/metrics")
        interesting = [
            line for line in exposition.splitlines()
            if line.startswith("repro_alerts_firing")
            or ("events_stored" in line and not line.startswith("#"))
        ]
        print(f"{len(exposition.splitlines())} lines; highlights:")
        for line in interesting[:8]:
            print(f"  {line}")

        health = fetch("/health")
        print(f"\nhealth: state={health['state']} "
              f"services={len(health['services'])} "
              f"degraded={health['degraded']}")

        history = fetch("/alerts")["history"]
        print(f"alert history: {len(history)} transition(s)")
        for record in history[-4:]:
            print(f"  {record['rule']}: {record['from']} -> {record['state']}")

        flight = fetch("/flight")
        print(f"flight recorder: {flight['depth']} frame(s) buffered, "
              f"{len(flight['dumps'])} dump(s)")
        for path in flight["dumps"][:3]:
            print(f"  {path}")
    finally:
        cluster.shutdown()
    return 0


def cmd_gateway_demo(args: argparse.Namespace) -> int:
    """Run a cluster behind the gateway: auth, backfill, live fan-out."""
    import time

    from repro.cluster import ClusterConfig, ClusterMonitor
    from repro.gateway import GatewayClient, attach_gateway
    from repro.lustre import LustreFilesystem

    fs = LustreFilesystem(num_mds=args.num_mds)
    fs.makedirs("/proj/alice")
    fs.makedirs("/proj/bob")
    cluster = ClusterMonitor(
        fs,
        ClusterConfig(num_shards=args.shards, transport=args.transport),
    )
    gateway = attach_gateway(cluster)
    alice = gateway.auth.issue_key("alice")
    bob = gateway.auth.issue_key("bob")
    cluster.start()
    lost = 0
    try:
        print(
            f"== gateway at {gateway.url} "
            f"in front of {args.shards} shard(s) =="
        )
        api = GatewayClient(gateway.host, gateway.port)

        # Historic backfill: events that land before anyone connects.
        for index in range(args.events):
            fs.create(f"/proj/alice/pre{index}.dat")
        cluster.drain()
        token = api.auth(alice.key)["token"]
        backfill = api.events_all(
            token, prefix="/proj/alice", types="created", limit=32
        )
        print(
            f"tenant alice authenticated; cursor-paged backfill "
            f"returned {len(backfill)} created events"
        )
        status, _payload = api.request("GET", "/v1/events", token="bogus")
        print(f"bogus token -> HTTP {status}")

        # Live fan-out: N sockets on alice's subtree, one on bob's.
        streams = [
            api.stream(token, prefix="/proj/alice", types="created")
            for _ in range(args.clients)
        ]
        bob_stream = api.stream(api.auth(bob.key)["token"], prefix="/proj/bob")
        for index in range(args.events):
            fs.create(f"/proj/alice/live{index}.dat")
        cluster.drain()
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            for stream in streams:
                stream.pump(0.01)
            bob_stream.pump(0.0)
            if all(len(s.received) >= args.events for s in streams):
                break
        counts = [len(stream.received) for stream in streams]
        lost = sum(max(0, args.events - count) for count in counts)
        print(
            f"live fan-out: {args.clients} subscriber(s) x "
            f"{args.events} events; received min={min(counts)} "
            f"max={max(counts)}, lost={lost}"
        )
        crossed = len(bob_stream.received)
        print(
            f"bob's stream (other subtree): {crossed} events "
            "(push-down keeps it at 0)"
        )
        lost += crossed

        stats = api.stats(token)
        snapshot = stats["gateway"]
        print("\n== gateway counters ==")
        for metric in (
            "requests", "auth_ok", "auth_failures", "pages_served",
            "events_scanned", "events_returned", "stream_published",
            "stream_delivered", "stream_shed",
        ):
            if metric in snapshot:
                print(f"{metric:20s} {snapshot[metric]}")
        for stream in streams:
            stream.close()
        bob_stream.close()
    finally:
        cluster.shutdown()
    if lost:
        print(f"EVENT LOSS: {lost} event(s) missing or misrouted",
              file=sys.stderr)
        return 1
    return 0


def cmd_store_demo(args: argparse.Namespace) -> int:
    """Demonstrate the durable segment-log store: ingest, crash, recover."""
    import shutil
    import tempfile
    import time

    from repro.core.events import EventType, FileEvent
    from repro.core.storage import open_store

    directory = args.dir or tempfile.mkdtemp(prefix="repro-store-")
    url = (
        f"segments://{directory}?segment_bytes={args.segment_bytes}"
        f"&fsync={args.fsync}"
    )
    print(f"== segment-log store at {url} ==")
    store = open_store(url, max_events=args.window)
    base = time.time()
    events = [
        FileEvent(
            EventType.CREATED, f"/demo/f{index}", False, base + index,
            name=f"f{index}", source="store-demo",
        )
        for index in range(args.events)
    ]
    for start in range(0, len(events), 100):
        store.extend(events[start:start + 100])
    stats = store.backend.stats()
    print(
        f"ingested {store.total_stored} events "
        f"(window {len(store)}, rotated {store.total_rotated})"
    )
    print(
        f"log: {stats['segments']} segment(s), {stats['log_bytes']} bytes, "
        f"{stats['fsyncs']} fsyncs, {stats['rotations']} rotations, "
        f"{stats['compacted_segments']} compacted"
    )

    # Simulated crash: walk away without close() — no flush, no fsync
    # beyond policy.  The next open replays the log.
    print("\n== simulated crash (no clean shutdown) ==")
    del store
    recovered = open_store(url, max_events=args.window)
    print(
        f"recovered: last_seq={recovered.last_seq} "
        f"window={len(recovered)} total_stored={recovered.total_stored}"
    )
    tail = recovered.recent(3)
    for seq, event in tail:
        print(f"  seq {seq}: {event.event_type.value} {event.path}")
    recovered.close()
    if args.dir is None:
        shutil.rmtree(directory, ignore_errors=True)
    else:
        print(f"\nlog kept at {directory}")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SDCI / scalable Lustre monitor reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments", help="run the paper's tables/figures"
    )
    experiments_sub = experiments.add_subparsers(dest="action", required=True)
    experiments_sub.add_parser("list", help="list available experiments")
    run = experiments_sub.add_parser("run", help="run one experiment (or all)")
    run.add_argument("name", help="experiment name or 'all'")
    run.add_argument("--duration", type=float, default=30.0,
                     help="virtual seconds for model runs")
    experiments.set_defaults(func=cmd_experiments)

    throughput = subparsers.add_parser(
        "throughput", help="run the throughput model with custom knobs"
    )
    throughput.add_argument("--testbed", default="iota",
                            help="aws or iota")
    throughput.add_argument("--duration", type=float, default=30.0)
    throughput.add_argument("--batch-size", type=int, default=1)
    throughput.add_argument("--cache-size", type=int, default=0)
    throughput.add_argument("--num-mds", type=int, default=1)
    throughput.add_argument("--transport", default="pushpull",
                            choices=("pushpull", "pubsub", "reqrep"))
    throughput.set_defaults(func=cmd_throughput)

    figure3 = subparsers.add_parser(
        "figure3", help="NERSC dump differencing + scaling analysis"
    )
    figure3.add_argument("--days", type=int, default=36)
    figure3.add_argument("--base-files", type=int, default=850_000)
    figure3.add_argument("--seed", type=int, default=7)
    figure3.set_defaults(func=cmd_figure3)

    trace = subparsers.add_parser(
        "trace", help="generate or replay operation traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_action", required=True)
    generate = trace_sub.add_parser("generate", help="write a synthetic trace")
    generate.add_argument("--ops", type=int, default=1000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--directories", type=int, default=8)
    generate.add_argument("-o", "--output", required=True)
    replay = trace_sub.add_parser("replay", help="replay a trace on a fresh fs")
    replay.add_argument("path")
    replay.add_argument("--num-mds", type=int, default=1)
    trace.set_defaults(func=cmd_trace)

    rules = subparsers.add_parser(
        "rules", help="validate a WHEN/THEN rules file"
    )
    rules.add_argument("path", help="rules file to validate")
    rules.set_defaults(func=cmd_rules)

    demo = subparsers.add_parser(
        "changelog-demo", help="dump a sample ChangeLog (Table 1 style)"
    )
    demo.add_argument("--num-mds", type=int, default=1)
    demo.set_defaults(func=cmd_changelog_demo)

    health = subparsers.add_parser(
        "health-demo",
        help="run a live supervised monitor and print its health tree",
    )
    health.add_argument("--num-mds", type=int, default=2)
    health.add_argument("--events", type=int, default=50)
    health.set_defaults(func=cmd_health_demo)

    metrics = subparsers.add_parser(
        "metrics-demo",
        help="run the sim pipeline and print per-stage latency percentiles",
    )
    metrics.add_argument("--num-mds", type=int, default=1)
    metrics.add_argument("--events", type=int, default=500)
    metrics.add_argument("--batch", type=int, default=64,
                         help="pump the pipeline every N creates (0 = once)")
    metrics.add_argument("--sample-rate", type=float, default=1.0,
                         help="tracing sample rate (0 disables tracing)")
    metrics.add_argument("--prometheus", action="store_true",
                         help="also dump the Prometheus exposition")
    metrics.set_defaults(func=cmd_metrics_demo)

    cluster = subparsers.add_parser(
        "cluster-demo",
        help="run a sharded aggregation cluster, kill a shard, recover, "
        "and print merged stats",
    )
    cluster.add_argument("--shards", type=int, default=3)
    cluster.add_argument(
        "--transport", choices=("inproc", "multiproc"), default="inproc",
        help="shard backend: in-process aggregators or one child "
        "process per shard",
    )
    cluster.add_argument("--num-mds", type=int, default=2)
    cluster.add_argument("--events", type=int, default=120)
    cluster.add_argument(
        "--store-url", default="memory://",
        help="shard store durability: memory:// (volatile) or "
        "segments:///path (per-shard append-only logs)",
    )
    cluster.add_argument(
        "--telemetry-port", type=int, default=None,
        help="serve /metrics, /health and /alerts over HTTP on this "
        "port (0 = ephemeral); omit to leave the telemetry plane off",
    )
    cluster.set_defaults(func=cmd_cluster_demo)

    telemetry = subparsers.add_parser(
        "telemetry-demo",
        help="run a cluster with the telemetry plane, scrape /metrics "
        "over HTTP, and induce + resolve an alert",
    )
    telemetry.add_argument("--shards", type=int, default=2)
    telemetry.add_argument("--num-mds", type=int, default=2)
    telemetry.add_argument(
        "--transport", choices=("inproc", "multiproc"), default="inproc",
        help="multiproc also exercises the child->parent metrics relay",
    )
    telemetry.add_argument("--port", type=int, default=0,
                           help="HTTP port (0 = ephemeral)")
    telemetry.set_defaults(func=cmd_telemetry_demo)

    gateway = subparsers.add_parser(
        "gateway-demo",
        help="run a cluster behind the HTTP/WS gateway: authenticate, "
        "page the backfill, and fan events out to live subscribers",
    )
    gateway.add_argument("--shards", type=int, default=2)
    gateway.add_argument("--num-mds", type=int, default=2)
    gateway.add_argument(
        "--transport", choices=("inproc", "multiproc"), default="inproc"
    )
    gateway.add_argument("--clients", type=int, default=10,
                         help="live WebSocket subscribers to open")
    gateway.add_argument("--events", type=int, default=100,
                         help="events per phase (backfill and live)")
    gateway.set_defaults(func=cmd_gateway_demo)

    store = subparsers.add_parser(
        "store-demo",
        help="ingest into a durable segment-log store, simulate a crash, "
        "and recover the history from the log",
    )
    store.add_argument("--events", type=int, default=5000)
    store.add_argument("--window", type=int, default=2000)
    store.add_argument("--segment-bytes", type=int, default=65536)
    store.add_argument(
        "--fsync", choices=("never", "rotate", "always"), default="rotate"
    )
    store.add_argument(
        "--dir", default=None,
        help="log directory (default: a temp dir, removed afterwards)",
    )
    store.set_defaults(func=cmd_store_demo)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module execution
    raise SystemExit(main())
