"""An in-memory POSIX-style filesystem with mutation hooks.

The filesystem stores a conventional inode table: directories map names to
inode numbers, regular files hold ``bytes`` content.  Every mutation emits
a :class:`MutationRecord` to registered hooks *after* the namespace change
is applied, which is exactly the semantics inotify provides.

All operations are thread-safe (a single re-entrant lock serialises
mutations), matching the coarse-grained behaviour of a local kernel
namespace as observed by a monitoring agent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterator, Optional

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidPath,
    IsADirectory,
    NotADirectory,
)
from repro.util.clock import Clock, WallClock
from repro.util.paths import dirname, is_ancestor, normalize, split_components


class FileType(Enum):
    """Inode type."""

    FILE = "file"
    DIRECTORY = "directory"


class MutationKind(Enum):
    """The namespace mutations a hook can observe."""

    CREATE = "create"
    MKDIR = "mkdir"
    WRITE = "write"
    TRUNCATE = "truncate"
    SETATTR = "setattr"
    UNLINK = "unlink"
    RMDIR = "rmdir"
    RENAME = "rename"


@dataclass(frozen=True)
class MutationRecord:
    """A single observed namespace mutation.

    *path* is the post-mutation path except for UNLINK/RMDIR (the removed
    path) and RENAME (the destination; *old_path* holds the source).
    """

    kind: MutationKind
    path: str
    is_dir: bool
    timestamp: float
    old_path: Optional[str] = None
    size: int = 0


@dataclass(frozen=True)
class FileStat:
    """Result of :meth:`MemoryFilesystem.stat`."""

    ino: int
    file_type: FileType
    size: int
    mode: int
    mtime: float
    ctime: float
    atime: float
    nlink: int

    @property
    def is_dir(self) -> bool:
        return self.file_type is FileType.DIRECTORY

    @property
    def is_file(self) -> bool:
        return self.file_type is FileType.FILE


@dataclass
class _Inode:
    ino: int
    file_type: FileType
    mode: int
    mtime: float
    ctime: float
    atime: float
    data: bytes = b""
    children: Dict[str, int] = field(default_factory=dict)
    nlink: int = 1


MutationHook = Callable[[MutationRecord], None]


class MemoryFilesystem:
    """An in-memory filesystem rooted at ``/``.

    Parameters
    ----------
    clock:
        Time source for inode timestamps and mutation records; defaults to
        the wall clock.  Supplying a :class:`~repro.util.clock.ManualClock`
        makes behaviour fully deterministic in tests.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock or WallClock()
        self._lock = threading.RLock()
        self._next_ino = 2  # 1 is the root, by convention
        now = self._clock.now()
        self._inodes: Dict[int, _Inode] = {
            1: _Inode(1, FileType.DIRECTORY, 0o755, now, now, now, nlink=2)
        }
        self._hooks: list[MutationHook] = []
        #: Cumulative mutation counters by kind, for tests and metrics.
        self.mutation_counts: Dict[MutationKind, int] = {k: 0 for k in MutationKind}

    # -- hooks -------------------------------------------------------------

    def add_hook(self, hook: MutationHook) -> None:
        """Register *hook* to be called after every mutation."""
        with self._lock:
            self._hooks.append(hook)

    def remove_hook(self, hook: MutationHook) -> None:
        """Deregister a previously added hook (missing hooks are ignored)."""
        with self._lock:
            try:
                self._hooks.remove(hook)
            except ValueError:
                pass

    def _emit(self, record: MutationRecord) -> None:
        self.mutation_counts[record.kind] += 1
        for hook in list(self._hooks):
            hook(record)

    # -- path resolution -----------------------------------------------------

    def _resolve(self, path: str) -> _Inode:
        """Return the inode at *path*, raising FileNotFound/NotADirectory."""
        node = self._inodes[1]
        walked = "/"
        for component in split_components(path):
            if node.file_type is not FileType.DIRECTORY:
                raise NotADirectory(walked)
            child_ino = node.children.get(component)
            if child_ino is None:
                raise FileNotFound(normalize(path))
            node = self._inodes[child_ino]
            walked = walked.rstrip("/") + "/" + component
        return node

    def _resolve_parent(self, path: str) -> tuple[_Inode, str]:
        """Return (parent inode, final name) for *path*."""
        components = split_components(path)
        if not components:
            raise InvalidPath(path, "operation not permitted on the root")
        parent = self._resolve("/" + "/".join(components[:-1]))
        if parent.file_type is not FileType.DIRECTORY:
            raise NotADirectory(dirname(path))
        return parent, components[-1]

    # -- queries ---------------------------------------------------------------

    def exists(self, path: str) -> bool:
        """True if *path* resolves to an inode."""
        with self._lock:
            try:
                self._resolve(path)
                return True
            except (FileNotFound, NotADirectory):
                return False

    def is_dir(self, path: str) -> bool:
        """True if *path* exists and is a directory."""
        with self._lock:
            try:
                return self._resolve(path).file_type is FileType.DIRECTORY
            except (FileNotFound, NotADirectory):
                return False

    def is_file(self, path: str) -> bool:
        """True if *path* exists and is a regular file."""
        with self._lock:
            try:
                return self._resolve(path).file_type is FileType.FILE
            except (FileNotFound, NotADirectory):
                return False

    def stat(self, path: str) -> FileStat:
        """Return metadata for *path* (raises FileNotFound)."""
        with self._lock:
            node = self._resolve(path)
            return FileStat(
                ino=node.ino,
                file_type=node.file_type,
                size=len(node.data),
                mode=node.mode,
                mtime=node.mtime,
                ctime=node.ctime,
                atime=node.atime,
                nlink=node.nlink,
            )

    def listdir(self, path: str) -> list[str]:
        """Names in directory *path*, sorted."""
        with self._lock:
            node = self._resolve(path)
            if node.file_type is not FileType.DIRECTORY:
                raise NotADirectory(normalize(path))
            return sorted(node.children)

    def walk(self, top: str = "/") -> Iterator[tuple[str, list[str], list[str]]]:
        """Depth-first traversal yielding ``(dirpath, dirnames, filenames)``.

        A snapshot is taken under the lock at each level, so concurrent
        mutations do not corrupt iteration (they may or may not be seen).
        """
        top = normalize(top)
        with self._lock:
            node = self._resolve(top)
            if node.file_type is not FileType.DIRECTORY:
                raise NotADirectory(top)
            entries = [
                (name, self._inodes[ino].file_type)
                for name, ino in sorted(node.children.items())
            ]
        dirnames = [n for n, t in entries if t is FileType.DIRECTORY]
        filenames = [n for n, t in entries if t is FileType.FILE]
        yield top, dirnames, filenames
        for name in dirnames:
            child = top.rstrip("/") + "/" + name
            try:
                yield from self.walk(child)
            except (FileNotFound, NotADirectory):
                continue  # removed concurrently

    def count_entries(self, top: str = "/") -> tuple[int, int]:
        """Return ``(n_directories, n_files)`` under *top* (inclusive of top)."""
        n_dirs = 0
        n_files = 0
        for _dirpath, dirnames, filenames in self.walk(top):
            n_files += len(filenames)
            n_dirs += len(dirnames)
        return n_dirs + 1, n_files

    def read(self, path: str) -> bytes:
        """Return the content of regular file *path*."""
        with self._lock:
            node = self._resolve(path)
            if node.file_type is FileType.DIRECTORY:
                raise IsADirectory(normalize(path))
            node.atime = self._clock.now()
            return node.data

    # -- mutations ---------------------------------------------------------------

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        """Create directory *path* (parent must exist)."""
        with self._lock:
            parent, name = self._resolve_parent(path)
            if name in parent.children:
                raise FileExists(normalize(path))
            now = self._clock.now()
            ino = self._next_ino
            self._next_ino += 1
            self._inodes[ino] = _Inode(
                ino, FileType.DIRECTORY, mode, now, now, now, nlink=2
            )
            parent.children[name] = ino
            parent.nlink += 1
            parent.mtime = now
            record = MutationRecord(
                MutationKind.MKDIR, normalize(path), True, now
            )
            self._emit(record)

    def makedirs(self, path: str, exist_ok: bool = False) -> None:
        """Create *path* and any missing ancestors."""
        components = split_components(path)
        current = ""
        for component in components:
            current += "/" + component
            with self._lock:
                if self.exists(current):
                    if not self.is_dir(current):
                        raise NotADirectory(current)
                    continue
                self.mkdir(current)
        if not components and not exist_ok:
            raise FileExists("/")
        if components and not exist_ok:
            # If the final component pre-existed, mkdir above was skipped.
            # POSIX makedirs raises in that case; we mirror it.
            pass

    def create(self, path: str, data: bytes = b"", mode: int = 0o644) -> None:
        """Create regular file *path* with *data* (fails if it exists)."""
        if not isinstance(data, bytes):
            raise TypeError(f"file data must be bytes, got {type(data).__name__}")
        with self._lock:
            parent, name = self._resolve_parent(path)
            if name in parent.children:
                raise FileExists(normalize(path))
            now = self._clock.now()
            ino = self._next_ino
            self._next_ino += 1
            self._inodes[ino] = _Inode(
                ino, FileType.FILE, mode, now, now, now, data=data
            )
            parent.children[name] = ino
            parent.mtime = now
            self._emit(
                MutationRecord(
                    MutationKind.CREATE, normalize(path), False, now, size=len(data)
                )
            )

    def write(self, path: str, data: bytes, create: bool = True) -> None:
        """Replace the content of *path* with *data*.

        With ``create=True`` (default) the file is created if missing,
        emitting CREATE then WRITE — mirroring open(O_CREAT)+write.
        """
        if not isinstance(data, bytes):
            raise TypeError(f"file data must be bytes, got {type(data).__name__}")
        with self._lock:
            if not self.exists(path):
                if not create:
                    raise FileNotFound(normalize(path))
                self.create(path)
            node = self._resolve(path)
            if node.file_type is FileType.DIRECTORY:
                raise IsADirectory(normalize(path))
            now = self._clock.now()
            node.data = data
            node.mtime = now
            self._emit(
                MutationRecord(
                    MutationKind.WRITE, normalize(path), False, now, size=len(data)
                )
            )

    def append(self, path: str, data: bytes) -> None:
        """Append *data* to existing file *path* (emits WRITE)."""
        with self._lock:
            node = self._resolve(path)
            if node.file_type is FileType.DIRECTORY:
                raise IsADirectory(normalize(path))
            now = self._clock.now()
            node.data += data
            node.mtime = now
            self._emit(
                MutationRecord(
                    MutationKind.WRITE,
                    normalize(path),
                    False,
                    now,
                    size=len(node.data),
                )
            )

    def truncate(self, path: str, length: int = 0) -> None:
        """Truncate file *path* to *length* bytes."""
        if length < 0:
            raise ValueError(f"negative truncate length: {length}")
        with self._lock:
            node = self._resolve(path)
            if node.file_type is FileType.DIRECTORY:
                raise IsADirectory(normalize(path))
            now = self._clock.now()
            node.data = node.data[:length].ljust(length, b"\x00")
            node.mtime = now
            self._emit(
                MutationRecord(
                    MutationKind.TRUNCATE, normalize(path), False, now, size=length
                )
            )

    def setattr(self, path: str, mode: int | None = None) -> None:
        """Change attributes (currently the mode) of *path*; emits SETATTR."""
        with self._lock:
            node = self._resolve(path)
            now = self._clock.now()
            if mode is not None:
                node.mode = mode
            node.ctime = now
            self._emit(
                MutationRecord(
                    MutationKind.SETATTR,
                    normalize(path),
                    node.file_type is FileType.DIRECTORY,
                    now,
                )
            )

    def touch(self, path: str) -> None:
        """Create *path* if missing, else bump its mtime (SETATTR)."""
        with self._lock:
            if not self.exists(path):
                self.create(path)
                return
            node = self._resolve(path)
            now = self._clock.now()
            node.mtime = now
            self._emit(
                MutationRecord(
                    MutationKind.SETATTR,
                    normalize(path),
                    node.file_type is FileType.DIRECTORY,
                    now,
                )
            )

    def unlink(self, path: str) -> None:
        """Remove regular file *path*."""
        with self._lock:
            parent, name = self._resolve_parent(path)
            ino = parent.children.get(name)
            if ino is None:
                raise FileNotFound(normalize(path))
            node = self._inodes[ino]
            if node.file_type is FileType.DIRECTORY:
                raise IsADirectory(normalize(path))
            now = self._clock.now()
            del parent.children[name]
            del self._inodes[ino]
            parent.mtime = now
            self._emit(
                MutationRecord(MutationKind.UNLINK, normalize(path), False, now)
            )

    def rmdir(self, path: str) -> None:
        """Remove empty directory *path*."""
        with self._lock:
            parent, name = self._resolve_parent(path)
            ino = parent.children.get(name)
            if ino is None:
                raise FileNotFound(normalize(path))
            node = self._inodes[ino]
            if node.file_type is not FileType.DIRECTORY:
                raise NotADirectory(normalize(path))
            if node.children:
                raise DirectoryNotEmpty(normalize(path))
            now = self._clock.now()
            del parent.children[name]
            del self._inodes[ino]
            parent.nlink -= 1
            parent.mtime = now
            self._emit(
                MutationRecord(MutationKind.RMDIR, normalize(path), True, now)
            )

    def rmtree(self, path: str) -> None:
        """Recursively remove *path* (directory or file)."""
        with self._lock:
            node = self._resolve(path)
            if node.file_type is FileType.FILE:
                self.unlink(path)
                return
            for name in list(node.children):
                self.rmtree(normalize(path).rstrip("/") + "/" + name)
            if normalize(path) != "/":
                self.rmdir(path)

    def rename(self, src: str, dst: str) -> None:
        """Atomically move *src* to *dst* (POSIX rename semantics).

        An existing *dst* file is replaced; renaming a directory onto an
        existing non-empty directory fails.
        """
        with self._lock:
            src_norm, dst_norm = normalize(src), normalize(dst)
            if src_norm == "/":
                raise InvalidPath(src, "cannot rename the root")
            src_parent, src_name = self._resolve_parent(src)
            src_ino = src_parent.children.get(src_name)
            if src_ino is None:
                raise FileNotFound(src_norm)
            src_node = self._inodes[src_ino]
            if src_node.file_type is FileType.DIRECTORY and is_ancestor(
                src_norm, dst_norm
            ):
                raise InvalidPath(dst, "cannot move a directory into itself")
            dst_parent, dst_name = self._resolve_parent(dst)
            existing_ino = dst_parent.children.get(dst_name)
            if existing_ino is not None:
                existing = self._inodes[existing_ino]
                if existing.file_type is FileType.DIRECTORY:
                    if src_node.file_type is not FileType.DIRECTORY:
                        raise IsADirectory(dst_norm)
                    if existing.children:
                        raise DirectoryNotEmpty(dst_norm)
                    del self._inodes[existing_ino]
                    dst_parent.nlink -= 1
                else:
                    if src_node.file_type is FileType.DIRECTORY:
                        raise NotADirectory(dst_norm)
                    del self._inodes[existing_ino]
            now = self._clock.now()
            del src_parent.children[src_name]
            dst_parent.children[dst_name] = src_ino
            if src_node.file_type is FileType.DIRECTORY:
                src_parent.nlink -= 1
                dst_parent.nlink += 1
            src_parent.mtime = now
            dst_parent.mtime = now
            src_node.ctime = now
            self._emit(
                MutationRecord(
                    MutationKind.RENAME,
                    dst_norm,
                    src_node.file_type is FileType.DIRECTORY,
                    now,
                    old_path=src_norm,
                )
            )
