"""An emulation of the Linux inotify API over :class:`MemoryFilesystem`.

The emulation reproduces the properties the paper leans on when arguing
that inotify does not scale to parallel filesystems:

* **Per-directory watches.**  A watch observes exactly one directory
  (non-recursively); monitoring a tree requires one watch per directory,
  which is why Watchdog-style observers must crawl the tree at startup.
* **Kernel memory cost.**  Each watch accounts ``WATCH_MEMORY_BYTES``
  (1 KiB on 64-bit Linux, per the paper) of unswappable memory; the
  instance exposes the total so experiments can reproduce the
  "512 MB for 524,288 directories" arithmetic.
* **Watch limits.**  ``max_user_watches`` bounds the number of watches
  (default 524,288, the Linux default cited in the paper).
* **Bounded event queue.**  At most ``max_queued_events`` events are
  buffered (Linux default 16,384); further events are dropped and a
  single ``IN_Q_OVERFLOW`` event is queued — the lossy behaviour that
  motivates the ChangeLog-based monitor's stronger guarantees.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import FileNotFound, NotADirectory, UnknownWatch, WatchLimitExceeded
from repro.fs.memfs import MemoryFilesystem, MutationKind, MutationRecord
from repro.util.paths import dirname, normalize

# Event mask bits (values match the Linux ABI for familiarity).
IN_CREATE = 0x00000100
IN_DELETE = 0x00000200
IN_MODIFY = 0x00000002
IN_ATTRIB = 0x00000004
IN_MOVED_FROM = 0x00000040
IN_MOVED_TO = 0x00000080
IN_CLOSE_WRITE = 0x00000008
IN_ISDIR = 0x40000000
IN_Q_OVERFLOW = 0x00004000

IN_ALL_EVENTS = (
    IN_CREATE
    | IN_DELETE
    | IN_MODIFY
    | IN_ATTRIB
    | IN_MOVED_FROM
    | IN_MOVED_TO
    | IN_CLOSE_WRITE
)

#: Unswappable kernel memory per watch on a 64-bit machine (paper, §3).
WATCH_MEMORY_BYTES = 1024

#: Linux defaults cited by the paper.
DEFAULT_MAX_USER_WATCHES = 524_288
DEFAULT_MAX_QUEUED_EVENTS = 16_384

_KIND_TO_MASK = {
    MutationKind.CREATE: IN_CREATE,
    MutationKind.MKDIR: IN_CREATE | IN_ISDIR,
    MutationKind.WRITE: IN_MODIFY,
    MutationKind.TRUNCATE: IN_MODIFY,
    MutationKind.SETATTR: IN_ATTRIB,
    MutationKind.UNLINK: IN_DELETE,
    MutationKind.RMDIR: IN_DELETE | IN_ISDIR,
}


def mask_names(mask: int) -> list[str]:
    """Human-readable names of the bits set in *mask* (for logs/tests)."""
    names = []
    for name in (
        "IN_CREATE",
        "IN_DELETE",
        "IN_MODIFY",
        "IN_ATTRIB",
        "IN_MOVED_FROM",
        "IN_MOVED_TO",
        "IN_CLOSE_WRITE",
        "IN_ISDIR",
        "IN_Q_OVERFLOW",
    ):
        if mask & globals()[name]:
            names.append(name)
    return names


@dataclass(frozen=True)
class InotifyEvent:
    """One event read from an inotify instance.

    ``wd`` is the watch descriptor the event was delivered on; ``name`` is
    the entry name within the watched directory (empty for overflow).
    ``cookie`` pairs the MOVED_FROM/MOVED_TO halves of a rename, exactly
    as the kernel API does.
    """

    wd: int
    mask: int
    name: str
    cookie: int = 0
    timestamp: float = 0.0

    @property
    def is_dir(self) -> bool:
        return bool(self.mask & IN_ISDIR)

    @property
    def is_overflow(self) -> bool:
        return bool(self.mask & IN_Q_OVERFLOW)


@dataclass
class _Watch:
    wd: int
    path: str
    mask: int


class InotifyInstance:
    """One inotify file-descriptor-equivalent bound to a filesystem.

    Events are buffered internally and drained with :meth:`read_events`
    (the analogue of ``read(2)`` on the inotify fd).
    """

    def __init__(
        self,
        filesystem: MemoryFilesystem,
        max_user_watches: int = DEFAULT_MAX_USER_WATCHES,
        max_queued_events: int = DEFAULT_MAX_QUEUED_EVENTS,
    ) -> None:
        self.fs = filesystem
        self.max_user_watches = max_user_watches
        self.max_queued_events = max_queued_events
        self._lock = threading.Lock()
        self._watches: Dict[int, _Watch] = {}
        self._by_path: Dict[str, int] = {}
        self._queue: list[InotifyEvent] = []
        self._overflowed = False
        self._next_wd = 1
        self._next_cookie = 1
        self._closed = False
        #: Events dropped due to queue overflow (observability for tests).
        self.dropped_events = 0
        filesystem.add_hook(self._on_mutation)

    # -- watch management ------------------------------------------------

    @property
    def watch_count(self) -> int:
        """Number of active watches."""
        with self._lock:
            return len(self._watches)

    @property
    def kernel_memory_bytes(self) -> int:
        """Unswappable kernel memory charged for the active watches."""
        return self.watch_count * WATCH_MEMORY_BYTES

    def add_watch(self, path: str, mask: int = IN_ALL_EVENTS) -> int:
        """Watch directory *path* for the events in *mask*; return the wd.

        Re-watching an already watched path replaces its mask and returns
        the existing descriptor, as the kernel API does.
        """
        norm = normalize(path)
        if not self.fs.exists(norm):
            raise FileNotFound(norm)
        if not self.fs.is_dir(norm):
            raise NotADirectory(norm)
        with self._lock:
            existing = self._by_path.get(norm)
            if existing is not None:
                self._watches[existing].mask = mask
                return existing
            if len(self._watches) >= self.max_user_watches:
                raise WatchLimitExceeded(
                    f"max_user_watches={self.max_user_watches} reached"
                )
            wd = self._next_wd
            self._next_wd += 1
            self._watches[wd] = _Watch(wd, norm, mask)
            self._by_path[norm] = wd
            return wd

    def rm_watch(self, wd: int) -> None:
        """Remove watch descriptor *wd*."""
        with self._lock:
            watch = self._watches.pop(wd, None)
            if watch is None:
                raise UnknownWatch(f"unknown watch descriptor {wd}")
            del self._by_path[watch.path]

    def path_for(self, wd: int) -> str:
        """The directory path watched by *wd*."""
        with self._lock:
            watch = self._watches.get(wd)
            if watch is None:
                raise UnknownWatch(f"unknown watch descriptor {wd}")
            return watch.path

    # -- event delivery -----------------------------------------------------

    def _enqueue(self, event: InotifyEvent) -> None:
        if len(self._queue) >= self.max_queued_events:
            self.dropped_events += 1
            if not self._overflowed:
                self._overflowed = True
                self._queue.append(
                    InotifyEvent(
                        wd=-1,
                        mask=IN_Q_OVERFLOW,
                        name="",
                        timestamp=event.timestamp,
                    )
                )
            return
        self._queue.append(event)

    def _deliver(
        self, directory: str, mask: int, name: str, cookie: int, timestamp: float
    ) -> None:
        wd = self._by_path.get(directory)
        if wd is None:
            return
        watch = self._watches[wd]
        if not (watch.mask & (mask & ~IN_ISDIR)):
            return  # the watcher did not ask for this event kind
        self._enqueue(
            InotifyEvent(wd=wd, mask=mask, name=name, cookie=cookie, timestamp=timestamp)
        )

    def _on_mutation(self, record: MutationRecord) -> None:
        if self._closed:
            return
        with self._lock:
            if record.kind is MutationKind.RENAME:
                cookie = self._next_cookie
                self._next_cookie += 1
                dir_bit = IN_ISDIR if record.is_dir else 0
                assert record.old_path is not None
                src_dir = dirname(record.old_path)
                src_name = record.old_path.rsplit("/", 1)[-1]
                dst_dir = dirname(record.path)
                dst_name = record.path.rsplit("/", 1)[-1]
                self._deliver(
                    src_dir,
                    IN_MOVED_FROM | dir_bit,
                    src_name,
                    cookie,
                    record.timestamp,
                )
                self._deliver(
                    dst_dir, IN_MOVED_TO | dir_bit, dst_name, cookie, record.timestamp
                )
                return
            mask = _KIND_TO_MASK[record.kind]
            directory = dirname(record.path)
            name = record.path.rsplit("/", 1)[-1]
            self._deliver(directory, mask, name, 0, record.timestamp)
            # Writes also produce IN_CLOSE_WRITE on close; our write op is
            # open-write-close, so synthesise it when the watcher asked.
            if record.kind in (MutationKind.WRITE, MutationKind.TRUNCATE):
                self._deliver(
                    directory, IN_CLOSE_WRITE, name, 0, record.timestamp
                )

    def read_events(self, max_events: Optional[int] = None) -> list[InotifyEvent]:
        """Drain and return buffered events (up to *max_events*)."""
        with self._lock:
            if max_events is None or max_events >= len(self._queue):
                events, self._queue = self._queue, []
            else:
                events = self._queue[:max_events]
                self._queue = self._queue[max_events:]
            if not self._queue:
                self._overflowed = False
            return events

    @property
    def pending(self) -> int:
        """Events currently buffered."""
        with self._lock:
            return len(self._queue)

    def close(self) -> None:
        """Detach from the filesystem and drop all watches."""
        self._closed = True
        self.fs.remove_hook(self._on_mutation)
        with self._lock:
            self._watches.clear()
            self._by_path.clear()
            self._queue.clear()
