"""A Watchdog-style observer layer over the inotify emulation.

Ripple's original event detection used the Python *watchdog* package,
which places recursive watchers on directories relevant to a rule and
dispatches typed events to handler objects.  This module reproduces that
interface:

* :class:`FileSystemEventHandler` — subclass and override ``on_created``,
  ``on_deleted``, ``on_modified``, ``on_moved``, ``on_attrib``.
* :class:`Observer` — schedules handlers on directory trees.  At schedule
  time it **crawls** the tree to place one inotify watch per directory
  (the setup cost the paper calls out), and it adds watches for
  directories created later so recursion stays complete.

Dispatch is pull-based for determinism: call :meth:`Observer.drain` to
deliver pending events, or run the observer as a live
:class:`~repro.runtime.Service` with :meth:`start`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.runtime import Service, WorkerSpec

from repro.fs.inotify import (
    IN_ALL_EVENTS,
    IN_ATTRIB,
    IN_CREATE,
    IN_DELETE,
    IN_ISDIR,
    IN_MODIFY,
    IN_MOVED_FROM,
    IN_MOVED_TO,
    InotifyEvent,
    InotifyInstance,
)
from repro.fs.memfs import MemoryFilesystem
from repro.util.paths import is_ancestor, join, normalize


@dataclass(frozen=True)
class FileSystemEvent:
    """A watchdog-style event delivered to handlers."""

    event_type: str  # created | deleted | modified | moved | attrib | overflow
    src_path: str
    is_directory: bool
    timestamp: float
    dest_path: Optional[str] = None  # only for 'moved'


class FileSystemEventHandler:
    """Base handler: override the ``on_*`` hooks you care about.

    ``dispatch`` routes an event to the matching hook and also calls
    ``on_any_event`` first, mirroring the watchdog package.
    """

    def dispatch(self, event: FileSystemEvent) -> None:
        self.on_any_event(event)
        hook = getattr(self, f"on_{event.event_type}", None)
        if hook is not None:
            hook(event)

    def on_any_event(self, event: FileSystemEvent) -> None:
        """Called for every event before the specific hook."""

    def on_created(self, event: FileSystemEvent) -> None:
        """A file or directory was created."""

    def on_deleted(self, event: FileSystemEvent) -> None:
        """A file or directory was deleted."""

    def on_modified(self, event: FileSystemEvent) -> None:
        """A file's content changed."""

    def on_moved(self, event: FileSystemEvent) -> None:
        """A file or directory was renamed (src_path -> dest_path)."""

    def on_attrib(self, event: FileSystemEvent) -> None:
        """A file's attributes changed."""

    def on_overflow(self, event: FileSystemEvent) -> None:
        """The kernel queue overflowed; events were lost."""


class PatternMatchingEventHandler(FileSystemEventHandler):
    """A handler that filters by filename glob before dispatching.

    Mirrors the watchdog package's handler of the same name: *patterns*
    must match (any of), *ignore_patterns* must not (none of), and
    directory events can be excluded wholesale.
    """

    def __init__(
        self,
        patterns: Optional[list[str]] = None,
        ignore_patterns: Optional[list[str]] = None,
        ignore_directories: bool = False,
    ) -> None:
        self.patterns = list(patterns) if patterns else ["*"]
        self.ignore_patterns = list(ignore_patterns or [])
        self.ignore_directories = ignore_directories

    def _matches(self, event: FileSystemEvent) -> bool:
        import fnmatch

        if event.event_type == "overflow":
            return True
        if event.is_directory and self.ignore_directories:
            return False
        candidates = [p for p in (event.src_path, event.dest_path) if p]
        names = [path.rsplit("/", 1)[-1] for path in candidates]
        if not any(
            fnmatch.fnmatch(name, pattern)
            for name in names
            for pattern in self.patterns
        ):
            return False
        if any(
            fnmatch.fnmatch(name, pattern)
            for name in names
            for pattern in self.ignore_patterns
        ):
            return False
        return True

    def dispatch(self, event: FileSystemEvent) -> None:
        if self._matches(event):
            super().dispatch(event)


@dataclass
class _Schedule:
    handler: FileSystemEventHandler
    root: str
    recursive: bool


class Observer(Service):
    """Schedules handlers over directory trees of a MemoryFilesystem.

    A :class:`~repro.runtime.Service`: live mode runs a periodic
    ``pump`` worker draining the inotify queue, with a final drain on
    stop so no captured event is lost at shutdown.
    """

    def __init__(self, filesystem: MemoryFilesystem, registry=None) -> None:
        super().__init__("observer", registry)
        self.fs = filesystem
        self.inotify = InotifyInstance(filesystem)
        self._schedules: list[_Schedule] = []
        self._lock = threading.RLock()
        self._pending_moves: Dict[int, InotifyEvent] = {}
        self.poll_interval = 0.005
        self._events_dispatched = self.metrics.counter("events_dispatched")
        self.metrics.gauge_fn(
            "directories_watched", lambda: self.directories_watched
        )
        #: Number of directories crawled when placing watches (setup cost).
        self.directories_watched = 0

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        handler: FileSystemEventHandler,
        path: str,
        recursive: bool = True,
    ) -> _Schedule:
        """Watch *path* (and its subtree if *recursive*) with *handler*.

        Placing watches requires crawling every directory below *path*,
        which is the startup cost the paper attributes to inotify-based
        monitoring.
        """
        root = normalize(path)
        with self._lock:
            schedule = _Schedule(handler, root, recursive)
            self._schedules.append(schedule)
            self._watch_tree(root, recursive)
            return schedule

    def unschedule(self, schedule: _Schedule) -> None:
        """Remove a previously scheduled handler."""
        with self._lock:
            try:
                self._schedules.remove(schedule)
            except ValueError:
                pass

    def _watch_tree(self, root: str, recursive: bool) -> None:
        self.inotify.add_watch(root, IN_ALL_EVENTS)
        self.directories_watched += 1
        if not recursive:
            return
        for dirpath, dirnames, _filenames in self.fs.walk(root):
            for name in dirnames:
                self.inotify.add_watch(join(dirpath, name), IN_ALL_EVENTS)
                self.directories_watched += 1

    # -- event pump -----------------------------------------------------------

    def drain(self) -> int:
        """Deliver all pending events synchronously; return the count."""
        delivered = 0
        for raw in self.inotify.read_events():
            for event in self._translate(raw):
                self._dispatch(event)
                delivered += 1
        if delivered:
            self._events_dispatched.inc(delivered)
        return delivered

    def _translate(self, raw: InotifyEvent) -> list[FileSystemEvent]:
        if raw.is_overflow:
            return [
                FileSystemEvent("overflow", "", False, raw.timestamp)
            ]
        base = self.inotify.path_for(raw.wd) if raw.wd > 0 else "/"
        path = join(base, raw.name) if raw.name else base
        is_dir = bool(raw.mask & IN_ISDIR)
        events: list[FileSystemEvent] = []
        if raw.mask & IN_CREATE:
            events.append(FileSystemEvent("created", path, is_dir, raw.timestamp))
            # Keep recursion complete: watch newly created directories.
            if is_dir:
                with self._lock:
                    for schedule in self._schedules:
                        if schedule.recursive and is_ancestor(schedule.root, path):
                            try:
                                self.inotify.add_watch(path, IN_ALL_EVENTS)
                                self.directories_watched += 1
                            except Exception:
                                pass
                            break
        if raw.mask & IN_DELETE:
            events.append(FileSystemEvent("deleted", path, is_dir, raw.timestamp))
        if raw.mask & IN_MODIFY:
            events.append(FileSystemEvent("modified", path, is_dir, raw.timestamp))
        if raw.mask & IN_ATTRIB:
            events.append(FileSystemEvent("attrib", path, is_dir, raw.timestamp))
        if raw.mask & IN_MOVED_FROM:
            # Hold until the matching MOVED_TO arrives (same cookie).
            self._pending_moves[raw.cookie] = raw
        if raw.mask & IN_MOVED_TO:
            src = self._pending_moves.pop(raw.cookie, None)
            if src is not None:
                src_base = self.inotify.path_for(src.wd)
                src_path = join(src_base, src.name)
                events.append(
                    FileSystemEvent(
                        "moved", src_path, is_dir, raw.timestamp, dest_path=path
                    )
                )
            else:
                # Moved in from outside the watched tree: acts as a create.
                events.append(
                    FileSystemEvent("created", path, is_dir, raw.timestamp)
                )
        return events

    def _dispatch(self, event: FileSystemEvent) -> None:
        with self._lock:
            schedules = list(self._schedules)
        for schedule in schedules:
            if event.event_type == "overflow":
                schedule.handler.dispatch(event)
                continue
            anchor = event.src_path or "/"
            if not is_ancestor(schedule.root, anchor):
                continue
            if not schedule.recursive:
                parent = anchor.rsplit("/", 1)[0] or "/"
                if parent != schedule.root:
                    continue
            schedule.handler.dispatch(event)

    # -- background operation (service runtime) -------------------------------

    def start(self, poll_interval: float | None = None) -> None:
        """Run the pump worker draining events every *poll_interval*."""
        if poll_interval is not None:
            self.poll_interval = poll_interval
        super().start()

    def worker_specs(self) -> list[WorkerSpec]:
        return [WorkerSpec("pump", self.drain, interval=self.poll_interval)]

    def on_stop(self) -> None:
        self.drain()  # flush events captured before the stop

    def on_close(self) -> None:
        """Release the inotify instance."""
        self.inotify.close()
