"""Local-filesystem substrate: in-memory POSIX namespace + inotify.

This package stands in for the personal-device storage that Ripple's
original implementation monitored with the Python Watchdog module (inotify
on Linux, kqueue on BSD/macOS).  It provides:

* :class:`MemoryFilesystem` — an in-memory POSIX-style namespace with
  files, directories, rename, attribute changes and mutation hooks.
* :class:`InotifyInstance` — an emulation of the Linux inotify API
  (watch descriptors, event masks, bounded event queue with overflow,
  kernel-memory accounting: the paper notes each watch costs ~1 KiB of
  unswappable kernel memory).
* :class:`Observer` / :class:`FileSystemEventHandler` — a Watchdog-style
  recursive observer built on the inotify emulation, the interface the
  Ripple agent consumes.
"""

from repro.fs.memfs import FileStat, MemoryFilesystem, MutationRecord
from repro.fs.inotify import (
    IN_ATTRIB,
    IN_CLOSE_WRITE,
    IN_CREATE,
    IN_DELETE,
    IN_ISDIR,
    IN_MODIFY,
    IN_MOVED_FROM,
    IN_MOVED_TO,
    IN_Q_OVERFLOW,
    InotifyEvent,
    InotifyInstance,
)
from repro.fs.watchdog import (
    FileSystemEvent,
    FileSystemEventHandler,
    Observer,
    PatternMatchingEventHandler,
)

__all__ = [
    "MemoryFilesystem",
    "FileStat",
    "MutationRecord",
    "InotifyInstance",
    "InotifyEvent",
    "IN_CREATE",
    "IN_DELETE",
    "IN_MODIFY",
    "IN_ATTRIB",
    "IN_MOVED_FROM",
    "IN_MOVED_TO",
    "IN_CLOSE_WRITE",
    "IN_ISDIR",
    "IN_Q_OVERFLOW",
    "Observer",
    "FileSystemEventHandler",
    "PatternMatchingEventHandler",
    "FileSystemEvent",
]
