"""Blocking gateway client: REST calls + a select-friendly WS stream.

The gateway's own wire surface is asyncio, but its *callers* in this
repo — tests, the ``repro gateway-demo`` CLI, the CI smoke step — are
plain threads.  This module is the stdlib-only counterpart client:

* :class:`GatewayClient` — one-shot JSON-over-HTTP requests via
  ``http.client`` (the gateway answers ``Connection: close``, so a
  fresh connection per call is the protocol, not an inefficiency),
  with helpers for the auth handshake and cursor-paged event sweeps.
* :class:`WsStream` — a blocking WebSocket subscription: raw socket
  handshake (the ``Sec-WebSocket-Accept`` digest is verified), masked
  client frames per RFC 6455 §5.3, and a :meth:`pump` that drains
  whatever is readable without blocking — plus :meth:`fileno` so a
  single ``select()`` loop can fan in hundreds of streams, which is
  exactly how the 200-subscriber acceptance test drives it.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import select
import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.gateway.http import (
    OP_CLOSE,
    OP_PING,
    OP_PONG,
    OP_TEXT,
    FrameParser,
    encode_close,
    encode_frame,
    websocket_accept,
)

__all__ = ["GatewayClient", "GatewayClientError", "StreamRejected", "WsStream"]


class GatewayClientError(ReproError):
    """A gateway call answered with an error status."""

    def __init__(self, status: int, payload: Any) -> None:
        super().__init__(f"gateway answered {status}: {payload}")
        self.status = status
        self.payload = payload


class StreamRejected(GatewayClientError):
    """The gateway refused a ``/v1/stream`` upgrade (401/429/400)."""


class GatewayClient:
    """Blocking JSON client for the gateway's REST surface."""

    def __init__(self, host: str, port: int, timeout: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(
        self,
        method: str,
        path: str,
        token: Optional[str] = None,
        body: Optional[dict] = None,
        query: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Any]:
        """One request → ``(status, decoded JSON payload)``."""
        if query:
            pairs = "&".join(
                f"{name}={_quote(str(value))}"
                for name, value in query.items()
                if value is not None
            )
            if pairs:
                path = f"{path}?{pairs}"
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Accept": "application/json"}
            if token:
                headers["Authorization"] = f"Bearer {token}"
            payload = None
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else None
            except ValueError:
                decoded = raw.decode("utf-8", "replace")
            return response.status, decoded
        finally:
            conn.close()

    # -- conveniences --------------------------------------------------------

    def auth(self, key: str) -> Dict[str, Any]:
        """``POST /v1/auth``; returns the session payload or raises."""
        status, payload = self.request("POST", "/v1/auth", body={"key": key})
        if status != 200:
            raise GatewayClientError(status, payload)
        return payload

    def events(
        self, token: str, **query: Any
    ) -> Dict[str, Any]:
        """One ``GET /v1/events`` page; raises on a non-200 answer."""
        status, payload = self.request(
            "GET", "/v1/events", token=token, query=query
        )
        if status != 200:
            raise GatewayClientError(status, payload)
        return payload

    def events_all(
        self, token: str, **query: Any
    ) -> List[Dict[str, Any]]:
        """Sweep every matching historic event, page by page."""
        out: List[Dict[str, Any]] = []
        cursor = query.pop("cursor", None)
        while True:
            page = self.events(token, cursor=cursor, **query)
            out.extend(page["events"])
            cursor = page["cursor"]
            if page["exhausted"]:
                return out

    def stats(self, token: str) -> Dict[str, Any]:
        status, payload = self.request("GET", "/v1/stats", token=token)
        if status != 200:
            raise GatewayClientError(status, payload)
        return payload

    def health(self) -> Tuple[int, Any]:
        return self.request("GET", "/health")

    def stream(self, token: str, **query: Any) -> "WsStream":
        """Open a live ``/v1/stream`` subscription."""
        return WsStream.connect(
            self.host, self.port, token, query, timeout=self.timeout
        )


def _quote(value: str) -> str:
    from urllib.parse import quote

    return quote(value, safe="")


class WsStream:
    """One blocking WebSocket subscription to ``/v1/stream``."""

    def __init__(self, sock: socket.socket, leftover: bytes = b"") -> None:
        self.sock = sock
        self.parser = FrameParser()
        self.closed = False
        #: Decoded stream messages received so far.
        self.received: List[Dict[str, Any]] = []
        if leftover:
            self._handle(self.parser.feed(leftover))

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        token: str,
        query: Optional[Dict[str, Any]] = None,
        timeout: float = 5.0,
    ) -> "WsStream":
        """Handshake a subscription; raises :class:`StreamRejected`
        when the gateway answers anything but 101."""
        params = {"token": token, **(query or {})}
        target = "/v1/stream?" + "&".join(
            f"{name}={_quote(str(value))}"
            for name, value in params.items()
            if value is not None
        )
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        sock = socket.create_connection((host, port), timeout=timeout)
        try:
            sock.sendall(
                (
                    f"GET {target} HTTP/1.1\r\n"
                    f"Host: {host}:{port}\r\n"
                    "Upgrade: websocket\r\n"
                    "Connection: Upgrade\r\n"
                    f"Sec-WebSocket-Key: {key}\r\n"
                    "Sec-WebSocket-Version: 13\r\n"
                    "\r\n"
                ).encode("latin-1")
            )
            head = b""
            while b"\r\n\r\n" not in head:
                chunk = sock.recv(4096)
                if not chunk:
                    raise GatewayClientError(0, "connection closed mid-handshake")
                head += chunk
            header_blob, _, leftover = head.partition(b"\r\n\r\n")
            lines = header_blob.decode("latin-1").split("\r\n")
            status = int(lines[0].split()[1])
            headers = {}
            for line in lines[1:]:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
            if status != 101:
                body = leftover
                length = int(headers.get("content-length", "0") or 0)
                while len(body) < length:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    body += chunk
                try:
                    payload = json.loads(body) if body else None
                except ValueError:
                    payload = body.decode("utf-8", "replace")
                raise StreamRejected(status, payload)
            expected = websocket_accept(key)
            if headers.get("sec-websocket-accept") != expected:
                raise GatewayClientError(0, "bad Sec-WebSocket-Accept digest")
        except BaseException:
            sock.close()
            raise
        sock.setblocking(False)
        return cls(sock, leftover)

    def fileno(self) -> int:
        return self.sock.fileno()

    def _handle(self, messages: List[Tuple[int, bytes]]) -> List[Dict[str, Any]]:
        fresh: List[Dict[str, Any]] = []
        for opcode, payload in messages:
            if opcode == OP_TEXT:
                decoded = json.loads(payload)
                self.received.append(decoded)
                fresh.append(decoded)
            elif opcode == OP_PING:
                self._send(encode_frame(OP_PONG, payload, mask=True))
            elif opcode == OP_CLOSE:
                self.closed = True
        return fresh

    def _send(self, frame: bytes) -> None:
        try:
            self.sock.sendall(frame)
        except OSError:
            self.closed = True

    def pump(self, timeout: float = 0.0) -> List[Dict[str, Any]]:
        """Drain whatever is readable; never blocks past *timeout*."""
        fresh: List[Dict[str, Any]] = []
        while not self.closed:
            readable, _, _ = select.select([self.sock], [], [], timeout)
            if not readable:
                break
            timeout = 0.0  # only the first wait may block
            try:
                data = self.sock.recv(65536)
            except BlockingIOError:
                break
            except OSError:
                self.closed = True
                break
            if not data:
                self.closed = True
                break
            fresh.extend(self._handle(self.parser.feed(data)))
        return fresh

    def close(self) -> None:
        if not self.closed:
            self._send(encode_close(mask=True))
            self.closed = True
        try:
            self.sock.close()
        except OSError:
            pass
