"""Minimal HTTP/1.1 request parsing and RFC-6455 WebSocket framing.

The gateway deliberately speaks raw stdlib ``asyncio`` streams — no
third-party HTTP stack — so this module is the whole wire vocabulary:

* :func:`read_request` parses one request (request line, headers,
  ``Content-Length`` body) from a stream reader into a
  :class:`Request`.
* :func:`render_response` serialises one response (``Connection:
  close`` — the gateway's REST surface is one-shot; only WebSocket
  upgrades keep the connection).
* :func:`websocket_accept` computes the RFC-6455 handshake digest, and
  :func:`encode_frame` / :class:`FrameParser` are the frame codec —
  the parser is incremental and handles both masked (client→server,
  mandatory per RFC) and unmasked (server→client) frames, so the same
  class serves the gateway and the test/demo client.

Only the subset the gateway needs is implemented: GET/POST, text/
close/ping/pong frames, no extensions, no fragmentation on send
(fragmented receives are reassembled).
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "FrameParser",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "OP_TEXT",
    "Request",
    "encode_frame",
    "read_request",
    "render_response",
    "websocket_accept",
]

#: RFC-6455 §4.2.2 magic GUID appended to the client key.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONTINUATION = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_STATUS_TEXT = {
    200: "OK",
    101: "Switching Protocols",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(ValueError):
    """A malformed request line, header block, or frame."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def wants_websocket(self) -> bool:
        return (
            "websocket" in self.header("upgrade").lower()
            and "upgrade" in self.header("connection").lower()
        )

    def bearer_token(self) -> Optional[str]:
        """The auth token: ``Authorization: Bearer …`` or ``?token=``.

        The query-parameter fallback exists for WebSocket clients
        (browsers cannot set headers on a WS upgrade).
        """
        auth = self.header("authorization")
        if auth.lower().startswith("bearer "):
            return auth[7:].strip()
        return self.query.get("token")


async def read_request(
    reader,
    max_line: int = 8192,
    max_headers: int = 64,
    max_body: int = 1 << 20,
) -> Optional[Request]:
    """Parse one request from *reader*; None on a cleanly closed socket.

    Raises :class:`ProtocolError` on malformed input and
    :class:`asyncio.LimitOverrunError`-free bounded reads (every line
    is capped at *max_line* bytes, bodies at *max_body*).
    """
    line = await reader.readline()
    if not line:
        return None
    if len(line) > max_line:
        raise ProtocolError("request line too long")
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError:
        raise ProtocolError(f"malformed request line: {line!r}") from None
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported version {version!r}")
    headers: Dict[str, str] = {}
    for _ in range(max_headers):
        line = await reader.readline()
        if len(line) > max_line:
            raise ProtocolError("header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError("too many headers")
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise ProtocolError(f"bad Content-Length {length!r}") from None
        if size < 0 or size > max_body:
            raise ProtocolError(f"body of {size} bytes refused")
        if size:
            body = await reader.readexactly(size)
    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query, keep_blank_values=True))
    return Request(
        method=method.upper(),
        target=target,
        path=parts.path.rstrip("/") or "/",
        query=query,
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json; charset=utf-8",
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    """One serialised ``Connection: close`` HTTP/1.1 response."""
    reason = _STATUS_TEXT.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


# -- WebSocket ---------------------------------------------------------------


def websocket_accept(key: str) -> str:
    """The ``Sec-WebSocket-Accept`` digest for a client *key*."""
    digest = hashlib.sha1((key + _WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def render_upgrade(key: str) -> bytes:
    """The 101 handshake response completing a WebSocket upgrade."""
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept(key)}\r\n"
        "\r\n"
    ).encode("latin-1")


def encode_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """One FIN frame.  Clients must set *mask* (RFC 6455 §5.3)."""
    head = bytearray([0x80 | (opcode & 0x0F)])
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        head.append(mask_bit | length)
    elif length < (1 << 16):
        head.append(mask_bit | 126)
        head += struct.pack("!H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack("!Q", length)
    if not mask:
        return bytes(head) + payload
    key = os.urandom(4)
    head += key
    masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + masked


def encode_text(text: str, mask: bool = False) -> bytes:
    return encode_frame(OP_TEXT, text.encode("utf-8"), mask=mask)


def encode_close(code: int = 1000, reason: str = "", mask: bool = False) -> bytes:
    payload = struct.pack("!H", code) + reason.encode("utf-8")
    return encode_frame(OP_CLOSE, payload, mask=mask)


class FrameParser:
    """Incremental WebSocket frame decoder.

    ``feed(data)`` buffers bytes and returns every complete message as
    ``(opcode, payload)``; fragmented messages are reassembled and
    reported under their initial opcode.  Both masked and unmasked
    frames are accepted, so the parser serves server and client sides.
    """

    def __init__(self, max_message: int = 1 << 22) -> None:
        self._buffer = bytearray()
        self._fragments: List[bytes] = []
        self._fragment_opcode: Optional[int] = None
        self.max_message = max_message

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        self._buffer += data
        messages: List[Tuple[int, bytes]] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return messages
            fin, opcode, payload = frame
            if opcode in (OP_CLOSE, OP_PING, OP_PONG):
                # Control frames may interleave with fragments and are
                # never themselves fragmented (RFC 6455 §5.5).
                messages.append((opcode, payload))
                continue
            if opcode == OP_CONTINUATION:
                if self._fragment_opcode is None:
                    raise ProtocolError("continuation without a start frame")
                self._fragments.append(payload)
            else:
                if self._fragment_opcode is not None:
                    raise ProtocolError("interleaved data fragments")
                self._fragment_opcode = opcode
                self._fragments = [payload]
            if sum(len(p) for p in self._fragments) > self.max_message:
                raise ProtocolError("message too large")
            if fin:
                messages.append(
                    (self._fragment_opcode, b"".join(self._fragments))
                )
                self._fragment_opcode = None
                self._fragments = []

    def _next_frame(self) -> Optional[Tuple[bool, int, bytes]]:
        buf = self._buffer
        if len(buf) < 2:
            return None
        first, second = buf[0], buf[1]
        fin = bool(first & 0x80)
        if first & 0x70:
            raise ProtocolError("reserved bits set (no extensions)")
        opcode = first & 0x0F
        masked = bool(second & 0x80)
        length = second & 0x7F
        offset = 2
        if length == 126:
            if len(buf) < offset + 2:
                return None
            (length,) = struct.unpack_from("!H", buf, offset)
            offset += 2
        elif length == 127:
            if len(buf) < offset + 8:
                return None
            (length,) = struct.unpack_from("!Q", buf, offset)
            offset += 8
        if length > self.max_message:
            raise ProtocolError(f"frame of {length} bytes refused")
        key = b""
        if masked:
            if len(buf) < offset + 4:
                return None
            key = bytes(buf[offset:offset + 4])
            offset += 4
        if len(buf) < offset + length:
            return None
        payload = bytes(buf[offset:offset + length])
        del buf[:offset + length]
        if masked:
            payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
        return fin, opcode, payload
